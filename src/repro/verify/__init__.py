"""The conformance layer: oracles the fast paths are held to.

Every optimized tier in this repository — the columnar classifier, the
sharded campaign runner — claims bit-identical results to the simple
per-record semantics.  This package makes that claim checkable:

- :mod:`repro.verify.reference` — a deliberately naive, dependency-free
  re-implementation of the paper's taxonomy and aggregations, small
  enough to audit against PAPER.md by eye.  It is the semantic ground
  truth; it is never optimized.
- :mod:`repro.verify.streams` — seeded fuzz-stream generators: random
  update streams plus adversarial generators for the known hard cases
  (cross-batch carry, duplicate timestamps, re-announce-after-withdraw,
  attribute-interning collisions).
- :mod:`repro.verify.differential` — the differential runner: pipes a
  stream through StreamClassifier, ColumnClassifier, and the reference
  oracle, asserts identical labels/counts/digests, and minimizes any
  failing stream with delta-debugging shrink.
- :mod:`repro.verify.golden` — the golden corpus: committed traces
  under ``tests/golden/`` with frozen expected outputs, plus the
  regeneration script.
- :mod:`repro.verify.refgen` — the pre-vectorization trace-generation
  tier (scalar per-record emission, linear-scan bin sampler), kept
  verbatim as the differential and timing baseline for the vectorized
  :meth:`~repro.workloads.generator.TraceGenerator.day_columns` path.
- :mod:`repro.verify.chaos` — seeded fault injection around
  :func:`~repro.campaign.runner.run_campaign`: kill runs mid-shard,
  corrupt archives/results/manifests, reorder completion, and assert
  the resumed merged digest equals the unfaulted run.
"""

from .differential import (
    DifferentialMismatch,
    DifferentialReport,
    columnar_detection,
    run_detection_differential,
    run_differential,
    shrink_stream,
    stream_digest,
    streaming_detection,
)
from .reference import (
    DETECTION_FLAGS,
    reference_classify,
    reference_counts,
    reference_counts_by_peer,
    reference_counts_by_prefix,
    reference_bin_counts,
    reference_detect,
    reference_detection_counts,
    reference_detection_digest,
    reference_interarrival_histogram,
    reference_stability,
)
from .streams import (
    ADVERSARIAL_GENERATORS,
    DETECTION_GENERATORS,
    FuzzStream,
    detection_topology,
    fuzz_stream,
    adversarial_cross_batch_carry,
    adversarial_duplicate_timestamps,
    adversarial_interning_collisions,
    adversarial_reannounce_after_withdraw,
)
from .chaos import ChaosReport, run_chaos_campaign
from .golden import check_golden, write_golden
from .refgen import ReferenceTraceGenerator, reference_twin

__all__ = [
    "DifferentialMismatch",
    "DifferentialReport",
    "run_differential",
    "run_detection_differential",
    "streaming_detection",
    "columnar_detection",
    "shrink_stream",
    "stream_digest",
    "DETECTION_FLAGS",
    "reference_classify",
    "reference_counts",
    "reference_counts_by_peer",
    "reference_counts_by_prefix",
    "reference_bin_counts",
    "reference_detect",
    "reference_detection_counts",
    "reference_detection_digest",
    "reference_interarrival_histogram",
    "reference_stability",
    "ADVERSARIAL_GENERATORS",
    "DETECTION_GENERATORS",
    "FuzzStream",
    "detection_topology",
    "fuzz_stream",
    "adversarial_cross_batch_carry",
    "adversarial_duplicate_timestamps",
    "adversarial_interning_collisions",
    "adversarial_reannounce_after_withdraw",
    "ChaosReport",
    "run_chaos_campaign",
    "check_golden",
    "write_golden",
    "ReferenceTraceGenerator",
    "reference_twin",
]
