"""The reference oracle: the paper's semantics in the plainest Python.

This module re-implements the §4.1 update taxonomy, the inter-arrival
binning of Figure 8, the per-bin time series, and the per-peer /
per-prefix aggregations — as dict-of-lists Python with no imports from
the rest of the library and no NumPy.  It is deliberately naive: every
rule is one obvious ``if``, every aggregate one obvious dict, so the
whole file can be audited against PAPER.md by eye.

It is the ground truth the differential runner
(:mod:`repro.verify.differential`) holds the optimized tiers to.  Do
NOT optimize this module; its only job is to be visibly correct.

The taxonomy, from the paper (§4.1), per (peer, prefix) route stream:

- first announcement ever           → NEW_ANNOUNCE  (uncategorized)
- announce while reachable,
  same (NextHop, ASPATH)            → AADUP  (policy fluctuation when
                                      any other attribute changed)
- announce while reachable,
  different (NextHop, ASPATH)       → AADIFF
- announce while unreachable,
  same (NextHop, ASPATH) as last    → WADUP
- announce while unreachable,
  different (NextHop, ASPATH)       → WADIFF
- withdraw while reachable          → PLAIN_WITHDRAW (uncategorized)
- withdraw while unreachable        → WWDUP
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "FIGURE8_EDGES",
    "reference_classify",
    "reference_counts",
    "reference_counts_by_peer",
    "reference_counts_by_prefix",
    "reference_bin_counts",
    "reference_interarrival_histogram",
    "reference_digest",
]

#: Figure 8's bin edges in seconds (1s 5s 30s 1m 5m 10m 30m 1h 2h 4h
#: 8h 24h); bin ``b`` holds gaps in ``(edge[b-1], edge[b]]``.  Spelled
#: out here rather than imported so the oracle stays self-contained.
FIGURE8_EDGES: Tuple[float, ...] = (
    1.0, 5.0, 30.0, 60.0, 300.0, 600.0, 1800.0,
    3600.0, 7200.0, 14400.0, 28800.0, 86400.0,
)

#: The paper's instability / pathological roll-up sets.
INSTABILITY = ("WADIFF", "AADIFF", "WADUP")
PATHOLOGICAL = ("AADUP", "WWDUP")


def _attr_tuple(attributes) -> tuple:
    """A path-attribute bundle as one plain comparable tuple.

    Spelled out field by field so full-bundle equality (the AADup
    policy-fluctuation test) visibly covers every attribute.
    """
    return (
        attributes.next_hop,
        tuple(attributes.as_path),
        int(attributes.origin),
        attributes.med,
        attributes.local_pref,
        tuple(sorted(attributes.communities)),
        attributes.atomic_aggregate,
        attributes.aggregator,
    )


def _forwarding_tuple(attributes) -> tuple:
    """The (NextHop, ASPATH) half of the paper's forwarding tuple."""
    return (attributes.next_hop, tuple(attributes.as_path))


def reference_classify(records: Iterable) -> List[Tuple[str, bool]]:
    """Label every record ``(category name, policy_change)``.

    ``records`` is any iterable of objects with the
    :class:`~repro.collector.record.UpdateRecord` shape (duck-typed so
    this module imports nothing).  State per (peer, prefix) pair is the
    same triple the paper's tooling tracked: currently reachable, ever
    announced, last announced attributes (kept across withdrawals so a
    re-announcement classifies as WADup vs WADiff).
    """
    reachable: Dict[tuple, bool] = {}
    ever_announced: Dict[tuple, bool] = {}
    last_attributes: Dict[tuple, tuple] = {}
    labels: List[Tuple[str, bool]] = []
    for record in records:
        key = (record.peer_id, record.prefix.network, record.prefix.length)
        if record.is_announce:
            current = _attr_tuple(record.attributes)
            if not ever_announced.get(key, False):
                category, policy = "NEW_ANNOUNCE", False
            else:
                previous = last_attributes[key]
                same_forwarding = current[0:2] == previous[0:2]
                if reachable.get(key, False):
                    if same_forwarding:
                        category = "AADUP"
                        policy = current != previous
                    else:
                        category, policy = "AADIFF", False
                else:
                    category = "WADUP" if same_forwarding else "WADIFF"
                    policy = False
            reachable[key] = True
            ever_announced[key] = True
            last_attributes[key] = current
        else:
            if reachable.get(key, False):
                category, policy = "PLAIN_WITHDRAW", False
            else:
                category, policy = "WWDUP", False
            reachable[key] = False
        labels.append((category, policy))
    return labels


def reference_counts(records: Iterable) -> Dict[str, int]:
    """Per-category tallies plus the policy-fluctuation count.

    Returns a dict of category name → count (only categories that
    occurred) with an extra ``"policy_changes"`` entry — the same
    canonical shape as
    :meth:`~repro.core.instability.CategoryCounts.nonzero_dict`.
    """
    counts: Dict[str, int] = {}
    policy_changes = 0
    for category, policy in reference_classify(records):
        counts[category] = counts.get(category, 0) + 1
        if policy:
            policy_changes += 1
    result = {name: counts[name] for name in sorted(counts)}
    result["policy_changes"] = policy_changes
    return result


def reference_counts_by_peer(records: Iterable) -> Dict[int, Dict[str, int]]:
    """Per-peer-AS category tallies (Figure 6's per-peer points)."""
    records = list(records)
    labels = reference_classify(records)
    result: Dict[int, Dict[str, int]] = {}
    for record, (category, policy) in zip(records, labels):
        table = result.setdefault(record.peer_asn, {"policy_changes": 0})
        table[category] = table.get(category, 0) + 1
        if policy:
            table["policy_changes"] += 1
    return result


def reference_counts_by_prefix(records: Iterable) -> Dict[str, int]:
    """Events per prefix, keyed ``"network/length"`` with the network
    as a plain integer (no address rendering to depend on)."""
    result: Dict[str, int] = {}
    for record in records:
        key = f"{record.prefix.network}/{record.prefix.length}"
        result[key] = result.get(key, 0) + 1
    return result


def reference_bin_counts(
    records: Iterable,
    bin_width: float = 600.0,
    start: float = 0.0,
    end: Optional[float] = None,
) -> List[int]:
    """Per-bin record counts over ``[start, end)`` (the Figure 2–5
    time-series input).  ``end`` defaults to one bin past the latest
    record, matching :func:`repro.analysis.timeseries.bin_records`."""
    times = [record.time for record in records]
    if not times:
        return []
    if end is None:
        end = max(times) + bin_width
    n_bins = max(1, -int(-(end - start) // bin_width))
    counts = [0] * n_bins
    for time in times:
        index = int((time - start) // bin_width)
        if 0 <= index < n_bins:
            counts[index] += 1
    return counts


def reference_interarrival_histogram(
    records: Iterable,
    category: Optional[str] = None,
) -> List[int]:
    """Figure 8's per-bin gap counts, computed the obvious way.

    Gaps are between consecutive events of each (prefix, peer AS)
    pair — the paper's Prefix+AS unit — optionally restricted to one
    taxonomy category; gaps above 24 hours are dropped.
    """
    records = list(records)
    labels = reference_classify(records)
    by_pair: Dict[tuple, List[float]] = {}
    for record, (name, _) in zip(records, labels):
        if category is not None and name != category:
            continue
        key = (record.prefix.network, record.prefix.length, record.peer_asn)
        by_pair.setdefault(key, []).append(record.time)
    counts = [0] * len(FIGURE8_EDGES)
    for times in by_pair.values():
        times.sort()
        for earlier, later in zip(times, times[1:]):
            gap = later - earlier
            for index, edge in enumerate(FIGURE8_EDGES):
                if gap <= edge:
                    counts[index] += 1
                    break
    return counts


def reference_digest(records: Iterable) -> str:
    """SHA-256 over the classified stream, record by record.

    One line per record — time, peer, prefix, kind, label, policy flag
    — so any divergence anywhere in the stream changes the digest.
    The differential runner computes the same rendering from the
    optimized tiers' labels and compares.
    """
    records = list(records)
    labels = reference_classify(records)
    digest = hashlib.sha256()
    for record, (category, policy) in zip(records, labels):
        line = (
            f"{record.time!r}|{record.peer_id}|{record.peer_asn}"
            f"|{record.prefix.network}/{record.prefix.length}"
            f"|{'A' if record.is_announce else 'W'}"
            f"|{category}|{int(policy)}\n"
        )
        digest.update(line.encode("ascii"))
    return digest.hexdigest()
