"""The reference oracle: the paper's semantics in the plainest Python.

This module re-implements the §4.1 update taxonomy, the inter-arrival
binning of Figure 8, the per-bin time series, and the per-peer /
per-prefix aggregations — as dict-of-lists Python with no imports from
the rest of the library and no NumPy.  It is deliberately naive: every
rule is one obvious ``if``, every aggregate one obvious dict, so the
whole file can be audited against PAPER.md by eye.

It is the ground truth the differential runner
(:mod:`repro.verify.differential`) holds the optimized tiers to.  Do
NOT optimize this module; its only job is to be visibly correct.

The taxonomy, from the paper (§4.1), per (peer, prefix) route stream:

- first announcement ever           → NEW_ANNOUNCE  (uncategorized)
- announce while reachable,
  same (NextHop, ASPATH)            → AADUP  (policy fluctuation when
                                      any other attribute changed)
- announce while reachable,
  different (NextHop, ASPATH)       → AADIFF
- announce while unreachable,
  same (NextHop, ASPATH) as last    → WADUP
- announce while unreachable,
  different (NextHop, ASPATH)       → WADIFF
- withdraw while reachable          → PLAIN_WITHDRAW (uncategorized)
- withdraw while unreachable        → WWDUP
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "FIGURE8_EDGES",
    "DETECTION_FLAGS",
    "reference_classify",
    "reference_counts",
    "reference_counts_by_peer",
    "reference_counts_by_prefix",
    "reference_bin_counts",
    "reference_interarrival_histogram",
    "reference_digest",
    "reference_detect",
    "reference_detection_counts",
    "reference_detection_digest",
    "reference_stability",
]

#: Figure 8's bin edges in seconds (1s 5s 30s 1m 5m 10m 30m 1h 2h 4h
#: 8h 24h); bin ``b`` holds gaps in ``(edge[b-1], edge[b]]``.  Spelled
#: out here rather than imported so the oracle stays self-contained.
FIGURE8_EDGES: Tuple[float, ...] = (
    1.0, 5.0, 30.0, 60.0, 300.0, 600.0, 1800.0,
    3600.0, 7200.0, 14400.0, 28800.0, 86400.0,
)

#: The paper's instability / pathological roll-up sets.
INSTABILITY = ("WADIFF", "AADIFF", "WADUP")
PATHOLOGICAL = ("AADUP", "WWDUP")


def _attr_tuple(attributes) -> tuple:
    """A path-attribute bundle as one plain comparable tuple.

    Spelled out field by field so full-bundle equality (the AADup
    policy-fluctuation test) visibly covers every attribute.
    """
    return (
        attributes.next_hop,
        tuple(attributes.as_path),
        int(attributes.origin),
        attributes.med,
        attributes.local_pref,
        tuple(sorted(attributes.communities)),
        attributes.atomic_aggregate,
        attributes.aggregator,
    )


def _forwarding_tuple(attributes) -> tuple:
    """The (NextHop, ASPATH) half of the paper's forwarding tuple."""
    return (attributes.next_hop, tuple(attributes.as_path))


def reference_classify(records: Iterable) -> List[Tuple[str, bool]]:
    """Label every record ``(category name, policy_change)``.

    ``records`` is any iterable of objects with the
    :class:`~repro.collector.record.UpdateRecord` shape (duck-typed so
    this module imports nothing).  State per (peer, prefix) pair is the
    same triple the paper's tooling tracked: currently reachable, ever
    announced, last announced attributes (kept across withdrawals so a
    re-announcement classifies as WADup vs WADiff).
    """
    reachable: Dict[tuple, bool] = {}
    ever_announced: Dict[tuple, bool] = {}
    last_attributes: Dict[tuple, tuple] = {}
    labels: List[Tuple[str, bool]] = []
    for record in records:
        key = (record.peer_id, record.prefix.network, record.prefix.length)
        if record.is_announce:
            current = _attr_tuple(record.attributes)
            if not ever_announced.get(key, False):
                category, policy = "NEW_ANNOUNCE", False
            else:
                previous = last_attributes[key]
                same_forwarding = current[0:2] == previous[0:2]
                if reachable.get(key, False):
                    if same_forwarding:
                        category = "AADUP"
                        policy = current != previous
                    else:
                        category, policy = "AADIFF", False
                else:
                    category = "WADUP" if same_forwarding else "WADIFF"
                    policy = False
            reachable[key] = True
            ever_announced[key] = True
            last_attributes[key] = current
        else:
            if reachable.get(key, False):
                category, policy = "PLAIN_WITHDRAW", False
            else:
                category, policy = "WWDUP", False
            reachable[key] = False
        labels.append((category, policy))
    return labels


def reference_counts(records: Iterable) -> Dict[str, int]:
    """Per-category tallies plus the policy-fluctuation count.

    Returns a dict of category name → count (only categories that
    occurred) with an extra ``"policy_changes"`` entry — the same
    canonical shape as
    :meth:`~repro.core.instability.CategoryCounts.nonzero_dict`.
    """
    counts: Dict[str, int] = {}
    policy_changes = 0
    for category, policy in reference_classify(records):
        counts[category] = counts.get(category, 0) + 1
        if policy:
            policy_changes += 1
    result = {name: counts[name] for name in sorted(counts)}
    result["policy_changes"] = policy_changes
    return result


def reference_counts_by_peer(records: Iterable) -> Dict[int, Dict[str, int]]:
    """Per-peer-AS category tallies (Figure 6's per-peer points)."""
    records = list(records)
    labels = reference_classify(records)
    result: Dict[int, Dict[str, int]] = {}
    for record, (category, policy) in zip(records, labels):
        table = result.setdefault(record.peer_asn, {"policy_changes": 0})
        table[category] = table.get(category, 0) + 1
        if policy:
            table["policy_changes"] += 1
    return result


def reference_counts_by_prefix(records: Iterable) -> Dict[str, int]:
    """Events per prefix, keyed ``"network/length"`` with the network
    as a plain integer (no address rendering to depend on)."""
    result: Dict[str, int] = {}
    for record in records:
        key = f"{record.prefix.network}/{record.prefix.length}"
        result[key] = result.get(key, 0) + 1
    return result


def reference_bin_counts(
    records: Iterable,
    bin_width: float = 600.0,
    start: float = 0.0,
    end: Optional[float] = None,
) -> List[int]:
    """Per-bin record counts over ``[start, end)`` (the Figure 2–5
    time-series input).  ``end`` defaults to one bin past the latest
    record, matching :func:`repro.analysis.timeseries.bin_records`."""
    times = [record.time for record in records]
    if not times:
        return []
    if end is None:
        end = max(times) + bin_width
    n_bins = max(1, -int(-(end - start) // bin_width))
    counts = [0] * n_bins
    for time in times:
        index = int((time - start) // bin_width)
        if 0 <= index < n_bins:
            counts[index] += 1
    return counts


def reference_interarrival_histogram(
    records: Iterable,
    category: Optional[str] = None,
) -> List[int]:
    """Figure 8's per-bin gap counts, computed the obvious way.

    Gaps are between consecutive events of each (prefix, peer AS)
    pair — the paper's Prefix+AS unit — optionally restricted to one
    taxonomy category; gaps above 24 hours are dropped.
    """
    records = list(records)
    labels = reference_classify(records)
    by_pair: Dict[tuple, List[float]] = {}
    for record, (name, _) in zip(records, labels):
        if category is not None and name != category:
            continue
        key = (record.prefix.network, record.prefix.length, record.peer_asn)
        by_pair.setdefault(key, []).append(record.time)
    counts = [0] * len(FIGURE8_EDGES)
    for times in by_pair.values():
        times.sort()
        for earlier, later in zip(times, times[1:]):
            gap = later - earlier
            for index, edge in enumerate(FIGURE8_EDGES):
                if gap <= edge:
                    counts[index] += 1
                    break
    return counts


# -- adversarial-event detection (the oracle for repro.analysis.detection) --

#: Detection flag bits, spelled out locally (the detection tier's
#: canonical values — golden digests depend on them staying put).
DETECTION_FLAGS: Tuple[Tuple[int, str], ...] = (
    (1, "moas_conflict"),
    (2, "origin_change"),
    (4, "subprefix_foreign"),
    (8, "subprefix_deagg"),
    (16, "valley_violation"),
    (32, "forged_edge"),
)


def _reference_path_flags(path: tuple, edges) -> int:
    """Valley / forged-edge bits for one sender-first AS path.

    ``edges`` maps ``(u, v) -> "up" | "down" | "peer"`` — the direction
    a route travels when ``u`` exports it to ``v`` (the plain-dict form
    of :meth:`repro.analysis.detection.AsRelationships.edges`).  The
    final export to the observing collector is a peering session, so a
    route is a leak (valley) whenever an up or peer hop follows any
    non-up hop — including that implicit last one.
    """
    if edges is None or len(path) < 2:
        return 0
    collapsed: List[int] = []
    for asn in path:
        if not collapsed or collapsed[-1] != asn:
            collapsed.append(asn)
    if len(collapsed) < 2:
        return 0
    route = list(reversed(collapsed))  # origin first, sender last
    hops: List[str] = []
    for u, v in zip(route, route[1:]):
        relation = edges.get((u, v))
        if relation is None:
            return 32  # forged_edge
        hops.append(relation)
    # The implicit final hop: sender exports to the observer, a peer.
    hops.append("peer")
    seen_non_up = False
    for relation in hops:
        if relation == "up" or relation == "peer":
            if seen_non_up:
                return 16  # valley_violation
        if relation != "up":
            seen_non_up = True
    return 0


def reference_detect(records: Iterable, edges=None) -> List[int]:
    """Detection flag bitmask per record, computed the obvious way.

    State is three dicts: which origin each (peer, prefix) route
    currently announces, the multiset of origins currently announcing
    each exact prefix, and the last origin ever announced per prefix
    (kept across withdrawals).  Per announcement, in order: path
    checks, retire the peer's previous origin, MOAS against the
    remaining concurrent origins, origin-change against the historical
    origin, sub-prefix check against the longest active strict
    supernet, then record the new origin.
    """
    route_origin: Dict[tuple, int] = {}
    origin_count: Dict[tuple, Dict[int, int]] = {}
    last_origin: Dict[tuple, int] = {}
    flags_out: List[int] = []

    def retire(p: tuple, origin: int) -> None:
        bucket = origin_count[p]
        bucket[origin] -= 1
        if bucket[origin] == 0:
            del bucket[origin]
        if not bucket:
            del origin_count[p]

    for record in records:
        net, plen = record.prefix.network, record.prefix.length
        p = (net, plen)
        key = (record.peer_id, net, plen)
        flags = 0
        if record.is_announce:
            path = tuple(record.attributes.as_path)
            origin = path[-1] if path else record.peer_asn
            flags = _reference_path_flags(path, edges)
            old = route_origin.get(key)
            if old is not None:
                retire(p, old)
            for other in origin_count.get(p, {}):
                if other != origin:
                    flags |= 1  # moas_conflict
                    break
            if p in last_origin and last_origin[p] != origin:
                flags |= 2  # origin_change
            last_origin[p] = origin
            best = None
            for qnet, qlen in origin_count:
                if (
                    qlen < plen
                    and (net >> (32 - qlen)) << (32 - qlen) == qnet
                    and (best is None or qlen > best[1])
                ):
                    best = (qnet, qlen)
            if best is not None:
                if origin in origin_count[best]:
                    flags |= 8  # subprefix_deagg
                else:
                    flags |= 4  # subprefix_foreign
            if p not in origin_count:
                origin_count[p] = {}
            origin_count[p][origin] = origin_count[p].get(origin, 0) + 1
            route_origin[key] = origin
        else:
            old = route_origin.pop(key, None)
            if old is not None:
                retire(p, old)
        flags_out.append(flags)
    return flags_out


def reference_detection_counts(records: Iterable, edges=None) -> Dict[str, int]:
    """Cumulative per-flag totals (canonical flag order)."""
    flags = reference_detect(list(records), edges)
    result = {name: 0 for _, name in DETECTION_FLAGS}
    for value in flags:
        for bit, name in DETECTION_FLAGS:
            if value & bit:
                result[name] += 1
    return result


def reference_stability(records: Iterable) -> Dict[str, Tuple[int, int, int]]:
    """Per-prefix ``(events, instability, withdrawals)`` counters,
    keyed ``"network/length"`` — the integer inputs of the path-vector
    stability score (instability = AADiff/WADiff/WADup events,
    withdrawals = plain withdrawals of a reachable route)."""
    records = list(records)
    labels = reference_classify(records)
    result: Dict[str, List[int]] = {}
    for record, (category, _) in zip(records, labels):
        key = f"{record.prefix.network}/{record.prefix.length}"
        counters = result.setdefault(key, [0, 0, 0])
        counters[0] += 1
        if category in INSTABILITY:
            counters[1] += 1
        elif category == "PLAIN_WITHDRAW":
            counters[2] += 1
    return {key: tuple(value) for key, value in result.items()}


def reference_detection_digest(records: Iterable, edges=None) -> str:
    """SHA-256 over the detected stream — one line per record with its
    flag bitmask, rendered exactly like
    :func:`repro.analysis.detection.detection_digest` (without
    importing it), so all three detection tiers share one digest coin.
    """
    records = list(records)
    flags = reference_detect(records, edges)
    digest = hashlib.sha256()
    for record, value in zip(records, flags):
        line = (
            f"{record.time!r}|{record.peer_id}|{record.peer_asn}"
            f"|{record.prefix.network}/{record.prefix.length}"
            f"|{'A' if record.is_announce else 'W'}|{value}\n"
        )
        digest.update(line.encode("ascii"))
    return digest.hexdigest()


def reference_digest(records: Iterable) -> str:
    """SHA-256 over the classified stream, record by record.

    One line per record — time, peer, prefix, kind, label, policy flag
    — so any divergence anywhere in the stream changes the digest.
    The differential runner computes the same rendering from the
    optimized tiers' labels and compares.
    """
    records = list(records)
    labels = reference_classify(records)
    digest = hashlib.sha256()
    for record, (category, policy) in zip(records, labels):
        line = (
            f"{record.time!r}|{record.peer_id}|{record.peer_asn}"
            f"|{record.prefix.network}/{record.prefix.length}"
            f"|{'A' if record.is_announce else 'W'}"
            f"|{category}|{int(policy)}\n"
        )
        digest.update(line.encode("ascii"))
    return digest.hexdigest()
