"""Seeded fuzz streams for the differential runner.

Two kinds of generator, both pure functions of their seed:

- :func:`fuzz_stream` — a random update stream over a small vocabulary
  of peers, prefixes, and attribute bundles.  The vocabulary is kept
  deliberately tiny so the classifier's interesting transitions (AADup
  vs AADiff, WADup vs WADiff, WWDup runs) occur constantly instead of
  almost never.
- the ``adversarial_*`` generators — deterministic constructions of the
  known hard cases for the columnar tier: state carried across batch
  boundaries, many records at one timestamp (where an unstable sort
  would reorder), re-announcement after explicit withdrawal (the WADup
  vs WADiff memory), and attribute-interning collisions (bundles that
  share a forwarding key but differ in policy attributes, or are equal
  across distinct Python objects).

Every generator returns a :class:`FuzzStream`: the records plus the
batch boundaries the differential runner should split them at (the
boundaries are part of the adversarial construction — a cross-batch
case is only hard if the batches actually cut through it).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from ..bgp.attributes import AsPath, PathAttributes
from ..collector.record import UpdateKind, UpdateRecord
from ..net.prefix import Prefix

__all__ = [
    "FuzzStream",
    "fuzz_stream",
    "adversarial_cross_batch_carry",
    "adversarial_duplicate_timestamps",
    "adversarial_reannounce_after_withdraw",
    "adversarial_interning_collisions",
    "ADVERSARIAL_GENERATORS",
    "detection_topology",
    "detection_moas_churn",
    "detection_subprefix_overlap",
    "detection_valley_paths",
    "detection_origin_flip",
    "DETECTION_GENERATORS",
]


@dataclass
class FuzzStream:
    """A generated stream plus how to batch it."""

    name: str
    seed: int
    records: List[UpdateRecord]
    #: Indices where the columnar tier should cut batches (sorted,
    #: exclusive of 0 and len); the runner also tries its own cuts.
    boundaries: List[int] = field(default_factory=list)


def _peers(n: int) -> List[Tuple[int, int]]:
    """(peer_id, peer_asn) pairs; ids mimic exchange-point addresses."""
    return [((192 << 24) + i + 1, 200 + i) for i in range(n)]


def _prefixes(n: int) -> List[Prefix]:
    return [Prefix((10 << 24) + i * 256, 24) for i in range(n)]


def _attr_vocab(peer_id: int, asn: int) -> List[PathAttributes]:
    """A small bundle vocabulary for one peer: two forwarding variants
    (different ASPATH), each with policy-only variations (MED,
    communities) that share the forwarding key."""
    primary = AsPath((asn, 3000 + asn))
    alternate = AsPath((asn, 5000 + asn, 3000 + asn))
    return [
        PathAttributes(as_path=primary, next_hop=peer_id),
        PathAttributes(as_path=primary, next_hop=peer_id, med=20),
        PathAttributes(as_path=primary, next_hop=peer_id, med=40),
        PathAttributes(
            as_path=primary, next_hop=peer_id, communities=frozenset({1})
        ),
        PathAttributes(as_path=alternate, next_hop=peer_id),
        PathAttributes(as_path=alternate, next_hop=peer_id, med=20),
    ]


def fuzz_stream(
    seed: int,
    n_records: int = 120,
    n_peers: int = 3,
    n_prefixes: int = 4,
    duplicate_time_probability: float = 0.2,
    withdraw_probability: float = 0.4,
) -> FuzzStream:
    """A random stream (see module docstring); pure function of args.

    Times are non-decreasing with a configurable chance of exact ties;
    batch boundaries are drawn randomly, including boundaries that land
    inside tie runs.
    """
    rng = random.Random(seed)
    peers = _peers(n_peers)
    prefixes = _prefixes(n_prefixes)
    vocab: Dict[int, List[PathAttributes]] = {
        peer_id: _attr_vocab(peer_id, asn) for peer_id, asn in peers
    }
    records: List[UpdateRecord] = []
    time = 0.0
    for _ in range(n_records):
        if records and rng.random() < duplicate_time_probability:
            pass  # exact tie with the previous record
        else:
            time += rng.choice([0.25, 1.0, 30.0, 60.0, 613.7])
        peer_id, asn = rng.choice(peers)
        prefix = rng.choice(prefixes)
        if rng.random() < withdraw_probability:
            records.append(
                UpdateRecord(time, peer_id, asn, prefix, UpdateKind.WITHDRAW)
            )
        else:
            attrs = rng.choice(vocab[peer_id])
            records.append(
                UpdateRecord(
                    time, peer_id, asn, prefix, UpdateKind.ANNOUNCE, attrs
                )
            )
    n_boundaries = rng.randint(0, 3)
    boundaries = sorted(
        rng.sample(range(1, max(2, len(records))), n_boundaries)
    ) if len(records) > 2 else []
    return FuzzStream("fuzz", seed, records, boundaries)


# -- adversarial constructions ----------------------------------------------


def adversarial_cross_batch_carry(seed: int) -> FuzzStream:
    """Sequences whose classification depends on state carried across
    a batch boundary: the batch cut lands between the W and the A of
    WA pairs, between two As of AA pairs, and mid-WWDup-run."""
    rng = random.Random(seed)
    peers = _peers(2)
    prefixes = _prefixes(3)
    records: List[UpdateRecord] = []
    time = 0.0

    def emit(peer, prefix, attrs=None):
        nonlocal time
        time += rng.choice([0.0, 30.0])
        peer_id, asn = peer
        if attrs is None:
            records.append(
                UpdateRecord(time, peer_id, asn, prefix, UpdateKind.WITHDRAW)
            )
        else:
            records.append(
                UpdateRecord(
                    time, peer_id, asn, prefix, UpdateKind.ANNOUNCE, attrs
                )
            )

    boundaries: List[int] = []
    for peer in peers:
        vocab = _attr_vocab(*peer)
        for prefix in prefixes:
            primary, alternate = vocab[0], vocab[4]
            # Establish reachability, then cut between W and re-A
            # (WADup vs WADiff needs last_attributes to survive the
            # batch boundary AND the explicit withdrawal).
            emit(peer, prefix, primary)
            emit(peer, prefix)  # PLAIN_WITHDRAW
            boundaries.append(len(records))
            emit(peer, prefix, primary if rng.random() < 0.5 else alternate)
            # Cut between two announcements (AADup/AADiff carry).
            boundaries.append(len(records))
            emit(peer, prefix, alternate)
            # Cut inside a WWDup run (reachability carry).
            emit(peer, prefix)
            boundaries.append(len(records))
            emit(peer, prefix)
            emit(peer, prefix)
    return FuzzStream(
        "cross_batch_carry", seed, records, sorted(set(boundaries))
    )


def adversarial_duplicate_timestamps(seed: int) -> FuzzStream:
    """Long runs of records at the same instant.

    The columnar tier groups records with a stable sort; an unstable
    sort (or a time-keyed tiebreak) would reorder same-time records of
    one (peer, prefix) pair and flip their labels.  Batch boundaries
    are placed inside the tie runs.
    """
    rng = random.Random(seed)
    peers = _peers(2)
    prefixes = _prefixes(2)
    records: List[UpdateRecord] = []
    boundaries: List[int] = []
    time = 0.0
    for _ in range(8):
        time += 30.0
        # Everything in this burst shares one timestamp.
        for _ in range(rng.randint(4, 10)):
            peer_id, asn = rng.choice(peers)
            prefix = rng.choice(prefixes)
            if rng.random() < 0.4:
                records.append(
                    UpdateRecord(
                        time, peer_id, asn, prefix, UpdateKind.WITHDRAW
                    )
                )
            else:
                attrs = rng.choice(_attr_vocab(peer_id, asn))
                records.append(
                    UpdateRecord(
                        time, peer_id, asn, prefix, UpdateKind.ANNOUNCE, attrs
                    )
                )
        boundaries.append(len(records) - rng.randint(1, 3))
    boundaries = sorted(
        {b for b in boundaries if 0 < b < len(records)}
    )
    return FuzzStream("duplicate_timestamps", seed, records, boundaries)


def adversarial_reannounce_after_withdraw(seed: int) -> FuzzStream:
    """Every WADup/WADiff shape: withdraw then re-announce with the
    same bundle, a policy-only change (same forwarding key — still
    WADup), and a forwarding change; plus withdraw-first starts
    (WWDup before any announcement)."""
    rng = random.Random(seed)
    peer_id, asn = _peers(1)[0]
    vocab = _attr_vocab(peer_id, asn)
    records: List[UpdateRecord] = []
    time = 0.0

    def emit(prefix, attrs=None):
        nonlocal time
        time += rng.choice([1.0, 30.0])
        if attrs is None:
            records.append(
                UpdateRecord(time, peer_id, asn, prefix, UpdateKind.WITHDRAW)
            )
        else:
            records.append(
                UpdateRecord(
                    time, peer_id, asn, prefix, UpdateKind.ANNOUNCE, attrs
                )
            )

    prefixes = _prefixes(4)
    # Withdrawals before any announcement: WWDup from record one.
    emit(prefixes[0])
    emit(prefixes[0])
    # W then identical re-announce: WADup.
    emit(prefixes[1], vocab[0])
    emit(prefixes[1])
    emit(prefixes[1], vocab[0])
    # W then policy-only change: same forwarding key, still WADup.
    emit(prefixes[2], vocab[0])
    emit(prefixes[2])
    emit(prefixes[2], vocab[1])
    # W then forwarding change: WADiff.  Then W, W (PLAIN + WWDup),
    # then re-announce of the *pre-withdrawal* bundle: WADup again.
    emit(prefixes[3], vocab[0])
    emit(prefixes[3])
    emit(prefixes[3], vocab[4])
    emit(prefixes[3])
    emit(prefixes[3])
    emit(prefixes[3], vocab[4])
    boundary = rng.randint(1, len(records) - 1)
    return FuzzStream(
        "reannounce_after_withdraw", seed, records, [boundary]
    )


def adversarial_interning_collisions(seed: int) -> FuzzStream:
    """Attribute bundles built to stress the interning table.

    Distinct Python objects with equal values must intern to one id;
    bundles sharing a forwarding key but differing in MED/communities
    must get one forwarding id but distinct attribute ids (AADup with
    policy fluctuation); the same ASPATH used by two peers with
    different next hops must NOT share a forwarding id.
    """
    rng = random.Random(seed)
    (peer_a, asn_a), (peer_b, asn_b) = _peers(2)
    prefix = _prefixes(1)[0]
    shared_path = AsPath((asn_a, 9001))
    records: List[UpdateRecord] = []
    time = 0.0

    def announce(peer_id, asn, attrs):
        nonlocal time
        time += 30.0
        records.append(
            UpdateRecord(time, peer_id, asn, prefix, UpdateKind.ANNOUNCE, attrs)
        )

    # Equal-value bundles from distinct objects (fresh constructions).
    for _ in range(3):
        announce(
            peer_a, asn_a,
            PathAttributes(as_path=AsPath((asn_a, 9001)), next_hop=peer_a),
        )
    # Policy-only variations on one forwarding key, shuffled.
    variants = [
        PathAttributes(as_path=shared_path, next_hop=peer_a, med=med)
        for med in (None, 20, 40, 20)
    ]
    rng.shuffle(variants)
    for attrs in variants:
        announce(peer_a, asn_a, attrs)
    # Same ASPATH, different peer and next hop: a different route.
    announce(
        peer_b, asn_b,
        PathAttributes(as_path=shared_path, next_hop=peer_b),
    )
    announce(
        peer_b, asn_b,
        PathAttributes(as_path=shared_path, next_hop=peer_b, med=20),
    )
    boundary = rng.randint(1, len(records) - 1)
    return FuzzStream("interning_collisions", seed, records, [boundary])


#: name → generator(seed); the differential campaign iterates these.
ADVERSARIAL_GENERATORS: Dict[str, Callable[[int], FuzzStream]] = {
    "cross_batch_carry": adversarial_cross_batch_carry,
    "duplicate_timestamps": adversarial_duplicate_timestamps,
    "reannounce_after_withdraw": adversarial_reannounce_after_withdraw,
    "interning_collisions": adversarial_interning_collisions,
}


# -- detection-tier constructions -------------------------------------------
#
# These streams target repro.analysis.detection: concurrent-origin
# (MOAS) multisets cut by batch boundaries, sub-prefix coverage,
# valley / forged paths against a declared topology, and origin
# history carried across withdrawals.  The topology below declares
# relationships for *every* path the fuzz generators above emit, so
# the detection differential can run over FUZZ_SEEDS streams too
# (their paths all read as clean customer routes).

#: Origin/transit ASNs of the detection vocabulary.
_DET_ORIGINS = (6500, 6502)
_DET_LEAKY_ORIGIN = 6501  # the transit's own provider — leak material
_DET_TRANSIT = 7000
_DET_LATERAL = 7001  # the transit's peer
_DET_FORGED = 8999  # declared nowhere


def detection_topology():
    """The declared AS relationships behind every generated stream.

    Returns :class:`repro.analysis.detection.AsRelationships`; pass
    ``.edges()`` to the dependency-free oracle.  Fuzz-vocabulary paths
    (``(asn, 3000+asn)``, ``(asn, 5000+asn, 3000+asn)``, the shared
    ``(asn, 9001)``) are all declared as customer chains, so plain fuzz
    streams carry no path flags; the ``detection_*`` vocabulary wires
    one transit with a provider and a lateral peer, making valleys and
    forgeries constructible on demand.
    """
    from ..analysis.detection import AsRelationships

    topology = AsRelationships()
    for _, asn in _peers(8):
        topology.add_provider(asn, 3000 + asn)
        topology.add_provider(5000 + asn, 3000 + asn)
        topology.add_provider(asn, 5000 + asn)
        topology.add_provider(asn, 9001)
        topology.add_provider(asn, _DET_TRANSIT)
    for origin in _DET_ORIGINS:
        topology.add_provider(_DET_TRANSIT, origin)
    topology.add_provider(_DET_LEAKY_ORIGIN, _DET_TRANSIT)
    topology.add_peer(_DET_TRANSIT, _DET_LATERAL)
    return topology


def _det_announce(records, time, peer, prefix, origins):
    """Append an announcement through the transit: path
    ``(peer_asn, 7000, *origins)``."""
    peer_id, asn = peer
    attrs = PathAttributes(
        as_path=AsPath((asn, _DET_TRANSIT) + tuple(origins)),
        next_hop=peer_id,
    )
    records.append(
        UpdateRecord(time, peer_id, asn, prefix, UpdateKind.ANNOUNCE, attrs)
    )


def detection_moas_churn(seed: int) -> FuzzStream:
    """Concurrent origins fighting over exact prefixes.

    Several peers announce the same prefixes under different origins
    with interleaved withdrawals, so the concurrent-origin multiset
    grows, shrinks, and empties repeatedly; batch boundaries land
    mid-conflict, forcing the columnar tier to carry a *populated*
    multiset across cuts."""
    rng = random.Random(seed)
    peers = _peers(3)
    prefixes = _prefixes(2)
    records: List[UpdateRecord] = []
    boundaries: List[int] = []
    time = 0.0
    for _ in range(40):
        time += rng.choice([0.0, 1.0, 30.0])
        peer = rng.choice(peers)
        prefix = rng.choice(prefixes)
        if rng.random() < 0.3:
            peer_id, asn = peer
            records.append(
                UpdateRecord(time, peer_id, asn, prefix, UpdateKind.WITHDRAW)
            )
        else:
            _det_announce(
                records, time, peer, prefix, (rng.choice(_DET_ORIGINS),)
            )
        if rng.random() < 0.15:
            boundaries.append(len(records))
    boundaries = sorted({b for b in boundaries if 0 < b < len(records)})
    return FuzzStream("detection_moas_churn", seed, records, boundaries)


def detection_subprefix_overlap(seed: int) -> FuzzStream:
    """Covering prefixes and more-specifics under shifting origins.

    A /16 cover, /20 middles, and /24 leaves are announced and
    withdrawn so the *longest active* covering prefix changes over
    time, and the same more-specific flips between deaggregation (own
    origin covers) and foreign sub-prefix (only other origins cover).
    """
    rng = random.Random(seed)
    peers = _peers(2)
    cover = Prefix(10 << 24, 16)
    middles = [Prefix((10 << 24) + (i << 12), 20) for i in range(2)]
    leaves = [Prefix((10 << 24) + (i << 8), 24) for i in range(4)]
    records: List[UpdateRecord] = []
    boundaries: List[int] = []
    time = 0.0

    def step(prefix, origin=None):
        nonlocal time
        time += rng.choice([0.0, 30.0])
        peer = rng.choice(peers)
        if origin is None:
            peer_id, asn = peer
            records.append(
                UpdateRecord(time, peer_id, asn, prefix, UpdateKind.WITHDRAW)
            )
        else:
            _det_announce(records, time, peer, prefix, (origin,))

    step(cover, _DET_ORIGINS[0])
    for _ in range(30):
        roll = rng.random()
        if roll < 0.2:
            # Toggle a middle cover under either origin.
            step(rng.choice(middles), rng.choice(_DET_ORIGINS))
        elif roll < 0.35:
            step(rng.choice(middles + [cover]))  # withdraw a cover
        else:
            step(rng.choice(leaves), rng.choice(_DET_ORIGINS))
        if rng.random() < 0.2:
            boundaries.append(len(records))
    boundaries = sorted({b for b in boundaries if 0 < b < len(records)})
    return FuzzStream("detection_subprefix_overlap", seed, records, boundaries)


def detection_valley_paths(seed: int) -> FuzzStream:
    """Clean customer routes, leaks, and forgeries side by side.

    Paths through the declared transit are valley-free
    (``origin → transit → peer``); paths originating at the transit's
    *provider* descend then re-export to the observer (a leak); paths
    through an undeclared ASN are forged; peer-lateral routes
    (``lateral → transit → peer``) violate up-after-peer.  Prepending
    is mixed in — collapsed before edge derivation, it must not change
    any verdict."""
    rng = random.Random(seed)
    peers = _peers(2)
    prefixes = _prefixes(3)
    records: List[UpdateRecord] = []
    time = 0.0
    shapes = (
        (_DET_ORIGINS[0],),  # clean
        (_DET_ORIGINS[1], _DET_ORIGINS[1]),  # clean, prepended
        (_DET_LEAKY_ORIGIN,),  # provider route re-exported: leak
        (_DET_LATERAL,),  # peer route re-exported: leak
        (_DET_FORGED,),  # undeclared adjacency: forgery
        (_DET_FORGED, _DET_ORIGINS[0]),  # forged mid-path
    )
    for _ in range(36):
        time += rng.choice([1.0, 30.0])
        _det_announce(
            records,
            time,
            rng.choice(peers),
            rng.choice(prefixes),
            rng.choice(shapes),
        )
    boundary = rng.randint(1, len(records) - 1)
    return FuzzStream("detection_valley_paths", seed, records, [boundary])


def detection_origin_flip(seed: int) -> FuzzStream:
    """Origin history across withdrawals.

    One prefix changes hands repeatedly with full withdrawals in
    between — the origin-change tracker must remember the last origin
    through the empty multiset, including across batch cuts placed
    exactly at the hand-over points."""
    rng = random.Random(seed)
    peer = _peers(1)[0]
    peer_id, asn = peer
    prefix = _prefixes(1)[0]
    records: List[UpdateRecord] = []
    boundaries: List[int] = []
    time = 0.0
    for flip in range(8):
        origin = _DET_ORIGINS[flip % len(_DET_ORIGINS)]
        for _ in range(rng.randint(1, 3)):
            time += 30.0
            _det_announce(records, time, peer, prefix, (origin,))
        time += 30.0
        records.append(
            UpdateRecord(time, peer_id, asn, prefix, UpdateKind.WITHDRAW)
        )
        boundaries.append(len(records))
    boundaries = sorted({b for b in boundaries if 0 < b < len(records)})
    return FuzzStream("detection_origin_flip", seed, records, boundaries)


#: name → generator(seed); the detection differential iterates these
#: on top of FUZZ_SEEDS and ADVERSARIAL_GENERATORS.
DETECTION_GENERATORS: Dict[str, Callable[[int], FuzzStream]] = {
    "detection_moas_churn": detection_moas_churn,
    "detection_subprefix_overlap": detection_subprefix_overlap,
    "detection_valley_paths": detection_valley_paths,
    "detection_origin_flip": detection_origin_flip,
}
