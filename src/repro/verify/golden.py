"""The golden corpus: frozen expected outputs under ``tests/golden/``.

The corpus pins five layers of behavior to committed history:

- **classifier cases** — seeded fuzz and adversarial streams with
  frozen reference counts, stream digests, and end-of-stream state
  digests;
- **a committed binary trace** (``trace-small.mrt``) with its file
  digest and classification, so the wire codec and the classifier are
  pinned together;
- **campaign + figure cases** — a small campaign's merged
  PartialResult digest and the Figure 2/8 series checksums;
- **detection cases** — the same streams plus the detection-tier
  generators, with frozen per-flag counts, detection digests, and
  detector state digests (under the shared
  :func:`~repro.verify.streams.detection_topology`);
- **attack scenarios** — each adversarial day scenario's smoke digest
  on the single calendar engine, re-run on the parallel driver at 1
  and 2 workers (all three digests must be identical — asserted at
  build time, so ``--check`` enforces worker-count invariance), plus
  its frozen detection counts and digest.

``python -m repro.verify.golden --write`` regenerates the corpus
(byte-stable: regeneration from an unchanged tree is a no-op diff);
``--check`` verifies the working tree against it.  Any intentional
semantic change regenerates the corpus in the same commit, so the
diff shows exactly which frozen outputs moved.
"""

from __future__ import annotations

import argparse
import hashlib
import io
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

from ..analysis.detection import detect_records
from ..analysis.interarrival import histogram_counts, interarrival_columns
from ..analysis.timeseries import bin_records
from ..campaign import CampaignConfig, run_campaign
from ..collector import mrt
from ..core.columns import RecordColumns, classify_columns
from ..sim.adversary import ATTACK_KINDS, scenario_relationships
from ..sim.engine import Engine
from ..sim.scenarios import (
    adversary_day_config,
    run_exchange_day_records,
    simulate,
)
from .differential import stream_digest, streaming_labels
from .reference import reference_counts, reference_interarrival_histogram
from .streams import (
    ADVERSARIAL_GENERATORS,
    DETECTION_GENERATORS,
    FuzzStream,
    detection_topology,
    fuzz_stream,
)

__all__ = ["build_golden", "check_golden", "write_golden", "main"]

CASES_FILE = "cases.json"
TRACE_FILE = "trace-small.mrt"

SCHEMA_VERSION = 2

#: The seeds whose fuzz streams are frozen (arbitrary but committed).
FUZZ_SEEDS = (1, 2, 3, 4, 5)
ADVERSARIAL_SEED = 7
TRACE_SEED = 99
FIGURE_SEED = 1

#: The frozen campaign (small enough to run in seconds, sharded so the
#: merge path is covered).
CAMPAIGN = CampaignConfig(
    days=2, seed=5, n_peers=6, total_prefixes=160, shards=2
)


def _golden_streams() -> List[FuzzStream]:
    streams = [fuzz_stream(seed) for seed in FUZZ_SEEDS]
    for name in sorted(ADVERSARIAL_GENERATORS):
        streams.append(ADVERSARIAL_GENERATORS[name](ADVERSARIAL_SEED))
    return streams


def _detection_streams() -> List[FuzzStream]:
    """The detection corpus: every classifier stream plus the four
    detection-tier generators (MOAS churn, sub-prefix overlap, valley
    paths, origin flips)."""
    streams = _golden_streams()
    for name in sorted(DETECTION_GENERATORS):
        streams.append(DETECTION_GENERATORS[name](ADVERSARIAL_SEED))
    return streams


def _detection_case(stream: FuzzStream, topology) -> Dict:
    result = detect_records(stream.records, topology)
    return {
        "name": stream.name,
        "seed": stream.seed,
        "records": len(stream.records),
        "counts": result.counts,
        "digest": result.digest(stream.records),
        "state_digest": result.detector.state_digest(),
    }


def _scenario_case(kind: str) -> Dict:
    """One adversarial day scenario at the smoke preset: the calendar
    engine's digest, the parallel driver's at 1 and 2 workers (all
    three must agree — worker-count invariance is a build-time
    assertion, so a regression cannot even regenerate the corpus), and
    the detection tier's verdict on the merged record stream."""
    config = adversary_day_config(kind, smoke=True)
    events, digest, records = run_exchange_day_records(Engine, config)
    for workers in (1, 2):
        parallel = simulate(
            kind, engine="parallel", workers=workers, smoke=True
        )
        assert parallel.digest == digest, (
            f"{kind}: parallel workers={workers} digest "
            f"{parallel.digest} != single-engine {digest}"
        )
    detection = detect_records(records, scenario_relationships(config))
    return {
        "scenario": kind,
        "events": events,
        "records": len(records),
        "digest": digest,
        "detection_counts": detection.counts,
        "detection_digest": detection.digest(records),
    }


def _stream_case(stream: FuzzStream) -> Dict:
    labels, state = streaming_labels(stream.records)
    return {
        "name": stream.name,
        "seed": stream.seed,
        "records": len(stream.records),
        "counts": reference_counts(stream.records),
        "digest": stream_digest(stream.records, labels),
        "state_digest": state,
    }


def _trace_bytes() -> bytes:
    stream = fuzz_stream(TRACE_SEED, n_records=60)
    buffer = io.BytesIO()
    mrt.write_records(buffer, stream.records)
    return buffer.getvalue()


def _figure_case() -> Dict:
    stream = fuzz_stream(FIGURE_SEED)
    columns = RecordColumns.from_records(stream.records)
    codes, _ = classify_columns(columns)
    bins = bin_records(columns, bin_width=600.0).tolist()
    histogram = histogram_counts(interarrival_columns(columns)).tolist()
    payload = {
        "seed": FIGURE_SEED,
        "bin_counts": [int(count) for count in bins],
        "interarrival": [int(count) for count in histogram],
    }
    # The naive oracle computes the same Figure 8 histogram; freezing
    # the agreement pins the analysis layer to the paper's semantics.
    assert payload["interarrival"] == reference_interarrival_histogram(
        stream.records
    ), "analysis interarrival disagrees with the reference oracle"
    return payload


def build_golden() -> Tuple[Dict, bytes]:
    """The golden payload and trace bytes, fully determined by code."""
    trace = _trace_bytes()
    decoded = list(mrt.read_records(io.BytesIO(trace)))
    labels, state = streaming_labels(decoded)
    campaign = run_campaign(CAMPAIGN)
    topology = detection_topology()
    payload = {
        "schema": SCHEMA_VERSION,
        "streams": [
            _stream_case(stream) for stream in _golden_streams()
        ],
        "detection": [
            _detection_case(stream, topology)
            for stream in _detection_streams()
        ],
        "scenarios": [_scenario_case(kind) for kind in ATTACK_KINDS],
        "trace": {
            "file": TRACE_FILE,
            "sha256": hashlib.sha256(trace).hexdigest(),
            "records": len(decoded),
            "counts": reference_counts(decoded),
            "digest": stream_digest(decoded, labels),
            "state_digest": state,
        },
        "campaign": {
            "config": CAMPAIGN.to_payload(),
            "fingerprint": CAMPAIGN.fingerprint(),
            "records": campaign.partial.records,
            "digest": campaign.partial.digest(),
        },
        "figures": _figure_case(),
    }
    return payload, trace


def write_golden(directory) -> Path:
    """(Re)generate the corpus under ``directory``; returns the cases
    path.  Output is byte-stable: running twice writes identical
    bytes."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload, trace = build_golden()
    (directory / TRACE_FILE).write_bytes(trace)
    cases = directory / CASES_FILE
    cases.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return cases


def check_golden(directory) -> List[str]:
    """Compare the working tree against the corpus; returns mismatch
    descriptions (empty list = everything frozen still holds)."""
    directory = Path(directory)
    cases = directory / CASES_FILE
    if not cases.exists():
        return [f"missing {cases} (run --write to create the corpus)"]
    frozen = json.loads(cases.read_text())
    payload, trace = build_golden()
    problems: List[str] = []
    if frozen.get("schema") != payload["schema"]:
        problems.append(
            f"schema {frozen.get('schema')!r} != {payload['schema']!r}"
        )
        return problems
    trace_path = directory / TRACE_FILE
    if not trace_path.exists():
        problems.append(f"missing {trace_path}")
    elif trace_path.read_bytes() != trace:
        problems.append(
            f"{TRACE_FILE} on disk differs from regenerated bytes"
        )
    for section in ("trace", "campaign", "figures"):
        if frozen.get(section) != payload[section]:
            problems.append(
                f"{section}: frozen {frozen.get(section)!r} "
                f"!= current {payload[section]!r}"
            )
    keyed_sections = (
        ("streams", "stream", lambda c: (c.get("name"), c.get("seed"))),
        ("detection", "detection", lambda c: (c.get("name"), c.get("seed"))),
        ("scenarios", "scenario", lambda c: c.get("scenario")),
    )
    for section, label, key_of in keyed_sections:
        frozen_cases = {
            key_of(case): case for case in frozen.get(section, [])
        }
        for case in payload[section]:
            key = key_of(case)
            if key not in frozen_cases:
                problems.append(
                    f"{label} {key}: missing from frozen corpus"
                )
            elif frozen_cases[key] != case:
                problems.append(
                    f"{label} {key}: frozen {frozen_cases[key]!r} "
                    f"!= current {case!r}"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate or verify the golden corpus."
    )
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--write", action="store_true", help="regenerate the corpus"
    )
    action.add_argument(
        "--check", action="store_true", help="verify against the corpus"
    )
    parser.add_argument(
        "--dir", default="tests/golden", help="corpus directory"
    )
    args = parser.parse_args(argv)
    if args.write:
        cases = write_golden(args.dir)
        print(f"wrote {cases}")
        return 0
    problems = check_golden(args.dir)
    for problem in problems:
        print(f"GOLDEN MISMATCH: {problem}", file=sys.stderr)
    if not problems:
        print("golden corpus OK")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
