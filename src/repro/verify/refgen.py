"""The pre-vectorization generation tier, kept as a reference oracle.

When the generator's materialization loop went vectorized
(``TraceGenerator._emit_wwdup_columns``), the contract was that every
``random.Random`` draw happens in the *same order* as the scalar
per-record loop, so digests never move.  This module preserves the
original tier verbatim so that contract stays checkable forever —
the same role :class:`repro.sim.refengine.ReferenceEngine` plays for
the calendar-queue simulator:

- :class:`ReferenceTraceGenerator` overrides ``_sample_bin`` with the
  pre-optimization O(bins) weight-list rebuild and linear scan
  (copied verbatim from the pre-vectorization tree), and forces
  ``vectorize=False`` so WWDup runs the scalar per-pair emission loop
  appending one record at a time.
- :func:`reference_twin` clones an existing generator's configuration
  into a reference instance with fresh state, so differential runs
  start from identical ground.

Do NOT optimize this module; its only job is to stay the fixed point
the vectorized tier is diffed (and timed) against — the parity tests
in ``tests/test_generator_parity.py`` and the generation-throughput
bar in ``benchmarks/run_bench.py`` both rest on it.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..core.taxonomy import UpdateCategory
from ..workloads.generator import DayPlan, TraceGenerator

__all__ = ["ReferenceTraceGenerator", "reference_twin"]


class ReferenceTraceGenerator(TraceGenerator):
    """The pre-vectorization :class:`TraceGenerator` materialization.

    Planning (``plan_day``) is untouched — it was always scalar and
    cheap.  Only the two materialization-time differences are rolled
    back: the cached-bisect bin sampler and the slab-vectorized WWDup
    emission.
    """

    __slots__ = ()

    def _sample_bin(
        self, rng: random.Random, plan: DayPlan
    ) -> Optional[int]:
        """The original per-episode sampler: rebuild the lost-bin
        masked weight list and linearly scan the running sum.  One
        ``rng.random()`` draw, exactly like the bisect version."""
        weights = [
            0.0 if i in plan.lost_bins else w
            for i, w in enumerate(plan.bin_weights)
        ]
        total = sum(weights)
        if total <= 0:
            return None
        x = rng.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if x <= acc:
                return i
        return len(weights) - 1

    def _materialize_day(
        self,
        day: int,
        pair_fraction: float,
        plan: Optional[DayPlan],
        categories: Optional[Sequence[UpdateCategory]],
        sink,
        vectorize: bool = True,
    ) -> None:
        del vectorize  # the reference tier is scalar by definition
        super()._materialize_day(
            day, pair_fraction, plan, categories, sink, vectorize=False
        )


def reference_twin(generator: TraceGenerator) -> ReferenceTraceGenerator:
    """A :class:`ReferenceTraceGenerator` with ``generator``'s exact
    configuration and *fresh* pair state — feed both the same day
    sequence and their outputs must be byte-identical."""
    return ReferenceTraceGenerator(
        population=generator.population,
        diurnal=generator.diurnal,
        schedule=generator.schedule,
        targets=generator.targets,
        constants=generator.constants,
        seed=generator.seed,
    )
