"""``python -m repro.verify`` — golden corpus maintenance CLI."""

import sys

from .golden import main

if __name__ == "__main__":
    sys.exit(main())
