"""The differential runner: three tiers, one answer.

:func:`run_differential` pipes a stream through the three independent
implementations of the paper's semantics —

1. the **reference oracle** (:mod:`repro.verify.reference`): naive
   dict-of-lists Python, the ground truth;
2. the **streaming tier**
   (:class:`~repro.core.classifier.StreamClassifier`), fed record by
   record;
3. the **columnar tier**
   (:class:`~repro.core.columns.ColumnClassifier`), fed as batches cut
   at several boundary sets (one batch, the stream's own adversarial
   boundaries, a midpoint split) with one shared
   :class:`~repro.core.columns.AttributeTable` across batches —

and asserts they agree on every per-record label, on the category
counts, on the stream digest, and (between the two stateful tiers) on
the carried per-route state digest.  Any disagreement is minimized
with delta-debugging shrink (:func:`shrink_stream`) into a
counterexample small enough to read.

The tier callables are injectable, so a test can hand in a broken
classifier and watch the harness catch and shrink it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.detection import (
    AsRelationships,
    detect_records,
    detect_records_columnar,
    detection_digest,
)
from ..core.classifier import StreamClassifier
from ..core.columns import (
    AttributeTable,
    CATEGORY_OF_CODE,
    ColumnClassifier,
    RecordColumns,
)
from .reference import (
    DETECTION_FLAGS,
    reference_classify,
    reference_counts,
    reference_detect,
    reference_detection_counts,
    reference_detection_digest,
)
from .streams import FuzzStream

__all__ = [
    "DifferentialMismatch",
    "DifferentialReport",
    "run_differential",
    "run_detection_differential",
    "shrink_stream",
    "stream_digest",
    "streaming_labels",
    "columnar_labels",
    "streaming_detection",
    "columnar_detection",
]

#: A tier's verdict on a stream: per-record ``(category name, policy)``
#: labels plus the classifier's end-of-stream state digest (None for
#: the stateless reference oracle).
Labels = List[Tuple[str, bool]]
TierRun = Tuple[Labels, Optional[str]]
StreamTier = Callable[[Sequence], TierRun]
ColumnTier = Callable[[Sequence, Sequence[int]], TierRun]


def stream_digest(records: Sequence, labels: Labels) -> str:
    """SHA-256 over a labeled stream; the same rendering as
    :func:`~repro.verify.reference.reference_digest`, so any tier's
    labels can be digested and compared against the oracle's."""
    digest = hashlib.sha256()
    for record, (category, policy) in zip(records, labels):
        line = (
            f"{record.time!r}|{record.peer_id}|{record.peer_asn}"
            f"|{record.prefix.network}/{record.prefix.length}"
            f"|{'A' if record.is_announce else 'W'}"
            f"|{category}|{int(policy)}\n"
        )
        digest.update(line.encode("ascii"))
    return digest.hexdigest()


def streaming_labels(records: Sequence) -> TierRun:
    """Run the streaming tier record by record."""
    classifier = StreamClassifier()
    labels: Labels = [
        (update.category.name, update.policy_change)
        for update in (classifier.feed(record) for record in records)
    ]
    return labels, classifier.state_digest()


def columnar_labels(
    records: Sequence, boundaries: Sequence[int] = ()
) -> TierRun:
    """Run the columnar tier over batches cut at ``boundaries``.

    One AttributeTable is shared by all batches and one
    ColumnClassifier carries state across them — exactly how the
    campaign layer feeds a run day by day.
    """
    cuts = sorted(
        {b for b in boundaries if 0 < b < len(records)}
    )
    edges = [0, *cuts, len(records)]
    table = AttributeTable()
    classifier = ColumnClassifier()
    labels: Labels = []
    for lo, hi in zip(edges, edges[1:]):
        batch = RecordColumns.from_records(records[lo:hi], attrs=table)
        codes, policy = classifier.classify(batch)
        labels.extend(
            (CATEGORY_OF_CODE[int(code)].name, bool(flag))
            for code, flag in zip(codes, policy)
        )
    return labels, classifier.state_digest()


def _batchings(
    n: int, boundaries: Sequence[int]
) -> List[Tuple[str, Tuple[int, ...]]]:
    """The boundary sets a stream is columnar-classified at."""
    batchings: List[Tuple[str, Tuple[int, ...]]] = [("whole", ())]
    cuts = tuple(sorted({b for b in boundaries if 0 < b < n}))
    if cuts:
        batchings.append(("given", cuts))
    if n > 1 and (n // 2,) not in (c for _, c in batchings):
        batchings.append(("midpoint", (n // 2,)))
    return batchings


@dataclass
class DifferentialMismatch:
    """One tier disagreeing with the reference oracle, minimized.

    ``kind`` is ``"label"`` (a per-record category/policy divergence),
    ``"digest"`` (stream digests differ — only possible with a
    rendering bug, since labels already compared equal), ``"counts"``
    (aggregate tallies differ), or ``"state"`` (the streaming and
    columnar tiers ended with different carried state).
    """

    stream_name: str
    seed: int
    tier: str
    kind: str
    index: Optional[int]
    expected: object
    actual: object
    record: Optional[str] = None
    shrunk: Optional[List] = None  # minimized failing record list

    def describe(self) -> str:
        """A human-readable counterexample report (what CI uploads)."""
        lines = [
            f"stream={self.stream_name} seed={self.seed} "
            f"tier={self.tier} kind={self.kind}",
            f"expected: {self.expected!r}",
            f"actual:   {self.actual!r}",
        ]
        if self.index is not None:
            lines.append(f"first divergent record index: {self.index}")
        if self.record is not None:
            lines.append(f"record: {self.record}")
        if self.shrunk is not None:
            lines.append(f"shrunk counterexample ({len(self.shrunk)} records):")
            expected = reference_classify(self.shrunk)
            for position, record in enumerate(self.shrunk):
                lines.append(
                    f"  [{position}] t={record.time!r} "
                    f"peer={record.peer_id} "
                    f"prefix={record.prefix.network}/{record.prefix.length} "
                    f"{'A' if record.is_announce else 'W'} "
                    f"→ {expected[position][0]}"
                )
        return "\n".join(lines)


@dataclass
class DifferentialReport:
    """The outcome of a differential run over many streams."""

    streams: int = 0
    records: int = 0
    mismatches: List[DifferentialMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.mismatches)} MISMATCH(ES)"
        return (
            f"differential: {self.streams} streams, "
            f"{self.records} records — {status}"
        )


def _first_mismatch(
    stream: FuzzStream,
    stream_tier: StreamTier,
    column_tier: ColumnTier,
) -> Optional[DifferentialMismatch]:
    """Check one stream against the oracle; None when all tiers agree."""
    records = stream.records
    expected = reference_classify(records)
    expected_counts = reference_counts(records)
    expected_digest = stream_digest(records, expected)

    runs: List[Tuple[str, Labels, Optional[str]]] = []
    labels, state = stream_tier(records)
    runs.append(("streaming", labels, state))
    for batching_name, cuts in _batchings(len(records), stream.boundaries):
        labels, state = column_tier(records, cuts)
        runs.append((f"columnar[{batching_name}]", labels, state))

    def mismatch(tier, kind, index, exp, act) -> DifferentialMismatch:
        rendered = None
        if index is not None:
            r = records[index]
            rendered = (
                f"t={r.time!r} peer={r.peer_id} "
                f"prefix={r.prefix.network}/{r.prefix.length} "
                f"{'A' if r.is_announce else 'W'}"
            )
        return DifferentialMismatch(
            stream_name=stream.name,
            seed=stream.seed,
            tier=tier,
            kind=kind,
            index=index,
            expected=exp,
            actual=act,
            record=rendered,
        )

    for tier, labels, _ in runs:
        if len(labels) != len(expected):
            return mismatch(
                tier, "label", None, len(expected), len(labels)
            )
        for index, (exp, act) in enumerate(zip(expected, labels)):
            if exp != act:
                return mismatch(tier, "label", index, exp, act)
        counts: Dict[str, int] = {}
        policy_changes = 0
        for category, policy in labels:
            counts[category] = counts.get(category, 0) + 1
            policy_changes += int(policy)
        tier_counts = {name: counts[name] for name in sorted(counts)}
        tier_counts["policy_changes"] = policy_changes
        if tier_counts != expected_counts:
            return mismatch(
                tier, "counts", None, expected_counts, tier_counts
            )
        digest = stream_digest(records, labels)
        if digest != expected_digest:
            return mismatch(tier, "digest", None, expected_digest, digest)

    # All stateful tiers must also agree on the state they would carry
    # into a hypothetical next batch.  Tiers without a state digest
    # (e.g. an injected stand-in returning None) simply opt out.
    state_digests = [
        (tier, state) for tier, _, state in runs if state is not None
    ]
    if len(state_digests) >= 2:
        reference_tier, reference_state = state_digests[0]
        for tier, state in state_digests[1:]:
            if state != reference_state:
                return mismatch(
                    f"{tier} vs {reference_tier}",
                    "state", None, reference_state, state,
                )
    return None


def shrink_stream(
    records: Sequence,
    failing: Callable[[List], bool],
) -> List:
    """Delta-debugging (ddmin) minimization of a failing record list.

    ``failing(subset)`` must deterministically return True for the
    full list; the result is a sub-list that still fails and from
    which no single chunk at the final granularity can be removed.
    A final one-by-one pass polishes the result to 1-minimality.
    """
    current = list(records)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        subsets = [
            current[i:i + chunk] for i in range(0, len(current), chunk)
        ]
        reduced = False
        for subset in subsets:
            if len(subset) < len(current) and failing(subset):
                current = subset
                granularity = 2
                reduced = True
                break
        if reduced:
            continue
        for skip in range(len(subsets)):
            complement = [
                record
                for index, subset in enumerate(subsets)
                if index != skip
                for record in subset
            ]
            if len(complement) < len(current) and failing(complement):
                current = complement
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if reduced:
            continue
        if granularity >= len(current):
            break
        granularity = min(len(current), granularity * 2)
    # 1-minimality polish: drop single records while any drop fails.
    index = 0
    while index < len(current) and len(current) > 1:
        candidate = current[:index] + current[index + 1:]
        if failing(candidate):
            current = candidate
        else:
            index += 1
    return current


def _shrink_predicate(
    stream_tier: StreamTier, column_tier: ColumnTier
) -> Callable[[List], bool]:
    """Does any tier disagree with the oracle on this record list?

    Batch boundaries do not survive subsetting, so the shrunk stream
    is re-checked at every possible single cut — exhaustive but cheap
    at counterexample sizes, and it keeps cross-batch bugs failing as
    the list shrinks.
    """

    def failing(subset: List) -> bool:
        cuts = tuple(range(1, len(subset)))
        probe = FuzzStream("shrink", 0, list(subset), list(cuts))
        return (
            _first_mismatch(probe, stream_tier, column_tier) is not None
        )

    return failing


def run_differential(
    streams: Iterable[FuzzStream],
    stream_tier: StreamTier = streaming_labels,
    column_tier: ColumnTier = columnar_labels,
    shrink: bool = True,
    stop_on_first: bool = False,
) -> DifferentialReport:
    """Check every stream against the oracle; see module docstring.

    ``stream_tier`` / ``column_tier`` default to the real
    implementations; tests inject broken ones to prove the harness
    catches and minimizes them.  With ``shrink``, each mismatch
    carries a ddmin-minimized counterexample.
    """
    report = DifferentialReport()
    for stream in streams:
        report.streams += 1
        report.records += len(stream.records)
        found = _first_mismatch(stream, stream_tier, column_tier)
        if found is None:
            continue
        if shrink:
            predicate = _shrink_predicate(stream_tier, column_tier)
            if predicate(stream.records):
                found.shrunk = shrink_stream(stream.records, predicate)
        report.mismatches.append(found)
        if stop_on_first:
            break
    return report


# -- the detection differential: three tiers of adversarial flags -----------

#: A detection tier's verdict: per-record flag bitmasks plus the
#: detector's end-of-stream state digest (None for the stateless
#: reference oracle, or for injected stand-ins that opt out).
Flags = List[int]
DetectionRun = Tuple[Flags, Optional[str]]
StreamDetectionTier = Callable[[Sequence, Optional[AsRelationships]], DetectionRun]
ColumnDetectionTier = Callable[
    [Sequence, Sequence[int], Optional[AsRelationships]], DetectionRun
]


def streaming_detection(
    records: Sequence, topology: Optional[AsRelationships] = None
) -> DetectionRun:
    """Run the streaming detection tier record by record."""
    result = detect_records(records, topology)
    return result.flags, result.detector.state_digest()


def columnar_detection(
    records: Sequence,
    boundaries: Sequence[int] = (),
    topology: Optional[AsRelationships] = None,
) -> DetectionRun:
    """Run the columnar detection tier over batches cut at
    ``boundaries``, with one detector carrying state across batches."""
    result = detect_records_columnar(records, topology, boundaries)
    return result.flags, result.detector.state_digest()


def _first_detection_mismatch(
    stream: FuzzStream,
    topology: Optional[AsRelationships],
    stream_tier: StreamDetectionTier,
    column_tier: ColumnDetectionTier,
) -> Optional[DifferentialMismatch]:
    """Check one stream's detection flags against the oracle."""
    records = stream.records
    edges = topology.edges() if topology is not None else None
    expected = reference_detect(records, edges)
    expected_counts = reference_detection_counts(records, edges)
    expected_digest = reference_detection_digest(records, edges)

    runs: List[Tuple[str, Flags, Optional[str]]] = []
    flags, state = stream_tier(records, topology)
    runs.append(("det-streaming", flags, state))
    for batching_name, cuts in _batchings(len(records), stream.boundaries):
        flags, state = column_tier(records, cuts, topology)
        runs.append((f"det-columnar[{batching_name}]", flags, state))

    def mismatch(tier, kind, index, exp, act) -> DifferentialMismatch:
        rendered = None
        if index is not None:
            r = records[index]
            rendered = (
                f"t={r.time!r} peer={r.peer_id} "
                f"prefix={r.prefix.network}/{r.prefix.length} "
                f"{'A' if r.is_announce else 'W'}"
            )
        return DifferentialMismatch(
            stream_name=stream.name,
            seed=stream.seed,
            tier=tier,
            kind=kind,
            index=index,
            expected=exp,
            actual=act,
            record=rendered,
        )

    for tier, flags, _ in runs:
        if len(flags) != len(expected):
            return mismatch(tier, "flags", None, len(expected), len(flags))
        for index, (exp, act) in enumerate(zip(expected, flags)):
            if int(exp) != int(act):
                return mismatch(tier, "flags", index, exp, act)
        tier_counts = {
            name: sum(1 for f in flags if int(f) & bit)
            for bit, name in DETECTION_FLAGS
        }
        if tier_counts != expected_counts:
            return mismatch(tier, "counts", None, expected_counts, tier_counts)
        digest = detection_digest(records, flags)
        if digest != expected_digest:
            return mismatch(tier, "digest", None, expected_digest, digest)

    state_digests = [
        (tier, state) for tier, _, state in runs if state is not None
    ]
    if len(state_digests) >= 2:
        reference_tier, reference_state = state_digests[0]
        for tier, state in state_digests[1:]:
            if state != reference_state:
                return mismatch(
                    f"{tier} vs {reference_tier}",
                    "state", None, reference_state, state,
                )
    return None


def _detection_shrink_predicate(
    topology: Optional[AsRelationships],
    stream_tier: StreamDetectionTier,
    column_tier: ColumnDetectionTier,
) -> Callable[[List], bool]:
    """Does any detection tier disagree with the oracle on this list?

    As in :func:`_shrink_predicate`, the shrunk stream is re-checked at
    every possible single batch cut so cross-batch detection bugs keep
    failing while the list shrinks.
    """

    def failing(subset: List) -> bool:
        cuts = tuple(range(1, len(subset)))
        probe = FuzzStream("shrink", 0, list(subset), list(cuts))
        return (
            _first_detection_mismatch(
                probe, topology, stream_tier, column_tier
            )
            is not None
        )

    return failing


def run_detection_differential(
    streams: Iterable[FuzzStream],
    topology: Optional[AsRelationships] = None,
    stream_tier: StreamDetectionTier = streaming_detection,
    column_tier: ColumnDetectionTier = columnar_detection,
    shrink: bool = True,
    stop_on_first: bool = False,
) -> DifferentialReport:
    """The detection analogue of :func:`run_differential`.

    Pipes every stream through :class:`~repro.analysis.detection.StreamDetector`,
    :class:`~repro.analysis.detection.ColumnDetector` (at several batch
    cuts, one detector carrying state across batches), and the
    dependency-free :func:`~repro.verify.reference.reference_detect`
    oracle, and asserts identical per-record flag bitmasks, per-flag
    counts, detection digests, and (between the stateful tiers) carried
    state digests.  Mismatches are ddmin-minimized exactly like the
    classifier differential.
    """
    report = DifferentialReport()
    for stream in streams:
        report.streams += 1
        report.records += len(stream.records)
        found = _first_detection_mismatch(
            stream, topology, stream_tier, column_tier
        )
        if found is None:
            continue
        if shrink:
            predicate = _detection_shrink_predicate(
                topology, stream_tier, column_tier
            )
            if predicate(stream.records):
                found.shrunk = shrink_stream(stream.records, predicate)
        report.mismatches.append(found)
        if stop_on_first:
            break
    return report
