"""Seeded fault injection around the campaign runner.

:func:`run_chaos_campaign` takes a campaign config (with an output
directory) and a fault seed, then repeatedly:

1. resumes the campaign with :class:`~repro.campaign.CampaignHooks`
   that shuffle shard execution order and randomly kill the run — at
   shard start, between two day chunks mid-shard, or inside the crash
   window between a shard's result write and its manifest write;
2. corrupts the on-disk state a kill left behind: truncating or
   bit-flipping day spill chunks and result payloads, deleting or
   mangling manifests.

After the configured rounds it performs one clean ``resume`` to
completion and compares the merged result digest against an unfaulted
in-memory run of the same config.  The campaign layer's claim — the
merged result is a function of the config alone, regardless of kills,
corruption, or completion order — holds iff the digests are
bit-identical.

Everything is driven by one ``random.Random(seed)``, so a failing
fault schedule replays exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import List, Optional

from ..campaign import CampaignConfig, CampaignHooks, KillRun, run_campaign

__all__ = ["ChaosReport", "run_chaos_campaign"]


@dataclass
class ChaosReport:
    """What one chaos schedule did and whether determinism survived."""

    seed: int
    rounds: int
    kills: int
    corruptions: int
    faults: List[str] = field(default_factory=list)
    expected_digest: str = ""
    final_digest: str = ""

    @property
    def ok(self) -> bool:
        return bool(self.final_digest) and (
            self.final_digest == self.expected_digest
        )

    def describe(self) -> str:
        lines = [
            f"chaos seed={self.seed}: {self.rounds} rounds, "
            f"{self.kills} kills, {self.corruptions} corruptions — "
            f"{'OK' if self.ok else 'DIGEST MISMATCH'}",
            f"expected: {self.expected_digest}",
            f"final:    {self.final_digest}",
        ]
        lines.extend(f"  {fault}" for fault in self.faults)
        return "\n".join(lines)


def _corrupt_file(path: Path, rng: random.Random) -> str:
    """Apply one seeded corruption to ``path``; returns a description."""
    mode = rng.choice(("truncate", "flip", "delete", "garbage"))
    if mode == "delete":
        path.unlink()
        return f"deleted {path.name}"
    data = path.read_bytes()
    if mode == "truncate":
        keep = rng.randrange(0, max(1, len(data)))
        path.write_bytes(data[:keep])
        return f"truncated {path.name} to {keep}/{len(data)} bytes"
    if mode == "flip" and data:
        index = rng.randrange(len(data))
        flipped = bytes([data[index] ^ (1 << rng.randrange(8))])
        path.write_bytes(data[:index] + flipped + data[index + 1:])
        return f"flipped a bit at offset {index} of {path.name}"
    path.write_bytes(b"{not json" + bytes([rng.randrange(256)]))
    return f"replaced {path.name} with garbage"


def run_chaos_campaign(
    config: CampaignConfig,
    seed: int,
    rounds: int = 4,
    kill_probability: float = 0.5,
    corrupt_probability: float = 0.7,
) -> ChaosReport:
    """Fault a campaign ``rounds`` times, then finish it cleanly; see
    the module docstring.  ``config.out`` must be set (the faults are
    to its on-disk state); the unfaulted baseline runs in memory."""
    if config.out is None:
        raise ValueError("chaos campaigns need config.out (faults hit disk)")
    baseline = run_campaign(replace(config, out=None))
    report = ChaosReport(
        seed=seed,
        rounds=rounds,
        kills=0,
        corruptions=0,
        expected_digest=baseline.partial.digest(),
    )
    rng = random.Random(seed)

    for round_index in range(rounds):
        kill_note: Optional[str] = None

        def maybe_kill(where: str, spec) -> None:
            nonlocal kill_note
            if rng.random() < kill_probability:
                kill_note = (
                    f"round {round_index}: killed at {where} "
                    f"of shard {spec.index}"
                )
                raise KillRun(kill_note)

        hooks = CampaignHooks(
            order_pending=lambda specs: rng.sample(specs, len(specs)),
            on_shard_start=lambda spec: maybe_kill("start", spec),
            on_chunk=(
                lambda spec, day, how: maybe_kill(f"day {day} chunk", spec)
            ),
            before_manifest=(
                lambda spec, layout: maybe_kill("pre-manifest", spec)
            ),
        )
        try:
            run_campaign(config, workers=1, resume=True, hooks=hooks)
            report.faults.append(
                f"round {round_index}: ran to completion"
            )
        except KillRun:
            report.kills += 1
            report.faults.append(kill_note)

        # Corrupt what the (possibly killed) run left on disk: spill
        # chunks (shards/shard-NNNN/day-NNNN.rcol), result payloads,
        # and manifests alike.
        root = Path(config.out)
        victims = sorted(
            path
            for subdir in ("shards", "results", "manifest")
            for path in (root / subdir).rglob("*")
            if path.is_file()
        )
        for path in victims:
            if rng.random() < corrupt_probability:
                report.corruptions += 1
                report.faults.append(
                    f"round {round_index}: {_corrupt_file(path, rng)}"
                )

    final = run_campaign(config, workers=1, resume=True)
    report.final_digest = final.partial.digest()
    return report
