"""Routing-table snapshots: serialization and diffing.

Figure 10 was produced from daily *routing table snapshots* of
Mae-East, and the paper credits Govindan & Reddy's snapshot-based
topology analysis as the complementary methodology ("Other work has
been able to capture the lower frequencies through routing table
snapshots").  This module provides that apparatus:

- :func:`dump_table` / :func:`load_table` — serialize a
  :class:`~repro.bgp.rib.LocRib`'s candidate routes to an
  MRT-TABLE_DUMP-flavoured binary stream (per-route records carrying
  the full wire-encoded attributes);
- :func:`snapshot` — an in-memory :class:`TableSnapshot` of a RIB;
- :func:`diff_snapshots` — added/removed/changed prefixes between two
  snapshots, the primitive behind snapshot-based instability and
  growth measurements.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import BinaryIO, Dict, FrozenSet, Iterator, List, Set, Tuple

from ..bgp.attributes import PathAttributes
from ..bgp.messages import UpdateMessage
from ..bgp.rib import LocRib
from ..bgp.wire import WireError, decode_message, encode_message
from ..net.prefix import Prefix

__all__ = [
    "TableSnapshot",
    "SnapshotDiff",
    "snapshot",
    "diff_snapshots",
    "dump_table",
    "load_table",
]

_MAGIC = b"RRTD1\x00"
_ENTRY_HEADER = struct.Struct(">IH")  # peer_id, payload length


@dataclass(frozen=True)
class TableSnapshot:
    """A point-in-time view of a routing table.

    ``routes`` maps each prefix to the frozenset of
    ``(peer_id, attributes)`` candidate paths known for it.
    """

    time: float
    routes: Dict[Prefix, FrozenSet[Tuple[int, PathAttributes]]]

    def __len__(self) -> int:
        return len(self.routes)

    @property
    def prefixes(self) -> Set[Prefix]:
        return set(self.routes)

    def multihomed_prefixes(self) -> Set[Prefix]:
        """Prefixes with 2+ distinct forwarding paths — the Figure 10
        count, computed from a snapshot instead of a live RIB."""
        result = set()
        for prefix, paths in self.routes.items():
            distinct = {
                (attrs.next_hop, tuple(attrs.as_path))
                for _, attrs in paths
            }
            if len(distinct) >= 2:
                result.add(prefix)
        return result


def snapshot(rib: LocRib, time: float = 0.0) -> TableSnapshot:
    """Capture a :class:`TableSnapshot` of ``rib`` (all candidates,
    not just best paths — snapshots of route-server RIBs see every
    peer's view)."""
    routes: Dict[Prefix, FrozenSet[Tuple[int, PathAttributes]]] = {}
    for prefix in rib.prefixes():
        routes[prefix] = frozenset(
            (route.peer, route.attributes)
            for route in rib.adj_in.candidates(prefix)
        )
    return TableSnapshot(time=time, routes=routes)


@dataclass
class SnapshotDiff:
    """What changed between two snapshots."""

    added: Set[Prefix] = field(default_factory=set)
    removed: Set[Prefix] = field(default_factory=set)
    changed: Set[Prefix] = field(default_factory=set)

    @property
    def total_changes(self) -> int:
        return len(self.added) + len(self.removed) + len(self.changed)

    def churn_rate(self, table_size: int) -> float:
        """Changes relative to the table size (a Govindan-style
        topology rate-of-change measure)."""
        return self.total_changes / table_size if table_size else 0.0


def diff_snapshots(old: TableSnapshot, new: TableSnapshot) -> SnapshotDiff:
    """Prefix-level differences between two snapshots."""
    diff = SnapshotDiff()
    old_prefixes = old.prefixes
    new_prefixes = new.prefixes
    diff.added = new_prefixes - old_prefixes
    diff.removed = old_prefixes - new_prefixes
    for prefix in old_prefixes & new_prefixes:
        if old.routes[prefix] != new.routes[prefix]:
            diff.changed.add(prefix)
    return diff


# ---------------------------------------------------------------------------
# binary table dumps (MRT TABLE_DUMP flavour)
# ---------------------------------------------------------------------------

def dump_table(stream: BinaryIO, snap: TableSnapshot) -> int:
    """Serialize a snapshot; returns the number of route entries.

    Each entry is ``(peer_id, length, wire-encoded single-prefix BGP
    UPDATE)`` — reusing the RFC 4271 codec keeps the dump loadable by
    anything that can parse our archives.
    """
    stream.write(_MAGIC)
    stream.write(struct.pack(">dI", snap.time, len(snap.routes)))
    count = 0
    for prefix in sorted(snap.routes):
        for peer_id, attrs in sorted(
            snap.routes[prefix], key=lambda pair: pair[0]
        ):
            payload = encode_message(
                UpdateMessage(announced=(prefix,), attributes=attrs)
            )
            stream.write(_ENTRY_HEADER.pack(peer_id, len(payload)))
            stream.write(payload)
            count += 1
    stream.write(_ENTRY_HEADER.pack(0xFFFFFFFF, 0))  # terminator
    return count


def load_table(stream: BinaryIO) -> TableSnapshot:
    """Deserialize a snapshot written by :func:`dump_table`."""
    magic = stream.read(len(_MAGIC))
    if magic != _MAGIC:
        raise WireError(f"bad table-dump magic {magic!r}")
    header = stream.read(12)
    if len(header) != 12:
        raise WireError("truncated table-dump header")
    time, _prefix_count = struct.unpack(">dI", header)
    routes: Dict[Prefix, Set[Tuple[int, PathAttributes]]] = {}
    while True:
        entry_header = stream.read(_ENTRY_HEADER.size)
        if len(entry_header) != _ENTRY_HEADER.size:
            raise WireError("truncated table-dump entry header")
        peer_id, length = _ENTRY_HEADER.unpack(entry_header)
        if peer_id == 0xFFFFFFFF and length == 0:
            break
        payload = stream.read(length)
        if len(payload) != length:
            raise WireError("truncated table-dump entry")
        message, _ = decode_message(payload)
        if not isinstance(message, UpdateMessage) or not message.announced:
            raise WireError("table-dump entry is not an announcement")
        for prefix in message.announced:
            routes.setdefault(prefix, set()).add(
                (peer_id, message.attributes)
            )
    return TableSnapshot(
        time=time,
        routes={p: frozenset(s) for p, s in routes.items()},
    )
