"""Measurement apparatus: update records, MRT-flavoured archives, logs."""

from .record import (
    PrefixAs,
    UpdateKind,
    UpdateRecord,
    count_by_kind,
    flatten_update,
    iter_sorted,
    unique_prefixes,
)
from .mrt import MAGIC, MrtError, read_records, write_records
from .log import CountingLog, FileLog, MemoryLog, open_log
from .mrt_rfc import (
    SessionEvent,
    read_bgp4mp,
    read_state_changes,
    read_table_dump,
    write_bgp4mp,
    write_state_changes,
    write_table_dump,
)
from .snapshot import (
    SnapshotDiff,
    TableSnapshot,
    diff_snapshots,
    dump_table,
    load_table,
    snapshot,
)
from .store import (
    DayStore,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_WEEK,
    day_of,
)

__all__ = [
    "PrefixAs",
    "UpdateKind",
    "UpdateRecord",
    "count_by_kind",
    "flatten_update",
    "iter_sorted",
    "unique_prefixes",
    "MAGIC",
    "MrtError",
    "read_records",
    "write_records",
    "CountingLog",
    "FileLog",
    "MemoryLog",
    "open_log",
    "SessionEvent",
    "read_bgp4mp",
    "read_state_changes",
    "write_state_changes",
    "read_table_dump",
    "write_bgp4mp",
    "write_table_dump",
    "SnapshotDiff",
    "TableSnapshot",
    "diff_snapshots",
    "dump_table",
    "load_table",
    "snapshot",
    "DayStore",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_WEEK",
    "day_of",
]
