"""RFC 6396 MRT interoperability format.

The Routing Arbiter archives used the Multithreaded Routing Toolkit's
format, later standardized as RFC 6396.  :mod:`repro.collector.mrt`
keeps a compact internal flavour; this module writes and reads the
*standard* framing so archives are interoperable in principle with
classic tooling (``bgpdump``-era readers):

- **BGP4MP / BGP4MP_MESSAGE** (type 16, subtype 1) for update streams:
  the RFC's common header (timestamp, type, subtype, length) followed
  by peer/local AS numbers, interface index, address family, peer and
  local IPv4 addresses, and the raw RFC 4271 BGP message.
- **TABLE_DUMP / AFI_IPv4** (type 12, subtype 1) for routing-table
  snapshots: view number, sequence, prefix, status, originated time,
  peer address and AS, and the route's path attributes.

Only the IPv4 forms the reproduction needs are implemented; anything
else raises :class:`~repro.bgp.wire.WireError` on read rather than
silently mis-parsing.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, Iterator, List, Tuple

from ..bgp.attributes import PathAttributes
from ..bgp.messages import UpdateMessage
from ..bgp.wire import WireError, decode_message, encode_message
from ..bgp.wire import _encode_attributes, _decode_attributes  # noqa: internal reuse
from ..net.prefix import Prefix
from .record import UpdateKind, UpdateRecord, flatten_update
from .snapshot import TableSnapshot

__all__ = [
    "MRT_TYPE_TABLE_DUMP",
    "MRT_TYPE_BGP4MP",
    "write_bgp4mp",
    "read_bgp4mp",
    "write_table_dump",
    "read_table_dump",
    "SessionEvent",
    "write_state_changes",
    "read_state_changes",
]

_COMMON_HEADER = struct.Struct(">IHHI")  # timestamp, type, subtype, length

MRT_TYPE_TABLE_DUMP = 12
MRT_TYPE_BGP4MP = 16
_SUBTYPE_AFI_IPV4 = 1
_SUBTYPE_BGP4MP_MESSAGE = 1
_AFI_IPV4 = 1

# BGP4MP_MESSAGE body prefix: peer AS, local AS, ifindex, AF.
_BGP4MP_HEADER = struct.Struct(">HHHH")
# TABLE_DUMP entry after the common header: view, seq.
_TD_VIEW_SEQ = struct.Struct(">HH")
# TABLE_DUMP per-entry tail: status, originated, peer ip, peer as, attr len.
_TD_TAIL = struct.Struct(">BIIHH")


def _write_common_header(
    stream: BinaryIO, timestamp: float, mrt_type: int, subtype: int,
    body: bytes,
) -> None:
    stream.write(
        _COMMON_HEADER.pack(int(timestamp), mrt_type, subtype, len(body))
    )
    stream.write(body)


def _read_common_header(stream: BinaryIO):
    header = stream.read(_COMMON_HEADER.size)
    if not header:
        return None
    if len(header) != _COMMON_HEADER.size:
        raise WireError("truncated MRT common header")
    timestamp, mrt_type, subtype, length = _COMMON_HEADER.unpack(header)
    body = stream.read(length)
    if len(body) != length:
        raise WireError("truncated MRT record body")
    return timestamp, mrt_type, subtype, body


# ---------------------------------------------------------------------------
# BGP4MP update streams
# ---------------------------------------------------------------------------

def write_bgp4mp(
    stream: BinaryIO,
    records: Iterable[UpdateRecord],
    local_as: int = 65000,
    local_ip: int = 0x0A0000FE,
) -> int:
    """Write update records as RFC 6396 BGP4MP_MESSAGE entries.

    Returns the record count.  Each update record becomes one MRT
    record carrying a single-prefix BGP UPDATE (sub-second timing is
    truncated to seconds, as the classic format requires).
    """
    count = 0
    for record in records:
        if record.kind is UpdateKind.ANNOUNCE:
            message = UpdateMessage(
                announced=(record.prefix,), attributes=record.attributes
            )
        else:
            message = UpdateMessage(withdrawn=(record.prefix,))
        bgp_payload = encode_message(message)
        body = (
            _BGP4MP_HEADER.pack(
                record.peer_asn, local_as, 0, _AFI_IPV4
            )
            + struct.pack(">II", record.peer_id, local_ip)
            + bgp_payload
        )
        _write_common_header(
            stream, record.time, MRT_TYPE_BGP4MP,
            _SUBTYPE_BGP4MP_MESSAGE, body,
        )
        count += 1
    return count


def read_bgp4mp(stream: BinaryIO) -> Iterator[UpdateRecord]:
    """Read BGP4MP_MESSAGE entries back into update records."""
    while True:
        parsed = _read_common_header(stream)
        if parsed is None:
            return
        timestamp, mrt_type, subtype, body = parsed
        if mrt_type != MRT_TYPE_BGP4MP or subtype != _SUBTYPE_BGP4MP_MESSAGE:
            raise WireError(
                f"unsupported MRT record type {mrt_type}/{subtype}"
            )
        if len(body) < _BGP4MP_HEADER.size + 8:
            raise WireError("truncated BGP4MP body")
        peer_as, _local_as, _ifindex, afi = _BGP4MP_HEADER.unpack_from(body)
        if afi != _AFI_IPV4:
            raise WireError(f"unsupported address family {afi}")
        peer_ip, _local_ip = struct.unpack_from(
            ">II", body, _BGP4MP_HEADER.size
        )
        payload = body[_BGP4MP_HEADER.size + 8:]
        message, consumed = decode_message(payload)
        if consumed != len(payload) or not isinstance(message, UpdateMessage):
            raise WireError("BGP4MP payload is not a single BGP UPDATE")
        for record in flatten_update(
            float(timestamp), peer_ip, peer_as, message
        ):
            yield record


# ---------------------------------------------------------------------------
# BGP4MP state changes (session transitions)
# ---------------------------------------------------------------------------

_SUBTYPE_STATE_CHANGE = 0

#: RFC 6396 FSM state codes (1=Idle .. 6=Established).
_FSM_CODES = {
    "IDLE": 1,
    "CONNECT": 2,
    "ACTIVE": 3,
    "OPEN_SENT": 4,
    "OPEN_CONFIRM": 5,
    "ESTABLISHED": 6,
}
_FSM_NAMES = {code: name for name, code in _FSM_CODES.items()}

from dataclasses import dataclass  # noqa: E402  (module-local import style)


@dataclass(frozen=True)
class SessionEvent:
    """One peering-session FSM transition observed at a collector.

    The Routing Arbiter logged these alongside updates; they are the
    raw material of route-flap-storm forensics (a storm is a burst of
    Established→Idle transitions across many peers).
    """

    time: float
    peer_id: int
    peer_asn: int
    old_state: str
    new_state: str

    @property
    def is_session_loss(self) -> bool:
        return self.old_state == "ESTABLISHED" and self.new_state != "ESTABLISHED"

    @property
    def is_session_up(self) -> bool:
        return self.new_state == "ESTABLISHED"


def write_state_changes(
    stream: BinaryIO,
    events: Iterable[SessionEvent],
    local_as: int = 65000,
    local_ip: int = 0x0A0000FE,
) -> int:
    """Write session transitions as BGP4MP_STATE_CHANGE records."""
    count = 0
    for event in events:
        body = (
            _BGP4MP_HEADER.pack(event.peer_asn, local_as, 0, _AFI_IPV4)
            + struct.pack(">II", event.peer_id, local_ip)
            + struct.pack(
                ">HH",
                _FSM_CODES[event.old_state],
                _FSM_CODES[event.new_state],
            )
        )
        _write_common_header(
            stream, event.time, MRT_TYPE_BGP4MP, _SUBTYPE_STATE_CHANGE, body
        )
        count += 1
    return count


def read_state_changes(stream: BinaryIO) -> Iterator[SessionEvent]:
    """Read BGP4MP_STATE_CHANGE records back into session events."""
    while True:
        parsed = _read_common_header(stream)
        if parsed is None:
            return
        timestamp, mrt_type, subtype, body = parsed
        if mrt_type != MRT_TYPE_BGP4MP or subtype != _SUBTYPE_STATE_CHANGE:
            raise WireError(
                f"unsupported MRT record type {mrt_type}/{subtype}"
            )
        if len(body) != _BGP4MP_HEADER.size + 8 + 4:
            raise WireError("bad STATE_CHANGE body length")
        peer_as, _local_as, _ifindex, afi = _BGP4MP_HEADER.unpack_from(body)
        if afi != _AFI_IPV4:
            raise WireError(f"unsupported address family {afi}")
        peer_ip, _local_ip = struct.unpack_from(
            ">II", body, _BGP4MP_HEADER.size
        )
        old_code, new_code = struct.unpack_from(
            ">HH", body, _BGP4MP_HEADER.size + 8
        )
        try:
            old_state = _FSM_NAMES[old_code]
            new_state = _FSM_NAMES[new_code]
        except KeyError as exc:
            raise WireError(f"unknown FSM state code: {exc}") from exc
        yield SessionEvent(
            time=float(timestamp),
            peer_id=peer_ip,
            peer_asn=peer_as,
            old_state=old_state,
            new_state=new_state,
        )


# ---------------------------------------------------------------------------
# TABLE_DUMP snapshots
# ---------------------------------------------------------------------------

def write_table_dump(
    stream: BinaryIO,
    snap: TableSnapshot,
    view: int = 0,
) -> int:
    """Write a snapshot as RFC 6396 TABLE_DUMP AFI_IPv4 entries.

    Returns the number of (prefix, peer) entries written.
    """
    sequence = 0
    for prefix in sorted(snap.routes):
        for peer_id, attrs in sorted(
            snap.routes[prefix], key=lambda pair: pair[0]
        ):
            attr_bytes = _encode_attributes(attrs)
            body = (
                _TD_VIEW_SEQ.pack(view, sequence & 0xFFFF)
                + struct.pack(">IB", prefix.network, prefix.length)
                + _TD_TAIL.pack(
                    1,                     # status (RFC: set to 1)
                    int(snap.time),        # originated time
                    peer_id,
                    0,                     # peer AS unknown per-entry; use 0
                    len(attr_bytes),
                )
                + attr_bytes
            )
            _write_common_header(
                stream, snap.time, MRT_TYPE_TABLE_DUMP,
                _SUBTYPE_AFI_IPV4, body,
            )
            sequence += 1
    return sequence


def read_table_dump(stream: BinaryIO) -> TableSnapshot:
    """Read TABLE_DUMP entries back into a :class:`TableSnapshot`."""
    routes = {}
    time = 0.0
    while True:
        parsed = _read_common_header(stream)
        if parsed is None:
            break
        timestamp, mrt_type, subtype, body = parsed
        if mrt_type != MRT_TYPE_TABLE_DUMP or subtype != _SUBTYPE_AFI_IPV4:
            raise WireError(
                f"unsupported MRT record type {mrt_type}/{subtype}"
            )
        time = float(timestamp)
        offset = _TD_VIEW_SEQ.size
        if len(body) < offset + 5 + _TD_TAIL.size:
            raise WireError("truncated TABLE_DUMP entry")
        network, length = struct.unpack_from(">IB", body, offset)
        offset += 5
        status, _originated, peer_ip, _peer_as, attr_len = (
            _TD_TAIL.unpack_from(body, offset)
        )
        offset += _TD_TAIL.size
        attr_bytes = body[offset:offset + attr_len]
        if len(attr_bytes) != attr_len:
            raise WireError("truncated TABLE_DUMP attributes")
        mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
        prefix = Prefix(network & mask, length)
        attrs = _decode_attributes(attr_bytes)
        routes.setdefault(prefix, set()).add((peer_ip, attrs))
    return TableSnapshot(
        time=time,
        routes={p: frozenset(s) for p, s in routes.items()},
    )
