"""The update record: the unit of everything the paper measures.

The Routing Arbiter logs, decoded, reduce to a stream of timestamped
per-prefix events: *peer X announced prefix P with attributes A* or
*peer X withdrew prefix P*.  Every analysis in the paper — the
classification taxonomy, the density plots, the spectra, the
inter-arrival histograms, the Prefix+AS distributions — consumes exactly
this stream.  :class:`UpdateRecord` is that unit, shared by both data
tiers (the event simulator and the statistical generator).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, Iterator, List, Optional, Tuple

from ..bgp.attributes import PathAttributes
from ..bgp.messages import UpdateMessage
from ..net.prefix import Prefix

__all__ = ["UpdateKind", "UpdateRecord", "flatten_update", "PrefixAs"]


class UpdateKind(IntEnum):
    """Announcement or withdrawal (the two forms of BGP routing info)."""

    ANNOUNCE = 1
    WITHDRAW = 2


#: The paper's "Prefix+AS" aggregation unit: "a set of routes that an AS
#: announces for a given destination... more specific than a prefix, and
#: more general than a route."
PrefixAs = Tuple[Prefix, int]


@dataclass(frozen=True, slots=True)
class UpdateRecord:
    """One per-prefix routing event observed at a collection point.

    Attributes
    ----------
    time:
        Seconds since the simulation epoch (a simulated calendar maps
        this to weekday/hour for the temporal analyses).
    peer_id:
        The 32-bit address of the peer router the event came from.
    peer_asn:
        The autonomous system of that peer — the "AS" in Prefix+AS.
    prefix:
        The destination block the event concerns.
    kind:
        ANNOUNCE or WITHDRAW.
    attributes:
        The announcement's path attributes; None for withdrawals.
    """

    time: float
    peer_id: int
    peer_asn: int
    prefix: Prefix
    kind: UpdateKind
    attributes: Optional[PathAttributes] = None

    def __post_init__(self) -> None:
        if self.kind is UpdateKind.ANNOUNCE and self.attributes is None:
            raise ValueError("announcements must carry attributes")
        if self.kind is UpdateKind.WITHDRAW and self.attributes is not None:
            raise ValueError("withdrawals carry no attributes")

    @property
    def is_announce(self) -> bool:
        return self.kind is UpdateKind.ANNOUNCE

    @property
    def is_withdraw(self) -> bool:
        return self.kind is UpdateKind.WITHDRAW

    @property
    def prefix_as(self) -> PrefixAs:
        """The (prefix, peer AS) pair the fine-grained analyses key on."""
        return (self.prefix, self.peer_asn)

    @property
    def forwarding_tuple(self):
        """The paper's (Prefix, NextHop, ASPATH) identity, or None for
        withdrawals."""
        if self.attributes is None:
            return None
        # as_path is already an immutable tuple subclass; no copy needed.
        return (
            self.prefix,
            self.attributes.next_hop,
            self.attributes.as_path,
        )


def flatten_update(
    time: float,
    peer_id: int,
    peer_asn: int,
    message: UpdateMessage,
) -> List[UpdateRecord]:
    """Explode one BGP UPDATE into per-prefix records.

    This is the counting convention behind every number in the paper: an
    UPDATE with three announced NLRI and two withdrawals contributes five
    "updates".
    """
    records: List[UpdateRecord] = [
        UpdateRecord(time, peer_id, peer_asn, prefix, UpdateKind.WITHDRAW)
        for prefix in message.withdrawn
    ]
    records.extend(
        UpdateRecord(
            time,
            peer_id,
            peer_asn,
            prefix,
            UpdateKind.ANNOUNCE,
            message.attributes,
        )
        for prefix in message.announced
    )
    return records


def count_by_kind(records: Iterable[UpdateRecord]) -> Tuple[int, int]:
    """(announcements, withdrawals) — the Table 1 column pair."""
    announces = withdraws = 0
    for record in records:
        if record.is_announce:
            announces += 1
        else:
            withdraws += 1
    return announces, withdraws


def unique_prefixes(records: Iterable[UpdateRecord]) -> int:
    """Distinct prefixes touched — Table 1's "Unique" column."""
    return len({record.prefix for record in records})


def iter_sorted(records: Iterable[UpdateRecord]) -> Iterator[UpdateRecord]:
    """Yield records in time order (analyses assume monotone time)."""
    yield from sorted(records, key=lambda r: r.time)
