"""Per-day partitioning of update streams.

The paper's fine-grained figures are all *per-day* statistics drawn
over a month (one CDF line per day in Figure 7, one scatter point per
peer per day in Figure 6, one box per bin over days in Figure 8).
:class:`DayStore` partitions a record stream into simulated days and
exposes per-day iteration, which those analyses build on.

Day boundaries come from the simulation calendar: day *n* spans
``[n * SECONDS_PER_DAY, (n+1) * SECONDS_PER_DAY)`` from the epoch.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Tuple

from .record import UpdateRecord

__all__ = [
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_WEEK",
    "day_of",
    "DayStore",
]

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


def day_of(time: float) -> int:
    """The simulated day index containing ``time``."""
    return int(time // SECONDS_PER_DAY)


class DayStore:
    """Update records partitioned by simulated day.

    Also tracks *coverage*: which fraction of each day's ten-minute
    bins saw any data.  The paper excludes days with under 80 percent
    collection coverage from Figure 9; :meth:`well_covered_days`
    reproduces that filter (coverage here means the generator/simulator
    actually produced data for the bin — collection outages are modelled
    by the incident machinery marking bins as lost).
    """

    def __init__(self) -> None:
        self._days: Dict[int, List[UpdateRecord]] = defaultdict(list)
        self._lost_bins: Dict[int, set] = defaultdict(set)

    # -- ingestion --------------------------------------------------------

    def add(self, record: UpdateRecord) -> None:
        self._days[day_of(record.time)].append(record)

    def extend(self, records: Iterable[UpdateRecord]) -> None:
        for record in records:
            self.add(record)

    def mark_lost(self, day: int, bin_index: int) -> None:
        """Mark a ten-minute bin of ``day`` as a collection outage."""
        if not 0 <= bin_index < 144:
            raise ValueError(f"bin index {bin_index} out of range")
        self._lost_bins[day].add(bin_index)
        self._days.setdefault(day, [])

    # -- access -------------------------------------------------------------

    def days(self) -> List[int]:
        """The day indices with any data, ascending."""
        return sorted(self._days)

    def records_for(self, day: int) -> List[UpdateRecord]:
        """The records of one day, time-sorted."""
        return sorted(self._days.get(day, []), key=lambda r: r.time)

    def __iter__(self) -> Iterator[Tuple[int, List[UpdateRecord]]]:
        for day in self.days():
            yield day, self.records_for(day)

    def __len__(self) -> int:
        return sum(len(records) for records in self._days.values())

    def coverage(self, day: int) -> float:
        """Fraction of the day's 144 ten-minute bins not marked lost."""
        return 1.0 - len(self._lost_bins.get(day, ())) / 144.0

    def lost_bins(self, day: int) -> List[int]:
        return sorted(self._lost_bins.get(day, ()))

    def well_covered_days(self, threshold: float = 0.8) -> List[int]:
        """Days whose coverage is at least ``threshold`` (paper: 80%)."""
        return [day for day in self.days() if self.coverage(day) >= threshold]
