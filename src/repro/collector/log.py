"""Update-log sinks and sources.

A *sink* is anywhere the simulator's route servers write observed
updates; a *source* replays them into analyses.  Three sinks are
provided:

- :class:`MemoryLog` — in-process list, the default for tests and
  short simulations.
- :class:`FileLog` — streaming MRT-flavoured archive on disk, for
  long-horizon generated traces.
- :class:`CountingLog` — keeps only aggregate counters (per peer, per
  kind), for simulations where record retention would dominate memory.

All sinks implement ``append(record)`` / ``extend(records)``; sources
are simply iterables of :class:`UpdateRecord`.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from .mrt import read_records, write_records
from .record import UpdateKind, UpdateRecord

__all__ = ["MemoryLog", "FileLog", "CountingLog", "open_log"]


class MemoryLog:
    """An in-memory update log (list-backed)."""

    def __init__(self) -> None:
        self.records: List[UpdateRecord] = []

    def append(self, record: UpdateRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[UpdateRecord]) -> None:
        self.records.extend(records)

    def __iter__(self) -> Iterator[UpdateRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def sorted_by_time(self) -> List[UpdateRecord]:
        return sorted(self.records, key=lambda r: r.time)

    def clear(self) -> None:
        self.records.clear()


class FileLog:
    """A disk-backed MRT-flavoured update log.

    Use as a context manager for writing::

        with FileLog(path).writer() as log:
            log.append(record)

    and iterate the instance to read back.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def writer(self) -> "_FileLogWriter":
        return _FileLogWriter(self.path)

    def __iter__(self) -> Iterator[UpdateRecord]:
        with open(self.path, "rb") as stream:
            yield from read_records(stream)

    def read_all(self) -> List[UpdateRecord]:
        return list(self)

    def iter_column_batches(self, batch_size: int = 65536, attrs=None):
        """Decode the archive into columnar
        :class:`~repro.core.columns.RecordColumns` batches of up to
        ``batch_size`` rows (no per-record objects)."""
        from .mrt import read_column_batches

        with open(self.path, "rb") as stream:
            yield from read_column_batches(stream, batch_size, attrs)

    def read_columns(self, attrs=None):
        """The whole archive as one columnar batch."""
        from ..core.columns import RecordColumns

        return RecordColumns.concat(list(self.iter_column_batches(attrs=attrs)))

    def sha256(self) -> str:
        """Hex digest of the archive bytes (campaign shard manifests
        record this so a resumed run can verify finished output)."""
        import hashlib

        digest = hashlib.sha256()
        with open(self.path, "rb") as stream:
            for chunk in iter(lambda: stream.read(1 << 20), b""):
                digest.update(chunk)
        return digest.hexdigest()


class _FileLogWriter:
    """Streaming writer for :class:`FileLog` (context manager)."""

    def __init__(self, path: Path) -> None:
        self._path = path
        self._stream = None
        self.count = 0

    def __enter__(self) -> "_FileLogWriter":
        from .mrt import MAGIC

        self._stream = open(self._path, "wb")
        self._stream.write(MAGIC)
        return self

    def append(self, record: UpdateRecord) -> None:
        from .mrt import write_record_body

        write_record_body(self._stream, record)
        self.count += 1

    def extend(self, records: Iterable[UpdateRecord]) -> None:
        for record in records:
            self.append(record)

    def extend_columns(self, columns) -> None:
        """Serialize a whole :class:`RecordColumns` batch (the on-disk
        bytes match record-at-a-time appends of the same stream)."""
        from .mrt import write_column_bodies

        self.count += write_column_bodies(self._stream, columns)

    def __exit__(self, *exc_info) -> None:
        self._stream.close()
        self._stream = None


class CountingLog:
    """Aggregate-only sink: per-peer-AS announce/withdraw counters plus
    distinct-prefix tracking.  Enough to produce Table-1-style rows
    without retaining the record stream."""

    def __init__(self) -> None:
        self.announces: Counter = Counter()
        self.withdraws: Counter = Counter()
        self._prefixes: Dict[int, set] = {}
        self.total = 0

    def append(self, record: UpdateRecord) -> None:
        asn = record.peer_asn
        if record.kind is UpdateKind.ANNOUNCE:
            self.announces[asn] += 1
        else:
            self.withdraws[asn] += 1
        self._prefixes.setdefault(asn, set()).add(record.prefix)
        self.total += 1

    def extend(self, records: Iterable[UpdateRecord]) -> None:
        for record in records:
            self.append(record)

    def unique_prefixes(self, asn: int) -> int:
        return len(self._prefixes.get(asn, ()))

    def peer_asns(self) -> List[int]:
        return sorted(set(self.announces) | set(self.withdraws))

    def row(self, asn: int) -> Dict[str, int]:
        """A Table-1 row for one peer AS."""
        return {
            "announce": self.announces.get(asn, 0),
            "withdraw": self.withdraws.get(asn, 0),
            "unique": self.unique_prefixes(asn),
        }


def open_log(path: Optional[Union[str, Path]] = None):
    """Convenience factory: a FileLog if ``path`` is given, else a
    MemoryLog."""
    return FileLog(path) if path is not None else MemoryLog()
