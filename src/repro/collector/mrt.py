"""MRT-flavoured binary log codec.

The Routing Arbiter archived its BGP packet logs in the Multithreaded
Routing Toolkit (MRT) format; the paper's analysis pipeline decoded
those files offline.  We implement the same architecture: the collector
serializes :class:`~repro.collector.record.UpdateRecord` streams into a
binary format closely modelled on MRT's ``BGP4MP_MESSAGE`` framing —
a per-record header ``(timestamp seconds, microseconds, peer AS, peer
IP)`` followed by an actual RFC 4271 wire-encoded BGP UPDATE — and the
analysis pipeline reads them back.

Going through real BGP wire encoding is deliberate: it exercises the
:mod:`repro.bgp.wire` codec on every logged record, just as the paper's
tools re-parsed real packets.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, Iterator, List

from ..bgp.messages import UpdateMessage
from ..bgp.wire import WireError, decode_message, encode_message
from .record import UpdateKind, UpdateRecord, flatten_update

__all__ = ["MrtError", "write_records", "read_records", "MAGIC"]

#: File magic: identifies our MRT-flavoured update logs.
MAGIC = b"RRIL1\x00"

_RECORD_HEADER = struct.Struct(">IIHIH")  # secs, usecs, peer_asn, peer_ip, length


class MrtError(ValueError):
    """Raised on malformed log data."""


def _split_time(time: float) -> tuple:
    seconds = int(time)
    microseconds = int(round((time - seconds) * 1_000_000))
    if microseconds == 1_000_000:  # rounding spill-over
        seconds += 1
        microseconds = 0
    return seconds, microseconds


def write_record_body(stream: BinaryIO, record: UpdateRecord) -> None:
    """Serialize one record (header + BGP payload, no file magic)."""
    if record.kind is UpdateKind.ANNOUNCE:
        message = UpdateMessage(
            announced=(record.prefix,), attributes=record.attributes
        )
    else:
        message = UpdateMessage(withdrawn=(record.prefix,))
    payload = encode_message(message)
    seconds, microseconds = _split_time(record.time)
    stream.write(
        _RECORD_HEADER.pack(
            seconds,
            microseconds,
            record.peer_asn,
            record.peer_id,
            len(payload),
        )
    )
    stream.write(payload)


def write_records(
    stream: BinaryIO, records: Iterable[UpdateRecord]
) -> int:
    """Serialize ``records`` to ``stream``; returns the record count.

    Each record is framed individually (one NLRI per UPDATE) so the
    reader can reproduce exact per-record timestamps; batching multiple
    prefixes into shared UPDATEs is the transmitting router's business,
    not the archive's.
    """
    stream.write(MAGIC)
    count = 0
    for record in records:
        write_record_body(stream, record)
        count += 1
    return count


def read_records(stream: BinaryIO) -> Iterator[UpdateRecord]:
    """Deserialize records from ``stream`` (reverse of
    :func:`write_records`)."""
    magic = stream.read(len(MAGIC))
    if magic != MAGIC:
        raise MrtError(f"bad magic {magic!r}")
    while True:
        header = stream.read(_RECORD_HEADER.size)
        if not header:
            return
        if len(header) != _RECORD_HEADER.size:
            raise MrtError("truncated record header")
        seconds, microseconds, peer_asn, peer_ip, length = (
            _RECORD_HEADER.unpack(header)
        )
        payload = stream.read(length)
        if len(payload) != length:
            raise MrtError("truncated record payload")
        try:
            message, consumed = decode_message(payload)
        except WireError as exc:
            raise MrtError(f"bad BGP payload: {exc}") from exc
        if consumed != length or not isinstance(message, UpdateMessage):
            raise MrtError("record payload is not a single BGP UPDATE")
        time = seconds + microseconds / 1_000_000
        records = flatten_update(time, peer_ip, peer_asn, message)
        if len(records) != 1:
            raise MrtError("archive records must carry exactly one prefix")
        yield records[0]


def roundtrip_file(path: str, records: Iterable[UpdateRecord]) -> List[UpdateRecord]:
    """Write ``records`` to ``path`` and read them back (test helper)."""
    with open(path, "wb") as f:
        write_records(f, records)
    with open(path, "rb") as f:
        return list(read_records(f))
