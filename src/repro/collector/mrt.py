"""MRT-flavoured binary log codec.

The Routing Arbiter archived its BGP packet logs in the Multithreaded
Routing Toolkit (MRT) format; the paper's analysis pipeline decoded
those files offline.  We implement the same architecture: the collector
serializes :class:`~repro.collector.record.UpdateRecord` streams into a
binary format closely modelled on MRT's ``BGP4MP_MESSAGE`` framing —
a per-record header ``(timestamp seconds, microseconds, peer AS, peer
IP)`` followed by an actual RFC 4271 wire-encoded BGP UPDATE — and the
analysis pipeline reads them back.

Going through real BGP wire encoding is deliberate: it exercises the
:mod:`repro.bgp.wire` codec on every logged record, just as the paper's
tools re-parsed real packets.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Dict, Iterable, Iterator, List, Tuple

import numpy as np

from ..bgp.messages import UpdateMessage
from ..bgp.wire import WireError, decode_message, encode_message
from ..net.prefix import Prefix
from .record import UpdateKind, UpdateRecord, flatten_update

__all__ = [
    "MrtError",
    "write_records",
    "read_records",
    "write_columns",
    "write_column_bodies",
    "read_column_batches",
    "MAGIC",
]

#: File magic: identifies our MRT-flavoured update logs.
MAGIC = b"RRIL1\x00"

_RECORD_HEADER = struct.Struct(">IIHIH")  # secs, usecs, peer_asn, peer_ip, length


class MrtError(ValueError):
    """Raised on malformed log data."""


def _split_time(time: float) -> tuple:
    seconds = int(time)
    microseconds = int(round((time - seconds) * 1_000_000))
    if microseconds == 1_000_000:  # rounding spill-over
        seconds += 1
        microseconds = 0
    return seconds, microseconds


def write_record_body(stream: BinaryIO, record: UpdateRecord) -> None:
    """Serialize one record (header + BGP payload, no file magic)."""
    if record.kind is UpdateKind.ANNOUNCE:
        message = UpdateMessage(
            announced=(record.prefix,), attributes=record.attributes
        )
    else:
        message = UpdateMessage(withdrawn=(record.prefix,))
    payload = encode_message(message)
    seconds, microseconds = _split_time(record.time)
    stream.write(
        _RECORD_HEADER.pack(
            seconds,
            microseconds,
            record.peer_asn,
            record.peer_id,
            len(payload),
        )
    )
    stream.write(payload)


def write_records(
    stream: BinaryIO, records: Iterable[UpdateRecord]
) -> int:
    """Serialize ``records`` to ``stream``; returns the record count.

    Each record is framed individually (one NLRI per UPDATE) so the
    reader can reproduce exact per-record timestamps; batching multiple
    prefixes into shared UPDATEs is the transmitting router's business,
    not the archive's.
    """
    stream.write(MAGIC)
    count = 0
    for record in records:
        write_record_body(stream, record)
        count += 1
    return count


def read_records(stream: BinaryIO) -> Iterator[UpdateRecord]:
    """Deserialize records from ``stream`` (reverse of
    :func:`write_records`)."""
    magic = stream.read(len(MAGIC))
    if magic != MAGIC:
        raise MrtError(f"bad magic {magic!r}")
    while True:
        header = stream.read(_RECORD_HEADER.size)
        if not header:
            return
        if len(header) != _RECORD_HEADER.size:
            raise MrtError("truncated record header")
        seconds, microseconds, peer_asn, peer_ip, length = (
            _RECORD_HEADER.unpack(header)
        )
        payload = stream.read(length)
        if len(payload) != length:
            raise MrtError("truncated record payload")
        try:
            message, consumed = decode_message(payload)
        except WireError as exc:
            raise MrtError(f"bad BGP payload: {exc}") from exc
        if consumed != length or not isinstance(message, UpdateMessage):
            raise MrtError("record payload is not a single BGP UPDATE")
        time = seconds + microseconds / 1_000_000
        records = flatten_update(time, peer_ip, peer_asn, message)
        if len(records) != 1:
            raise MrtError("archive records must carry exactly one prefix")
        yield records[0]


def write_column_bodies(stream: BinaryIO, columns) -> int:
    """Serialize a :class:`~repro.core.columns.RecordColumns` batch
    (headers + BGP payloads, no file magic); returns the row count.

    The wire payload depends only on (prefix, attributes), so encoded
    payloads are cached per distinct ``(net, plen, attr_id)`` — a flap
    re-announcing the same bundle thousands of times encodes once.
    """
    from ..core.columns import NO_ATTR  # local: core.columns imports us

    table = columns.attrs
    data = columns.data
    no_attr = int(NO_ATTR)
    announce = int(UpdateKind.ANNOUNCE)
    payloads: Dict[Tuple[int, int, int], bytes] = {}
    pack = _RECORD_HEADER.pack
    write = stream.write
    for time, peer_id, peer_asn, net, plen, kind, attr_id in zip(
        data["time"].tolist(),
        data["peer_id"].tolist(),
        data["peer_asn"].tolist(),
        data["net"].tolist(),
        data["plen"].tolist(),
        data["kind"].tolist(),
        data["attr_id"].tolist(),
    ):
        if kind != announce:
            attr_id = no_attr
        key = (net, plen, attr_id)
        payload = payloads.get(key)
        if payload is None:
            prefix = Prefix(net, plen)
            if kind == announce:
                message = UpdateMessage(
                    announced=(prefix,), attributes=table[attr_id]
                )
            else:
                message = UpdateMessage(withdrawn=(prefix,))
            payload = payloads[key] = encode_message(message)
        seconds, microseconds = _split_time(time)
        write(pack(seconds, microseconds, peer_asn, peer_id, len(payload)))
        write(payload)
    return len(data)


def write_columns(stream: BinaryIO, columns) -> int:
    """Columnar :func:`write_records`: serialize a whole batch.  The
    on-disk format is identical — readers cannot tell which tier wrote
    the archive."""
    stream.write(MAGIC)
    return write_column_bodies(stream, columns)


def read_column_batches(
    stream: BinaryIO,
    batch_size: int = 65536,
    attrs=None,
) -> Iterator:
    """Deserialize an archive into :class:`RecordColumns` batches of up
    to ``batch_size`` rows — no per-record Python objects are built.

    Pass a shared ``attrs`` :class:`AttributeTable` so every yielded
    batch (and any other batches in the campaign) indexes one
    vocabulary; by default the batches share a fresh table.
    """
    from ..core.columns import (
        NO_ATTR,
        RECORD_DTYPE,
        AttributeTable,
        RecordColumns,
    )

    table = attrs if attrs is not None else AttributeTable()
    no_attr = int(NO_ATTR)
    announce = int(UpdateKind.ANNOUNCE)
    withdraw = int(UpdateKind.WITHDRAW)
    magic = stream.read(len(MAGIC))
    if magic != MAGIC:
        raise MrtError(f"bad magic {magic!r}")
    rows: List[tuple] = []
    while True:
        header = stream.read(_RECORD_HEADER.size)
        if not header:
            break
        if len(header) != _RECORD_HEADER.size:
            raise MrtError("truncated record header")
        seconds, microseconds, peer_asn, peer_ip, length = (
            _RECORD_HEADER.unpack(header)
        )
        payload = stream.read(length)
        if len(payload) != length:
            raise MrtError("truncated record payload")
        try:
            message, consumed = decode_message(payload)
        except WireError as exc:
            raise MrtError(f"bad BGP payload: {exc}") from exc
        if consumed != length or not isinstance(message, UpdateMessage):
            raise MrtError("record payload is not a single BGP UPDATE")
        if len(message.withdrawn) + len(message.announced) != 1:
            raise MrtError("archive records must carry exactly one prefix")
        time = seconds + microseconds / 1_000_000
        if message.announced:
            prefix = message.announced[0]
            kind = announce
            attr_id = table.intern(message.attributes)
        else:
            prefix = message.withdrawn[0]
            kind = withdraw
            attr_id = no_attr
        rows.append(
            (
                time, peer_ip, peer_asn,
                prefix.network, prefix.length, kind, attr_id,
            )
        )
        if len(rows) >= batch_size:
            yield RecordColumns(np.array(rows, dtype=RECORD_DTYPE), table)
            rows = []
    if rows:
        yield RecordColumns(np.array(rows, dtype=RECORD_DTYPE), table)


def roundtrip_file(path: str, records: Iterable[UpdateRecord]) -> List[UpdateRecord]:
    """Write ``records`` to ``path`` and read them back (test helper)."""
    with open(path, "wb") as f:
        write_records(f, records)
    with open(path, "rb") as f:
        return list(read_records(f))
