"""Internet-shaped topologies: AS graphs, exchange points, multi-homing
growth, and assembled core-Internet scenarios."""

from .asgraph import AsGraph, AsNode, Tier, build_internet_graph
from .exchange import EXCHANGE_POINTS, ExchangeInfo, ExchangePoint, exchange_by_name
from .multihoming import MultihomingGrowthModel, MultihomingSeries
from .internet import CoreInternetScenario, ProviderSpec
from .multiexchange import BackboneProvider, MultiExchangeScenario

__all__ = [
    "AsGraph",
    "AsNode",
    "Tier",
    "build_internet_graph",
    "EXCHANGE_POINTS",
    "ExchangeInfo",
    "ExchangePoint",
    "exchange_by_name",
    "MultihomingGrowthModel",
    "MultihomingSeries",
    "CoreInternetScenario",
    "ProviderSpec",
    "BackboneProvider",
    "MultiExchangeScenario",
]
