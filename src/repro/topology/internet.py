"""Assembled core-Internet scenarios for event-driven simulation.

This module turns an :class:`~repro.topology.asgraph.AsGraph` into live
simulation objects: one border router per provider AS, customer
originations, an exchange point with a logging route server, and the
fault machinery that makes the system move.  It is the Tier-A
(event-driven) scenario backing Table 1 and the §4 pathology studies.

Scale note: the real Mae-East carried ~42 000 prefixes from ~55 peers;
a pure-Python event simulation runs the same *mechanisms* at reduced
scale (tens of peers, hundreds of prefixes) and the statistical tier
(:mod:`repro.workloads`) extrapolates volumes.  What must match is the
*structure*: who withdraws more than they announce, where WWDups come
from, what the stateless→stateful fix changes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..collector.log import MemoryLog
from ..net.prefix import Prefix
from ..sim.engine import Engine
from ..sim.faults import CustomerFlapGenerator, MisconfiguredProvider
from ..sim.router import Router
from .asgraph import AsGraph, AsNode, Tier, build_internet_graph
from .exchange import ExchangePoint

__all__ = ["ProviderSpec", "CoreInternetScenario"]


def _own_routes_policy(own: List[Prefix]):
    """The no-transit exchange export policy: advertise own customer
    routes, deny everything learned from other exchange peers."""
    from ..bgp.policy import MatchCondition, PolicyTerm, RouteMap

    return RouteMap(
        [PolicyTerm(MatchCondition(prefixes=tuple(own)))],
        name="own-routes-only",
    )


@dataclass
class ProviderSpec:
    """Per-provider knobs for a scenario build.

    ``stateless`` marks the provider's routers as running the
    pathological stateless-BGP implementation; ``flap_rate`` drives its
    customers' circuit instability (flaps/second across the AS);
    ``misconfigured`` attaches the ISP-Y withdrawal spewer.
    """

    stateless: bool = False
    flap_rate: float = 0.0
    misconfigured: bool = False
    mrai_jitter: float = 0.0


class CoreInternetScenario:
    """A runnable exchange-point scenario built from an AS graph.

    One border router is created per backbone/regional AS, attached to
    a single exchange point (full mesh + route server).  Customer
    prefixes are originated by their provider's router (customers'
    interior circuits are below the measurement horizon; what the
    exchange sees is the provider's border behaviour, which is what
    the paper measured).
    """

    def __init__(
        self,
        graph: Optional[AsGraph] = None,
        provider_specs: Optional[Dict[int, ProviderSpec]] = None,
        exchange_name: str = "Mae-East",
        mrai_interval: float = 30.0,
        seed: int = 0,
    ) -> None:
        self.engine = Engine()
        self.sink = MemoryLog()
        self.graph = graph or build_internet_graph(seed=seed)
        self.seed = seed
        self.rng = random.Random(seed)
        self.exchange = ExchangePoint(
            self.engine, name=exchange_name, sink=self.sink
        )
        self.routers: Dict[int, Router] = {}
        self.flappers: List[CustomerFlapGenerator] = []
        self.misconfigured: List[MisconfiguredProvider] = []
        specs = provider_specs or {}

        # Pre-compute what each provider will originate so its export
        # policy (own customer routes only — the standard no-transit
        # exchange policy) can be installed at construction.
        origination: Dict[int, List[Prefix]] = {
            node.asn: list(node.plan.announced)
            for node in self.graph.backbones + self.graph.regionals
        }
        for customer in self.graph.customers:
            for upstream in self.graph.providers_of(customer.asn):
                origination[upstream].extend(customer.plan.announced)

        providers = self.graph.backbones + self.graph.regionals
        for index, node in enumerate(providers):
            spec = specs.get(node.asn, ProviderSpec())
            router = Router(
                self.engine,
                asn=node.asn,
                router_id=(172 << 24) | (index + 1),
                stateless_bgp=spec.stateless,
                mrai_interval=mrai_interval,
                mrai_jitter=spec.mrai_jitter,
                export_policy=_own_routes_policy(origination[node.asn]),
                rng=random.Random(seed * 7919 + node.asn),
                name=f"AS{node.asn}",
            )
            self.routers[node.asn] = router
            self.exchange.attach_provider(router)

        # Originations: each provider announces its own aggregates plus
        # the specifics of the customers homed on it.
        for node in providers:
            router = self.routers[node.asn]
            for prefix in origination[node.asn]:
                router.originate(prefix)

        # Fault machinery per spec.
        for node in providers:
            spec = specs.get(node.asn, ProviderSpec())
            router = self.routers[node.asn]
            if spec.flap_rate > 0.0:
                flapper = CustomerFlapGenerator(
                    self.engine,
                    router,
                    base_rate=spec.flap_rate,
                    rng=random.Random(seed * 104729 + node.asn),
                )
                self.flappers.append(flapper)
            if spec.misconfigured:
                foreign = self._foreign_prefixes(node.asn)
                self.misconfigured.append(
                    MisconfiguredProvider(
                        self.engine,
                        router,
                        foreign,
                        rng=random.Random(seed * 1299709 + node.asn),
                    )
                )

    def _foreign_prefixes(self, asn: int, count: int = 20) -> List[Prefix]:
        """Prefixes this AS does not originate (ISP-Y's victims)."""
        own = set(self.routers[asn].originated)
        pool = [p for p in self.graph.all_prefixes() if p not in own]
        self.rng.shuffle(pool)
        return pool[:count]

    # -- running ---------------------------------------------------------------

    def start_faults(self) -> None:
        for flapper in self.flappers:
            flapper.start()
        for bad in self.misconfigured:
            bad.start()

    def settle(self, duration: float = 300.0) -> None:
        """Let sessions establish and tables converge, then discard the
        convergence-phase records (the paper measured steady state)."""
        self.engine.run_until(self.engine.now + duration)
        self.sink.clear()

    def run(self, duration: float) -> None:
        self.engine.run_until(self.engine.now + duration)

    @property
    def route_server(self):
        return self.exchange.route_server

    def table_size(self) -> int:
        """Prefixes in the route server's view."""
        return len(self.route_server.loc_rib)
