"""Internet-shaped AS-level topology generation.

The mid-1996 Internet the paper measured: roughly 1 300 autonomous
systems and 42 000 prefixes, with "six to eight ISPs" dominating the
default-free routing tables, a middle tier of regional providers, and a
long tail of customer ASes.  This module generates topologies with that
shape at configurable scale:

- **Tier 1 (backbones)** interconnect at the public exchanges (full
  mesh among themselves) and hold large provider CIDR blocks.
- **Tier 2 (regionals)** attach to 1–2 backbones and hold smaller
  blocks, partially aggregated.
- **Tier 3 (customers)** attach to one provider (or two when
  multi-homed) and originate a handful of prefixes — provider-block
  space when modern, swamp /24s when pre-CIDR.

The output is a :class:`networkx.Graph` whose nodes carry
:class:`AsNode` records (tier, address plan, multi-homing flag), plus
helpers the simulator and the statistical generator both use.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..net.addressing import (
    AddressPlan,
    SwampAllocator,
    provider_allocator,
)
from ..net.prefix import Prefix

__all__ = ["Tier", "AsNode", "AsGraph", "build_internet_graph"]


class Tier(Enum):
    """Provider hierarchy levels."""

    BACKBONE = auto()
    REGIONAL = auto()
    CUSTOMER = auto()


@dataclass
class AsNode:
    """One autonomous system in the generated topology."""

    asn: int
    tier: Tier
    plan: AddressPlan = field(default_factory=AddressPlan)
    multi_homed: bool = False
    #: swamp-space holder (pre-CIDR allocations; unaggregatable)
    legacy: bool = False

    @property
    def announced_prefixes(self) -> List[Prefix]:
        return self.plan.announced


class AsGraph:
    """A generated AS topology: the graph plus typed node access."""

    def __init__(self, graph: nx.Graph) -> None:
        self.graph = graph

    def node(self, asn: int) -> AsNode:
        return self.graph.nodes[asn]["record"]

    def nodes_in_tier(self, tier: Tier) -> List[AsNode]:
        return [
            self.node(asn)
            for asn in self.graph.nodes
            if self.node(asn).tier is tier
        ]

    @property
    def backbones(self) -> List[AsNode]:
        return self.nodes_in_tier(Tier.BACKBONE)

    @property
    def regionals(self) -> List[AsNode]:
        return self.nodes_in_tier(Tier.REGIONAL)

    @property
    def customers(self) -> List[AsNode]:
        return self.nodes_in_tier(Tier.CUSTOMER)

    def providers_of(self, asn: int) -> List[int]:
        """The upstream ASes of ``asn`` (neighbors in a higher tier)."""
        mine = self.node(asn).tier
        order = {Tier.BACKBONE: 0, Tier.REGIONAL: 1, Tier.CUSTOMER: 2}
        return [
            neighbor
            for neighbor in self.graph.neighbors(asn)
            if order[self.node(neighbor).tier] < order[mine]
        ]

    def all_prefixes(self) -> List[Prefix]:
        """Every globally visible prefix in the topology."""
        result: List[Prefix] = []
        for asn in self.graph.nodes:
            result.extend(self.node(asn).announced_prefixes)
        return result

    def multi_homed_fraction(self) -> float:
        """Fraction of customer ASes with two or more providers."""
        customers = self.customers
        if not customers:
            return 0.0
        return sum(1 for c in customers if c.multi_homed) / len(customers)

    def __len__(self) -> int:
        return self.graph.number_of_nodes()


def build_internet_graph(
    n_backbones: int = 8,
    n_regionals: int = 24,
    n_customers: int = 120,
    multi_homed_fraction: float = 0.25,
    legacy_fraction: float = 0.3,
    prefixes_per_customer: Tuple[int, int] = (1, 4),
    seed: int = 0,
) -> AsGraph:
    """Generate a hierarchical Internet-shaped AS graph.

    ``multi_homed_fraction`` defaults to the paper's measured ">25
    percent of prefixes are currently multi-homed"; ``legacy_fraction``
    controls how many customers hold unaggregatable swamp space.
    Deterministic for a given ``seed``.
    """
    rng = random.Random(seed)
    swamp = SwampAllocator(random.Random(seed + 1))
    graph = nx.Graph()
    next_asn = 1

    backbones: List[AsNode] = []
    for i in range(n_backbones):
        allocator = provider_allocator(i)
        node = AsNode(asn=next_asn, tier=Tier.BACKBONE)
        node.plan.aggregates.append(allocator.block)
        graph.add_node(next_asn, record=node, allocator=allocator)
        backbones.append(node)
        next_asn += 1
    # Backbones interconnect in a full mesh (the exchange-point core).
    for i, a in enumerate(backbones):
        for b in backbones[i + 1:]:
            graph.add_edge(a.asn, b.asn)

    regionals: List[AsNode] = []
    for _ in range(n_regionals):
        node = AsNode(asn=next_asn, tier=Tier.REGIONAL)
        upstreams = rng.sample(backbones, k=min(2, len(backbones)))
        # A regional gets a /16-ish block from its primary upstream.
        allocator = graph.nodes[upstreams[0].asn]["allocator"]
        block = allocator.allocate(16)
        node.plan.aggregates.append(block)
        graph.add_node(next_asn, record=node, block=block)
        for upstream in upstreams:
            graph.add_edge(next_asn, upstream.asn)
        regionals.append(node)
        next_asn += 1

    providers = backbones + regionals
    for _ in range(n_customers):
        node = AsNode(asn=next_asn, tier=Tier.CUSTOMER)
        node.legacy = rng.random() < legacy_fraction
        node.multi_homed = rng.random() < multi_homed_fraction
        n_prefixes = rng.randint(*prefixes_per_customer)
        primary = rng.choice(providers)
        graph.add_node(next_asn, record=node)
        graph.add_edge(next_asn, primary.asn)
        if node.multi_homed:
            others = [p for p in providers if p.asn != primary.asn]
            secondary = rng.choice(others)
            graph.add_edge(next_asn, secondary.asn)
        if node.legacy or node.multi_homed:
            # Swamp space, or punched-out provider space: globally
            # visible specifics that cannot be aggregated away.
            node.plan.specifics.extend(swamp.allocate_many(n_prefixes))
        else:
            # Single-homed modern customer: space inside the provider
            # block; the provider's aggregate covers it, so it adds no
            # globally visible prefix of its own.
            pass
        next_asn += 1

    return AsGraph(graph)
