"""The U.S. public exchange points (Figure 1).

The paper instrumented the Routing Arbiter route servers at five major
exchanges.  This module carries the static facts Figure 1 reports —
name, location, and the number of providers peering with the route
server — plus :class:`ExchangePoint`, the simulation construct that
wires provider border routers and a logging route server into the
shared exchange fabric.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.engine import Engine
from ..sim.link import Link
from ..sim.router import Router
from ..sim.routeserver import RouteServer

__all__ = ["ExchangeInfo", "EXCHANGE_POINTS", "ExchangePoint"]


@dataclass(frozen=True)
class ExchangeInfo:
    """Static description of one public exchange point."""

    name: str
    location: str
    #: Providers peering with the Routing Arbiter route server there
    #: (approximate mid-1996 values; Mae-East "currently hosts over 60
    #: service providers" with the route servers peering with >90%).
    route_server_peers: int
    largest: bool = False


#: Figure 1's five measured exchanges.
EXCHANGE_POINTS: Tuple[ExchangeInfo, ...] = (
    ExchangeInfo("Mae-East", "Washington, D.C.", 55, largest=True),
    ExchangeInfo("AADS", "Chicago", 20),
    ExchangeInfo("Sprint", "Pennsauken, NJ", 15),
    ExchangeInfo("PacBell", "San Francisco", 25),
    ExchangeInfo("Mae-West", "San Jose", 30),
)


def exchange_by_name(name: str) -> ExchangeInfo:
    """Look up one of the five measured exchanges."""
    for info in EXCHANGE_POINTS:
        if info.name.lower() == name.lower():
            return info
    raise KeyError(f"unknown exchange point {name!r}")


class ExchangePoint:
    """A simulated public exchange: provider routers, a shared fabric,
    and a Routing Arbiter route server logging to ``sink``.

    The fabric is modelled as point-to-point links (the real FDDI/ATM
    fabrics carried bilateral BGP sessions; the link abstraction per
    peering matches that).  ``full_mesh=True`` adds the O(N²) bilateral
    provider peerings; with False only the provider↔route-server
    sessions exist (the O(N) route-server configuration of §3).
    """

    def __init__(
        self,
        engine: Engine,
        name: str = "Mae-East",
        sink=None,
        server_asn: int = 65000,
        full_mesh: bool = True,
        link_delay: float = 0.005,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.engine = engine
        self.name = name
        self.sink = sink
        self.full_mesh = full_mesh
        self.link_delay = link_delay
        # crc32, not hash(): str hashes are PYTHONHASHSEED-salted, so
        # the default seed would differ on every run (DET004).
        self.rng = rng or random.Random(zlib.crc32(name.encode()) & 0xFFFF)
        self.route_server = RouteServer(
            engine,
            asn=server_asn,
            router_id=(10 << 24) | 0xFFFF,
            sink=sink,
            name=f"{name}-rs",
        )
        self.providers: List[Router] = []
        self._links: List[Link] = []

    def attach_provider(self, router: Router, start: bool = True) -> None:
        """Connect a provider border router to the exchange.

        Peers it with the route server and (in full-mesh mode) with all
        previously attached providers.
        """
        server_link = Link(self.engine, delay=self.link_delay)
        router.add_peer(
            self.route_server.router_id, self.route_server.asn, server_link
        )
        self.route_server.add_peer(router.router_id, router.asn, server_link)
        self._links.append(server_link)
        if start:
            router.start_session(self.route_server.router_id)
        if self.full_mesh:
            for other in self.providers:
                link = Link(self.engine, delay=self.link_delay)
                router.add_peer(other.router_id, other.asn, link)
                other.add_peer(router.router_id, router.asn, link)
                self._links.append(link)
                if start:
                    router.start_session(other.router_id)
        self.providers.append(router)

    @property
    def session_count(self) -> int:
        """Configured peering sessions (the O(N²) vs O(N) contrast)."""
        n = len(self.providers)
        if self.full_mesh:
            return n + n * (n - 1) // 2
        return n

    def established_sessions(self) -> int:
        """Sessions currently Established (one count per endpoint pair)."""
        count = sum(
            1
            for session in self.route_server.sessions.values()
            if session.is_established
        )
        seen = set()
        for provider in self.providers:
            for peer_id, session in provider.sessions.items():
                if peer_id == self.route_server.router_id:
                    continue
                pair = frozenset((provider.router_id, peer_id))
                if pair not in seen and session.is_established:
                    seen.add(pair)
                    count += 1
        return count

    def links(self) -> Sequence[Link]:
        return tuple(self._links)
