"""The multi-homing growth model (Figure 10).

Figure 10 plots the number of prefixes advertised with multiple paths
in Mae-East's routing tables, April–December 1996: roughly linear
growth ("the rate of increase in multi-homing is at best linear"),
spikes at the end of May from "a major ISP's infrastructure upgrade",
and a gap where data was lost.  More than 25 percent of prefixes were
multi-homed.

:class:`MultihomingGrowthModel` generates that daily series from the
mechanism the paper describes: a growing population of multi-homed
customer prefixes (new multi-homed sites appear at a steady rate as
end-sites buy redundant connectivity), an incident that transiently
multiplies visible paths, and collection outages.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["MultihomingGrowthModel", "MultihomingSeries"]


@dataclass
class MultihomingSeries:
    """The daily multi-homed-prefix counts plus bookkeeping."""

    days: List[int]
    counts: List[Optional[int]]   #: None = lost data (the gap)

    def observed(self) -> List[Tuple[int, int]]:
        """(day, count) pairs excluding lost days."""
        return [
            (day, count)
            for day, count in zip(self.days, self.counts)
            if count is not None
        ]

    def growth_per_day(self) -> float:
        """Least-squares linear growth rate over observed days."""
        points = self.observed()
        if len(points) < 2:
            return 0.0
        n = len(points)
        sx = sum(d for d, _ in points)
        sy = sum(c for _, c in points)
        sxx = sum(d * d for d, _ in points)
        sxy = sum(d * c for d, c in points)
        denominator = n * sxx - sx * sx
        if denominator == 0:
            return 0.0
        return (n * sxy - sx * sy) / denominator


class MultihomingGrowthModel:
    """Daily multi-homed prefix counts over a measurement campaign.

    Parameters
    ----------
    initial_count:
        Multi-homed prefixes on day 0 (paper's April level ~9-10k).
    daily_growth:
        New multi-homed prefixes per day (linear trend).
    noise:
        Day-to-day multiplicative measurement noise.
    upgrade_day, upgrade_duration, upgrade_magnitude:
        The late-May ISP infrastructure upgrade: for ``duration`` days
        the visible path count spikes by ``magnitude``×.
    gap:
        ``(first_day, last_day)`` of lost data (the curve's hole).
    """

    def __init__(
        self,
        initial_count: int = 9000,
        daily_growth: float = 55.0,
        noise: float = 0.02,
        upgrade_day: int = 55,
        upgrade_duration: int = 4,
        upgrade_magnitude: float = 2.6,
        gap: Tuple[int, int] = (150, 165),
        seed: int = 0,
    ) -> None:
        self.initial_count = initial_count
        self.daily_growth = daily_growth
        self.noise = noise
        self.upgrade_day = upgrade_day
        self.upgrade_duration = upgrade_duration
        self.upgrade_magnitude = upgrade_magnitude
        self.gap = gap
        self.rng = random.Random(seed)

    def count_on(self, day: int) -> Optional[int]:
        """The multi-homed prefix count measured on ``day`` (None in
        the data gap)."""
        if self.gap[0] <= day <= self.gap[1]:
            return None
        base = self.initial_count + self.daily_growth * day
        if (
            self.upgrade_day
            <= day
            < self.upgrade_day + self.upgrade_duration
        ):
            # The upgrade transiently breaks aggregates apart and leaks
            # backup paths: visible multi-homed routes spike.
            base *= self.upgrade_magnitude
        jitter = self.rng.uniform(1.0 - self.noise, 1.0 + self.noise)
        return int(round(base * jitter))

    def series(self, n_days: int = 270) -> MultihomingSeries:
        """Generate the Figure 10 series (April→December ≈ 270 days)."""
        days = list(range(n_days))
        counts = [self.count_on(day) for day in days]
        return MultihomingSeries(days=days, counts=counts)

    def multi_homed_fraction(
        self, day: int, total_prefixes: int = 42000
    ) -> float:
        """Share of the default-free table that is multi-homed."""
        count = self.count_on(day)
        if count is None:
            return float("nan")
        return count / total_prefixes
