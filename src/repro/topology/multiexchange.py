"""Multi-exchange instrumentation: the cross-exchange consistency claim.

The paper instruments five exchange points but presents Mae-East,
asserting "these results are representative of other exchange points,
including PacBell and Sprint.  The BGP information exported from
autonomous systems at private exchange points should mirror the data
at public exchanges" (§5).  That is a checkable claim: the *same
provider behaviour* (customer flaps, stateless implementations,
misconfigurations) is visible wherever the provider peers.

:class:`MultiExchangeScenario` builds it mechanistically: each
national backbone operates one border router *per exchange*, all
originating the same customer space and all fed by one shared
customer-fault process (a customer circuit is attached to the
backbone, not to an exchange — when it flaps, every border router
withdraws it).  Each exchange has its own logging route server, so the
per-exchange logs can be classified independently and compared.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..collector.log import MemoryLog
from ..core.classifier import StreamClassifier, classify
from ..core.instability import CategoryCounts
from ..net.prefix import Prefix
from ..sim.engine import Engine
from ..sim.router import Router
from .exchange import EXCHANGE_POINTS, ExchangePoint

__all__ = ["BackboneProvider", "MultiExchangeScenario"]


@dataclass
class BackboneProvider:
    """One national backbone present at several exchanges."""

    asn: int
    stateless: bool = False
    flap_rate: float = 0.0           #: customer flaps per second
    routers: Dict[str, Router] = field(default_factory=dict)
    prefixes: List[Prefix] = field(default_factory=list)

    def flap(self, engine: Engine, prefix: Prefix, down_for: float) -> None:
        """One customer flap, visible at every exchange at once: every
        border router withdraws and re-announces the prefix."""
        for router in self.routers.values():
            router.flap_origin(prefix, down_for=down_for)


class MultiExchangeScenario:
    """Providers spanning multiple instrumented exchanges.

    Parameters
    ----------
    exchange_names:
        Which of the five measured exchanges to build (default: three).
    n_providers, prefixes_per_provider:
        The provider population; providers alternate stateless/stateful
        and get heterogeneous flap rates.
    """

    def __init__(
        self,
        exchange_names: Sequence[str] = ("Mae-East", "AADS", "PacBell"),
        n_providers: int = 6,
        prefixes_per_provider: int = 20,
        mrai_interval: float = 15.0,
        seed: int = 0,
    ) -> None:
        self.engine = Engine()
        self.rng = random.Random(seed)
        self.sinks: Dict[str, MemoryLog] = {}
        self.exchanges: Dict[str, ExchangePoint] = {}
        for name in exchange_names:
            sink = MemoryLog()
            self.sinks[name] = sink
            self.exchanges[name] = ExchangePoint(
                self.engine, name=name, sink=sink, full_mesh=True,
                server_asn=64900 + len(self.exchanges),
            )
        self.providers: List[BackboneProvider] = []
        base = 40 << 24
        prefix_index = 0
        router_id = 1
        for i in range(n_providers):
            provider = BackboneProvider(
                asn=100 + i,
                stateless=(i % 2 == 0),
                flap_rate=1.0 / self.rng.uniform(120.0, 900.0),
            )
            for _ in range(prefixes_per_provider):
                provider.prefixes.append(
                    Prefix(base + prefix_index * 256, 24)
                )
                prefix_index += 1
            # Providers do not all peer everywhere: each attends the
            # first exchange (Mae-East hosts essentially everyone) and
            # a random subset of the rest, so the per-exchange views
            # genuinely differ.
            attending = [exchange_names[0]] + [
                name
                for name in exchange_names[1:]
                if self.rng.random() < 0.8
            ]
            for name in attending:
                router = Router(
                    self.engine,
                    asn=provider.asn,
                    router_id=(172 << 24) + router_id,
                    stateless_bgp=provider.stateless,
                    mrai_interval=mrai_interval,
                    mrai_jitter=0.25,
                    rng=random.Random(seed * 31 + router_id),
                    name=f"AS{provider.asn}@{name}",
                )
                router_id += 1
                for prefix in provider.prefixes:
                    router.originate(prefix)
                self.exchanges[name].attach_provider(router)
                provider.routers[name] = router
            self.providers.append(provider)

    # -- running -----------------------------------------------------------

    def settle(self, duration: float = 200.0) -> None:
        self.engine.run_until(self.engine.now + duration)
        for sink in self.sinks.values():
            sink.clear()

    def run_with_faults(self, duration: float) -> None:
        """Drive shared customer-fault processes for ``duration``."""
        end = self.engine.now + duration
        for provider in self.providers:
            t = self.engine.now
            while True:
                t += self.rng.expovariate(provider.flap_rate)
                if t >= end:
                    break
                prefix = self.rng.choice(provider.prefixes)
                down = self.rng.uniform(
                    1.5 * 15.0, 4.0 * 15.0
                )  # outlast the MRAI
                self.engine.schedule_at(
                    t, provider.flap, self.engine, prefix, down
                )
        self.engine.run_until(end)

    # -- measurement ---------------------------------------------------------

    def classify_exchange(self, name: str) -> CategoryCounts:
        """The taxonomy breakdown of one exchange's log."""
        counts = CategoryCounts()
        counts.extend(classify(self.sinks[name].sorted_by_time()))
        return counts

    def category_profiles(self) -> Dict[str, Dict[str, float]]:
        """Per-exchange normalized category shares (for similarity)."""
        profiles: Dict[str, Dict[str, float]] = {}
        for name in self.exchanges:
            counts = self.classify_exchange(name)
            total = max(1, counts.total)
            profiles[name] = {
                category: value / total
                for category, value in counts.as_dict().items()
            }
        return profiles

    @staticmethod
    def profile_similarity(
        a: Dict[str, float], b: Dict[str, float]
    ) -> float:
        """Cosine similarity between two category-share profiles."""
        import math

        keys = set(a) | set(b)
        dot = sum(a.get(k, 0.0) * b.get(k, 0.0) for k in keys)
        norm_a = math.sqrt(sum(v * v for v in a.values()))
        norm_b = math.sqrt(sum(v * v for v in b.values()))
        if norm_a == 0.0 or norm_b == 0.0:
            return 0.0
        return dot / (norm_a * norm_b)

    def min_pairwise_similarity(self) -> float:
        """The weakest cross-exchange agreement — the §5 claim holds
        when this stays high."""
        profiles = list(self.category_profiles().values())
        worst = 1.0
        for i, a in enumerate(profiles):
            for b in profiles[i + 1:]:
                worst = min(worst, self.profile_similarity(a, b))
        return worst
