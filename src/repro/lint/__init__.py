"""``repro.lint``: AST-based invariant linter for this repo.

Every result this reproduction publishes — golden corpora,
differential digests, bit-identical sharded campaigns — rests on
source-level invariants (seeded randomness, no wall-clock in results,
commutative merges, slotted hot types) that ``repro.lint`` enforces
statically.  Run ``python -m repro.lint`` from the repo root; see
``docs/LINTING.md`` for the rule catalogue and the pragma grammar.
"""

from .baseline import apply_baseline, load_baseline, write_baseline
from .cli import main
from .engine import (
    Finding,
    LintEngine,
    LintError,
    ModuleContext,
    Pragma,
    Rule,
    iter_python_files,
)
from .rules import all_rules, rules_by_id

__all__ = [
    "Finding",
    "LintEngine",
    "LintError",
    "ModuleContext",
    "Pragma",
    "Rule",
    "all_rules",
    "apply_baseline",
    "iter_python_files",
    "load_baseline",
    "main",
    "rules_by_id",
    "write_baseline",
]
