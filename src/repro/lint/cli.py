"""The ``python -m repro.lint`` command line.

Exit codes: 0 = clean (every finding fixed, pragma-justified, or
baselined), 1 = new findings, 2 = usage or internal error.  ``--json``
prints the machine-readable report (the same payload ``--output``
writes for CI artifact upload on failure).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import Finding, LintEngine, LintError
from .rules import all_rules

__all__ = ["main", "build_report"]

#: Bumped 1 -> 2 when the whole-program passes landed: the report
#: gained ``cache`` (hits/misses) and an optional ``stats`` block.
JSON_SCHEMA_VERSION = 2

#: Default on-disk result cache, keyed by content sha (gitignored).
CACHE_FILENAME = ".lint-cache.json"


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant linter for determinism, "
            "mergeability, and hot-path discipline "
            "(see docs/LINTING.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src/ and tests/ "
        "under --root)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root: lint paths default to <root>/src and "
        "<root>/tests, and finding paths are reported relative "
        "to it (default: cwd)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the JSON report instead of text",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the JSON report to FILE (CI uploads it as "
        "an artifact on failure)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file of grandfathered findings "
        "(default: <root>/lint-baseline.json when present)",
    )
    parser.add_argument(
        "--fix-baseline",
        action="store_true",
        help="rewrite the baseline to absorb all current findings, "
        "then exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyze uncached files with N worker processes "
        "(default: 1, serial)",
    )
    parser.add_argument(
        "--graph",
        metavar="FILE",
        help="write the project call graph (nodes, edges, impure "
        "sites) as JSON to FILE",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print findings per rule, files analyzed, cache hit "
        "rate, and wall time to stderr",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        help=f"per-file result cache location "
        f"(default: <root>/{CACHE_FILENAME})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the per-file result cache for this run",
    )
    return parser


def build_report(
    root: Path,
    new: List[Finding],
    baselined: int,
    suppressed: int,
    files: int,
    cache_hits: int = 0,
    cache_misses: int = 0,
) -> dict:
    counts: dict = {}
    for finding in new:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "schema": JSON_SCHEMA_VERSION,
        "root": str(root),
        "files": files,
        "findings": [finding.to_payload() for finding in new],
        "counts": {rule: counts[rule] for rule in sorted(counts)},
        "baselined": baselined,
        "suppressed": suppressed,
        "cache": {"hits": cache_hits, "misses": cache_misses},
    }


def _render_stats(
    report: dict, elapsed: float, jobs: int
) -> str:
    cache = report["cache"]
    looked_up = cache["hits"] + cache["misses"]
    rate = cache["hits"] / looked_up if looked_up else 0.0
    lines = [
        f"files analyzed:   {report['files']} "
        f"({cache['misses']} parsed, {cache['hits']} from cache; "
        f"hit rate {rate:.0%})",
        f"jobs:             {jobs}",
        f"wall time:        {elapsed:.2f}s",
        f"findings:         {len(report['findings'])} new, "
        f"{report['baselined']} baselined, "
        f"{report['suppressed']} suppressed",
    ]
    for rule, count in report["counts"].items():
        lines.append(f"  {rule:8s} {count}")
    return "\n".join(lines)


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.id}  {rule.title}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0

    root = Path(args.root)
    if not root.is_dir():
        print(f"error: --root {root} is not a directory", file=sys.stderr)
        return 2
    if args.paths:
        paths = [Path(path) for path in args.paths]
    else:
        paths = [root / "src", root / "tests"]
        paths = [path for path in paths if path.exists()]
    if not paths:
        print("error: nothing to lint", file=sys.stderr)
        return 2

    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = root / "lint-baseline.json"
    if args.no_cache:
        cache_path = None
    elif args.cache is not None:
        cache_path = Path(args.cache)
    else:
        cache_path = root / CACHE_FILENAME
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2

    engine = LintEngine(root)
    # lint: allow[DET002] -- wall time is --stats display output only
    started = time.perf_counter()
    try:
        result = engine.lint_paths(
            paths, jobs=args.jobs, cache_path=cache_path
        )
        baseline = load_baseline(baseline_path)
    except (LintError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # lint: allow[DET002] -- wall time is --stats display output only
    elapsed = time.perf_counter() - started

    if args.graph:
        program = engine.last_program
        payload = program.graph.to_payload() if program else {}
        Path(args.graph).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    if args.fix_baseline:
        write_baseline(baseline_path, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to {baseline_path}"
        )
        return 0

    new, baselined = apply_baseline(result.findings, baseline)
    report = build_report(
        root,
        new,
        baselined,
        len(result.suppressed),
        result.files,
        cache_hits=result.cache_hits,
        cache_misses=result.cache_misses,
    )
    if args.output:
        Path(args.output).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for finding in new:
            print(finding.render())
        summary = (
            f"{result.files} file(s): {len(new)} new finding(s), "
            f"{baselined} baselined, "
            f"{len(result.suppressed)} pragma-suppressed"
        )
        print(summary)
    if args.stats:
        print(_render_stats(report, elapsed, args.jobs), file=sys.stderr)
    return 1 if new else 0
