"""The ``python -m repro.lint`` command line.

Exit codes: 0 = clean (every finding fixed, pragma-justified, or
baselined), 1 = new findings, 2 = usage or internal error.  ``--json``
prints the machine-readable report (the same payload ``--output``
writes for CI artifact upload on failure).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import Finding, LintEngine, LintError
from .rules import all_rules

__all__ = ["main", "build_report"]

JSON_SCHEMA_VERSION = 1


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant linter for determinism, "
            "mergeability, and hot-path discipline "
            "(see docs/LINTING.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src/ and tests/ "
        "under --root)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root: lint paths default to <root>/src and "
        "<root>/tests, and finding paths are reported relative "
        "to it (default: cwd)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the JSON report instead of text",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the JSON report to FILE (CI uploads it as "
        "an artifact on failure)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file of grandfathered findings "
        "(default: <root>/lint-baseline.json when present)",
    )
    parser.add_argument(
        "--fix-baseline",
        action="store_true",
        help="rewrite the baseline to absorb all current findings, "
        "then exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def build_report(
    root: Path,
    new: List[Finding],
    baselined: int,
    suppressed: int,
    files: int,
) -> dict:
    counts: dict = {}
    for finding in new:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "schema": JSON_SCHEMA_VERSION,
        "root": str(root),
        "files": files,
        "findings": [finding.to_payload() for finding in new],
        "counts": {rule: counts[rule] for rule in sorted(counts)},
        "baselined": baselined,
        "suppressed": suppressed,
    }


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.id}  {rule.title}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0

    root = Path(args.root)
    if not root.is_dir():
        print(f"error: --root {root} is not a directory", file=sys.stderr)
        return 2
    if args.paths:
        paths = [Path(path) for path in args.paths]
    else:
        paths = [root / "src", root / "tests"]
        paths = [path for path in paths if path.exists()]
    if not paths:
        print("error: nothing to lint", file=sys.stderr)
        return 2

    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = root / "lint-baseline.json"

    engine = LintEngine(root)
    try:
        result = engine.lint_paths(paths)
        baseline = load_baseline(baseline_path)
    except (LintError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.fix_baseline:
        write_baseline(baseline_path, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to {baseline_path}"
        )
        return 0

    new, baselined = apply_baseline(result.findings, baseline)
    report = build_report(
        root, new, baselined, len(result.suppressed), result.files
    )
    if args.output:
        Path(args.output).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for finding in new:
            print(finding.render())
        summary = (
            f"{result.files} file(s): {len(new)} new finding(s), "
            f"{baselined} baselined, "
            f"{len(result.suppressed)} pragma-suppressed"
        )
        print(summary)
    return 1 if new else 0
