"""The AST lint engine: file loading, scopes, pragmas, dispatch.

``repro.lint`` turns the repo's folklore determinism/mergeability
invariants into enforced static checks.  The engine owns everything
rule modules share:

- :class:`Finding` — one violation (rule id, path, line, snippet);
- :class:`Pragma` — the inline allow syntax
  (``# lint: allow[RULE-ID] -- justification``), parsed from the
  token stream so string literals can never fake a pragma;
- :class:`ModuleContext` — per-file AST plus the semantic helpers the
  rules need but ``ast`` does not provide: parent links, import-alias
  resolution (``from random import randint as ri`` still resolves to
  ``random.randint``), and a conservative scope-aware type inference
  (string literals, annotations, set/dict constructors);
- :class:`LintEngine` — runs every rule over every file, applies
  pragma suppression, and reports stale pragmas.

Rules live one-per-module under :mod:`repro.lint.rules`; see
``docs/LINTING.md`` for the catalogue and how to add one.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "LintError",
    "LintEngine",
    "LintReport",
    "ModuleContext",
    "Pragma",
    "ProgramContext",
    "ProgramRule",
    "Rule",
    "iter_python_files",
]


class LintError(RuntimeError):
    """A file could not be linted at all (e.g. a syntax error)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # posix-style path relative to the lint root
    line: int
    col: int
    message: str
    snippet: str  # the stripped source line, for humans and baselines

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: line numbers shift, snippets rarely do."""
        return (self.rule, self.path, self.snippet)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_payload(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"{self.message}\n    {self.snippet}"
        )


#: Grammar: ``allow[RULE-ID] -- why this is fine`` after a comment
#: opening exactly with ``lint:`` (ids comma-separated).
_PRAGMA_HEAD = re.compile(r"^#\s*lint:\s*(.*)$")
_PRAGMA_ALLOW = re.compile(
    r"allow\[\s*([A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)\s*\]\s*(?:--\s*(.*))?$"
)


@dataclass
class Pragma:
    """One parsed ``# lint: allow[...]`` comment."""

    line: int
    rules: Tuple[str, ...]
    justification: str
    own_line: bool  # comment-only line: applies to the next line
    used: bool = False


@dataclass(frozen=True)
class PragmaIssue:
    """A pragma the engine refuses to honor (LINT000 material)."""

    line: int
    message: str
    snippet: str


class _Scope:
    """One lexical scope: import aliases plus inferred local types."""

    __slots__ = ("node", "parent", "imports", "types", "assigned")

    def __init__(self, node: ast.AST, parent: Optional["_Scope"]) -> None:
        self.node = node
        self.parent = parent
        #: local name -> canonical dotted origin ("random.randint")
        self.imports: Dict[str, str] = {}
        #: local name -> "str" | "bytes" | "set" | "dict" | None(conflict)
        self.types: Dict[str, Optional[str]] = {}
        #: every name bound here by any non-import statement
        self.assigned: set = set()


_BUILTIN_NAMES = frozenset(
    {
        "hash",
        "sorted",
        "set",
        "frozenset",
        "dict",
        "list",
        "tuple",
        "len",
        "sum",
        "min",
        "max",
        "any",
        "all",
        "str",
        "repr",
        "format",
        "bytes",
        "iter",
        "reversed",
        "enumerate",
        "zip",
        "map",
        "filter",
        "print",
    }
)

_STR_METHODS = frozenset(
    {"format", "join", "lower", "upper", "strip", "decode", "replace"}
)

_ANNOTATION_TYPES = {
    "str": "str",
    "bytes": "bytes",
    "set": "set",
    "Set": "set",
    "MutableSet": "set",
    "frozenset": "set",
    "FrozenSet": "set",
    "dict": "dict",
    "Dict": "dict",
    "Mapping": "dict",
    "MutableMapping": "dict",
}

#: annotation wrappers to look through: Optional[str] means str here.
_TRANSPARENT_WRAPPERS = frozenset({"Optional", "Final", "Annotated"})


class ModuleContext:
    """Everything the rules may ask about one parsed source file."""

    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        try:
            self.tree = ast.parse(source)
        except SyntaxError as error:
            raise LintError(f"{rel}: cannot parse: {error}") from error
        self._parents: Dict[int, ast.AST] = {}
        self._scope_of: Dict[int, _Scope] = {}
        self._module_scope = _Scope(self.tree, None)
        self._link_parents()
        self._build_scopes()
        self.pragmas: Dict[int, Pragma] = {}
        self.pragma_issues: List[PragmaIssue] = []
        self._parse_pragmas()

    # -- structure ----------------------------------------------------------

    def _link_parents(self) -> None:
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self._parents[id(child)] = node

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    # -- scopes, imports, and cheap type inference --------------------------

    def _build_scopes(self) -> None:
        self._scope_of[id(self.tree)] = self._module_scope
        self._collect(self.tree, self._module_scope)

    def _collect(self, node: ast.AST, scope: _Scope) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                scope.assigned.add(child.name)
                inner = _Scope(child, scope)
                self._scope_of[id(child)] = inner
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._bind_params(child, inner)
                self._collect(child, inner)
                continue
            if isinstance(child, ast.Lambda):
                inner = _Scope(child, scope)
                self._scope_of[id(child)] = inner
                self._bind_params(child, inner)
                self._collect(child, inner)
                continue
            self._record_bindings(child, scope)
            self._collect(child, scope)

    def _bind_params(self, node: ast.AST, scope: _Scope) -> None:
        arguments = node.args
        params = list(arguments.posonlyargs) + list(arguments.args)
        params += list(arguments.kwonlyargs)
        for extra in (arguments.vararg, arguments.kwarg):
            if extra is not None:
                params.append(extra)
        for param in params:
            scope.assigned.add(param.arg)
            inferred = self._annotation_type(param.annotation)
            self._bind_type(scope, param.arg, inferred)

    def _record_bindings(self, node: ast.AST, scope: _Scope) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                origin = alias.name if alias.asname else local
                scope.imports[local] = origin
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                # Relative imports resolve inside this package; the
                # rules only care about stdlib/third-party origins.
                for alias in node.names:
                    scope.assigned.add(alias.asname or alias.name)
                return
            for alias in node.names:
                local = alias.asname or alias.name
                scope.imports[local] = f"{node.module}.{alias.name}"
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                self._bind_target(scope, target, node.value)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                scope.assigned.add(node.target.id)
                inferred = self._annotation_type(node.annotation)
                if inferred is None and node.value is not None:
                    inferred = self.infer(node.value)
                self._bind_type(scope, node.target.id, inferred)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                scope.assigned.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._bind_target(scope, node.target, None)
        elif isinstance(node, ast.withitem):
            if node.optional_vars is not None:
                self._bind_target(scope, node.optional_vars, None)
        elif isinstance(node, ast.ExceptHandler):
            if node.name:
                scope.assigned.add(node.name)
        elif isinstance(node, ast.comprehension):
            self._bind_target(scope, node.target, None)

    def _bind_target(
        self, scope: _Scope, target: ast.AST, value: Optional[ast.AST]
    ) -> None:
        if isinstance(target, ast.Name):
            scope.assigned.add(target.id)
            inferred = self.infer(value) if value is not None else None
            self._bind_type(scope, target.id, inferred)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(scope, element, None)
        elif isinstance(target, ast.Starred):
            self._bind_target(scope, target.value, None)

    def _bind_type(
        self, scope: _Scope, name: str, inferred: Optional[str]
    ) -> None:
        if name in scope.types and scope.types[name] != inferred:
            scope.types[name] = None  # conflicting rebinds: unknown
        else:
            scope.types[name] = inferred

    def _annotation_type(self, node: Optional[ast.AST]) -> Optional[str]:
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return _ANNOTATION_TYPES.get(node.id)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                return self._annotation_type(
                    ast.parse(node.value, mode="eval").body
                )
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in _TRANSPARENT_WRAPPERS
            ):
                inner = node.slice
                if isinstance(inner, ast.Tuple) and inner.elts:
                    inner = inner.elts[0]
                return self._annotation_type(inner)
            return self._annotation_type(node.value)
        return None

    def _scope_for(self, node: ast.AST) -> _Scope:
        current: Optional[ast.AST] = node
        while current is not None:
            scope = self._scope_of.get(id(current))
            if scope is not None:
                return scope
            current = self.parent(current)
        return self._module_scope

    def _lookup(self, node: ast.AST, name: str):
        """``("import", origin)`` / ``("var", type)`` / ``None``.

        Walks the enclosing scopes like the interpreter would; class
        bodies are skipped unless the name is used directly in one.
        """
        scope: Optional[_Scope] = self._scope_for(node)
        first = True
        while scope is not None:
            skip = isinstance(scope.node, ast.ClassDef) and not first
            if not skip:
                if name in scope.imports:
                    return ("import", scope.imports[name])
                if name in scope.assigned or name in scope.types:
                    return ("var", scope.types.get(name))
            first = False
            scope = scope.parent
        return None

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted origin of a name/attribute expression.

        ``ri`` after ``from random import randint as ri`` resolves to
        ``"random.randint"``; an unshadowed builtin name resolves to
        ``"builtins.<name>"``; anything locally rebound is ``None``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        binding = self._lookup(node, node.id)
        if binding is None:
            if node.id in _BUILTIN_NAMES:
                base = f"builtins.{node.id}"
            else:
                return None
        elif binding[0] == "import":
            base = binding[1]
        else:
            return None
        return ".".join([base] + list(reversed(parts)))

    def infer(self, node: Optional[ast.AST]) -> Optional[str]:
        """Cheap static type: ``"str"``/``"bytes"``/``"set"``/``"dict"``,
        or ``"tuple[str]"`` for a tuple literal with a provably textual
        element (tuple hashes mix the element hashes, so one salted
        element salts the whole tuple).

        ``None`` means unknown — rules must treat unknown as innocent.
        """
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                return "str"
            if isinstance(node.value, bytes):
                return "bytes"
            return None
        if isinstance(node, ast.JoinedStr):
            return "str"
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(node, ast.Tuple):
            if any(
                self.infer(element) in ("str", "bytes", "tuple[str]")
                for element in node.elts
            ):
                return "tuple[str]"
            return None
        if isinstance(node, ast.Name):
            binding = self._lookup(node, node.id)
            if binding is not None and binding[0] == "var":
                return binding[1]
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            left = self.infer(node.left)
            if left in ("str", "bytes"):
                return left
            return None
        if isinstance(node, ast.Call):
            origin = self.resolve(node.func)
            if origin in ("builtins.set", "builtins.frozenset"):
                return "set"
            if origin == "builtins.dict":
                return "dict"
            if origin in ("builtins.str", "builtins.repr", "builtins.format"):
                return "str"
            if origin == "builtins.bytes":
                return "bytes"
            if isinstance(node.func, ast.Attribute):
                if node.func.attr == "encode":
                    return "bytes"
                if node.func.attr in _STR_METHODS:
                    receiver = self.infer(node.func.value)
                    if node.func.attr == "decode":
                        return "str" if receiver == "bytes" else None
                    if receiver == "str":
                        return "str"
            return None
        return None

    # -- pragmas ------------------------------------------------------------

    def _parse_pragmas(self) -> None:
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(self.source).readline)
            )
        except tokenize.TokenError:
            return
        code_lines = set()
        for token in tokens:
            if token.type in (
                tokenize.COMMENT,
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
            ):
                continue
            for row in range(token.start[0], token.end[0] + 1):
                code_lines.add(row)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            head = _PRAGMA_HEAD.match(token.string)
            if head is None:
                continue
            line = token.start[0]
            snippet = self.lines[line - 1].strip()
            body = head.group(1).strip()
            allow = _PRAGMA_ALLOW.match(body)
            if allow is None:
                self.pragma_issues.append(
                    PragmaIssue(
                        line,
                        "malformed pragma (expected "
                        "'# lint: allow[RULE-ID] -- justification')",
                        snippet,
                    )
                )
                continue
            rules = tuple(
                part.strip() for part in allow.group(1).split(",")
            )
            justification = (allow.group(2) or "").strip()
            if not justification:
                self.pragma_issues.append(
                    PragmaIssue(
                        line,
                        "pragma without a justification (append "
                        "'-- <why this is safe>')",
                        snippet,
                    )
                )
                continue
            self.pragmas[line] = Pragma(
                line=line,
                rules=rules,
                justification=justification,
                own_line=line not in code_lines,
            )

    def pragma_for(self, line: int, rule: str) -> Optional[Pragma]:
        """The pragma suppressing ``rule`` at ``line``, if any.

        A trailing pragma covers its own line; a comment-only pragma
        line covers the line directly below it.
        """
        pragma = self.pragmas.get(line)
        if pragma is not None and not pragma.own_line and rule in pragma.rules:
            return pragma
        above = self.pragmas.get(line - 1)
        if above is not None and above.own_line and rule in above.rules:
            return above
        return None

    # -- findings -----------------------------------------------------------

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        snippet = ""
        if 1 <= line <= len(self.lines):
            snippet = self.lines[line - 1].strip()
        return Finding(
            rule=rule,
            path=self.rel,
            line=line,
            col=col,
            message=message,
            snippet=snippet,
        )


class Rule:
    """Base class: subclasses set ``id``/``title`` and implement
    :meth:`check` yielding findings for one module."""

    id: str = "RULE000"
    title: str = ""
    #: One-paragraph rationale, surfaced by ``--list-rules``.
    rationale: str = ""

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def applies_to(self, ctx: ModuleContext) -> bool:
        return True


class ProgramContext:
    """Everything a whole-program rule may ask about the run: the
    project index, the call graph, and lazily parsed per-file
    contexts (program rules that need live ASTs — CON001's send-site
    typing — re-parse only the few files they inspect)."""

    def __init__(self, root: Path, files, index, graph) -> None:
        self.root = root
        #: sorted ``(path, rel)`` pairs for every linted file
        self.files = list(files)
        self.index = index
        self.graph = graph
        self._by_rel = {rel: path for path, rel in self.files}
        self._contexts: Dict[str, ModuleContext] = {}
        self._lines: Dict[str, List[str]] = {}
        self._taint: Optional[List[dict]] = None

    def context(self, rel: str) -> Optional[ModuleContext]:
        if rel in self._contexts:
            return self._contexts[rel]
        path = self._by_rel.get(rel)
        if path is None:
            return None
        ctx = ModuleContext(
            path, rel, path.read_text(encoding="utf-8")
        )
        self._contexts[rel] = ctx
        return ctx

    def taint_findings(self) -> List[dict]:
        """The DET1xx payloads, computed once per run (each DET1xx
        rule filters this shared result for its own id)."""
        if self._taint is None:
            from .semantic import taint_findings

            self._taint = taint_findings(self.graph)
        return self._taint

    def finding(
        self, rule: str, rel: str, line: int, message: str
    ) -> Finding:
        lines = self._lines.get(rel)
        if lines is None:
            path = self._by_rel.get(rel)
            lines = (
                path.read_text(encoding="utf-8").splitlines()
                if path is not None
                else []
            )
            self._lines[rel] = lines
        snippet = ""
        if 1 <= line <= len(lines):
            snippet = lines[line - 1].strip()
        return Finding(
            rule=rule,
            path=rel,
            line=line,
            col=1,
            message=message,
            snippet=snippet,
        )


class ProgramRule(Rule):
    """A rule that runs once over the whole program instead of once
    per file.  Findings still anchor at a concrete file/line, so the
    pragma and baseline machinery apply unchanged."""

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        return ()

    def check_program(self, program: ProgramContext) -> Iterable[Finding]:
        raise NotImplementedError


#: Directory names never descended into: generated trees whose .py
#: files are copies (egg-info, build outputs) or not ours (hidden
#: trees like .git/.venv, caches).
_EXCLUDED_DIR_NAMES = frozenset({"build", "dist", "__pycache__"})


def _excluded_dir(name: str) -> bool:
    return (
        name.startswith(".")
        or name in _EXCLUDED_DIR_NAMES
        or name.endswith(".egg-info")
    )


def _walk_python(directory: Path):
    for child in sorted(directory.iterdir()):
        if child.is_dir():
            if not _excluded_dir(child.name):
                yield from _walk_python(child)
        elif child.suffix == ".py":
            yield child


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` under the given files/directories, sorted.

    Hidden directories, ``build``/``dist``/``__pycache__``, and
    ``*.egg-info`` trees are pruned (their .py files are generated
    copies — linting ``src/repro.egg-info/`` would double-report
    every finding).  Explicitly named files are never filtered.
    """
    found = []
    for path in paths:
        if path.is_dir():
            found.extend(_walk_python(path))
        elif path.suffix == ".py":
            found.append(path)
    return sorted(set(found))


@dataclass
class LintReport:
    """The outcome of one engine run (before baseline filtering)."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Tuple[Finding, Pragma]] = field(default_factory=list)
    files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


def _file_phase(path: Path, rel: str, rules: Sequence[Rule]) -> dict:
    """The cacheable per-file phase: per-file rule findings (pragma
    suppression already applied), the pragma inventory, and the
    semantic summary the program passes consume.  Everything in the
    returned payload is plain JSON data, so the content-sha cache and
    the ``--jobs`` worker pool both speak it natively."""
    from .semantic import summarize_module

    try:
        ctx = ModuleContext(
            path, rel, path.read_text(encoding="utf-8")
        )
    except LintError as error:
        return {"error": str(error)}
    findings: List[dict] = []
    suppressed: List[list] = []
    for rule in rules:
        if isinstance(rule, ProgramRule):
            continue
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            pragma = ctx.pragma_for(finding.line, finding.rule)
            if pragma is not None:
                pragma.used = True
                suppressed.append([finding.to_payload(), pragma.line])
            else:
                findings.append(finding.to_payload())
    return {
        "error": None,
        "findings": findings,
        "suppressed": suppressed,
        "pragmas": [
            {
                "line": line,
                "rules": list(ctx.pragmas[line].rules),
                "justification": ctx.pragmas[line].justification,
                "own_line": ctx.pragmas[line].own_line,
                "used": ctx.pragmas[line].used,
                "snippet": ctx.lines[line - 1].strip(),
            }
            for line in sorted(ctx.pragmas)
        ],
        "pragma_issues": [
            {
                "line": issue.line,
                "message": issue.message,
                "snippet": issue.snippet,
            }
            for issue in ctx.pragma_issues
        ],
        "summary": summarize_module(ctx).to_payload(),
    }


def _file_phase_worker(task) -> Tuple[str, dict]:
    """``--jobs`` pool entry: rebuilds the rule pack from ids (rule
    objects never cross the process boundary)."""
    path_str, rel, rule_ids = task
    from .rules import rules_by_id

    return rel, _file_phase(Path(path_str), rel, rules_by_id(*rule_ids))


class _PragmaState:
    """Runtime pragma bookkeeping for one run: per-file inventories
    from the (possibly cached) payloads, with ``used`` flags that
    program-rule suppression updates before the LINT000 stale check.
    Kept outside the cache payloads so a cached entry never bakes in
    whether some *other* file's taint finding used its pragma."""

    def __init__(self) -> None:
        #: rel -> line -> mutable pragma record
        self.by_file: Dict[str, Dict[int, dict]] = {}
        self.issues: Dict[str, List[dict]] = {}

    def load(self, rel: str, payload: dict) -> None:
        # Copies, not references: program-phase ``used`` marking must
        # never leak back into a cached payload.
        self.by_file[rel] = {
            record["line"]: dict(record)
            for record in payload["pragmas"]
        }
        self.issues[rel] = payload["pragma_issues"]

    def suppressor(
        self, rel: str, line: int, rule: str
    ) -> Optional[dict]:
        """Mirror of :meth:`ModuleContext.pragma_for` over the
        inventory; marks the pragma used."""
        records = self.by_file.get(rel, {})
        record = records.get(line)
        if (
            record is not None
            and not record["own_line"]
            and rule in record["rules"]
        ):
            record["used"] = True
            return record
        above = records.get(line - 1)
        if (
            above is not None
            and above["own_line"]
            and rule in above["rules"]
        ):
            above["used"] = True
            return above
        return None

    def pragma(self, record: dict) -> Pragma:
        return Pragma(
            line=record["line"],
            rules=tuple(record["rules"]),
            justification=record["justification"],
            own_line=record["own_line"],
            used=record["used"],
        )


class LintEngine:
    """Runs the rule pack over a source tree.

    Per-file rules run in a cacheable (and optionally parallel)
    per-file phase; :class:`ProgramRule` passes then run once over
    the assembled project index and call graph.  The last run's
    :class:`ProgramContext` stays on ``self.last_program`` for the
    CLI's ``--graph`` dump.
    """

    def __init__(
        self,
        root: Path,
        rules: Optional[Sequence[Rule]] = None,
    ) -> None:
        from .rules import all_rules

        registry = all_rules()
        if rules is None:
            rules = registry
        self.root = Path(root)
        self.rules = list(rules)
        self.enabled_ids = frozenset(rule.id for rule in self.rules)
        # Pragmas may name any registered rule even when this run only
        # enables a subset (the determinism-audit wrapper does), so the
        # unknown-id check uses the full registry.
        self.known_ids = self.enabled_ids | frozenset(
            rule.id for rule in registry
        )
        self._registry_types = frozenset(
            type(rule) for rule in registry
        )
        self.last_program: Optional[ProgramContext] = None

    def _rel_for(self, path: Path) -> str:
        try:
            rel = path.resolve().relative_to(self.root.resolve())
        except ValueError:
            rel = path
        return rel.as_posix()

    def context_for(self, path: Path) -> ModuleContext:
        return ModuleContext(
            path,
            self._rel_for(path),
            path.read_text(encoding="utf-8"),
        )

    def _cache_version(self) -> str:
        from .semantic import ANALYZER_VERSION

        return f"{ANALYZER_VERSION}:" + ",".join(sorted(self.enabled_ids))

    def lint_file(self, path: Path) -> LintReport:
        """Single-file compatibility entry: per-file rules plus the
        pragma audit, no whole-program passes."""
        rel = self._rel_for(path)
        payload = _file_phase(path, rel, self.rules)
        if payload.get("error"):
            raise LintError(payload["error"])
        pragmas = _PragmaState()
        pragmas.load(rel, payload)
        report = LintReport(files=1)
        self._collect_file(report, rel, payload, pragmas)
        report.findings.extend(self._pragma_findings(rel, pragmas))
        report.findings.sort(key=Finding.sort_key)
        return report

    def _collect_file(
        self,
        report: LintReport,
        rel: str,
        payload: dict,
        pragmas: _PragmaState,
    ) -> None:
        for finding_payload in payload["findings"]:
            report.findings.append(Finding(**finding_payload))
        for finding_payload, pragma_line in payload["suppressed"]:
            record = pragmas.by_file[rel].get(pragma_line)
            if record is None:
                continue
            report.suppressed.append(
                (Finding(**finding_payload), pragmas.pragma(record))
            )

    def _pragma_findings(
        self, rel: str, pragmas: _PragmaState
    ) -> List[Finding]:
        """LINT000: malformed, unknown-id, and stale pragmas — run
        after program suppression so a pragma whose only job is
        silencing an interprocedural finding is not "stale"."""
        findings = []
        for issue in pragmas.issues.get(rel, []):
            findings.append(
                Finding(
                    rule="LINT000",
                    path=rel,
                    line=issue["line"],
                    col=1,
                    message=issue["message"],
                    snippet=issue["snippet"],
                )
            )
        records = pragmas.by_file.get(rel, {})
        for line in sorted(records):
            record = records[line]
            unknown = sorted(set(record["rules"]) - self.known_ids)
            if unknown:
                findings.append(
                    Finding(
                        rule="LINT000",
                        path=rel,
                        line=line,
                        col=1,
                        message=(
                            "pragma names unknown rule id(s): "
                            + ", ".join(unknown)
                        ),
                        snippet=record["snippet"],
                    )
                )
            elif (
                not record["used"]
                and set(record["rules"]) <= self.enabled_ids
            ):
                findings.append(
                    Finding(
                        rule="LINT000",
                        path=rel,
                        line=line,
                        col=1,
                        message=(
                            "stale pragma: suppresses nothing on this "
                            "line — remove it (dead grants hide real "
                            "regressions)"
                        ),
                        snippet=record["snippet"],
                    )
                )
        return findings

    def _run_file_phase(
        self,
        misses: List[Tuple[Path, str]],
        jobs: int,
    ) -> Dict[str, dict]:
        """Analyze cache misses, in-process or via a worker pool."""
        payloads: Dict[str, dict] = {}
        parallel = (
            jobs > 1
            and len(misses) > 1
            and all(type(rule) in self._registry_types for rule in self.rules)
        )
        if parallel:
            import multiprocessing

            rule_ids = sorted(self.enabled_ids)
            tasks = [
                (str(path), rel, rule_ids) for path, rel in misses
            ]
            with multiprocessing.Pool(processes=jobs) as pool:
                for rel, payload in pool.imap_unordered(
                    _file_phase_worker, tasks
                ):
                    payloads[rel] = payload
        else:
            for path, rel in misses:
                payloads[rel] = _file_phase(path, rel, self.rules)
        for rel in sorted(payloads):
            if payloads[rel].get("error"):
                raise LintError(payloads[rel]["error"])
        return payloads

    def lint_paths(
        self,
        paths: Sequence[Path],
        jobs: int = 1,
        cache_path: Optional[Path] = None,
    ) -> LintReport:
        from .semantic import (
            ModuleSummary,
            ProjectIndex,
            ResultCache,
            build_callgraph,
            content_sha,
        )

        files = [
            (path, self._rel_for(path))
            for path in iter_python_files(paths)
        ]
        cache = ResultCache(cache_path, self._cache_version())
        report = LintReport(files=len(files))
        payloads: Dict[str, dict] = {}
        misses: List[Tuple[Path, str]] = []
        shas: Dict[str, str] = {}
        for path, rel in files:
            sha = content_sha(path.read_bytes())
            shas[rel] = sha
            hit = cache.get(rel, sha)
            if hit is not None:
                payloads[rel] = hit
                report.cache_hits += 1
            else:
                misses.append((path, rel))
        report.cache_misses = len(misses)
        fresh = self._run_file_phase(misses, jobs)
        for rel in sorted(fresh):
            payloads[rel] = fresh[rel]
            cache.put(rel, shas[rel], fresh[rel])
        cache.save(keep=sorted(payloads))

        pragmas = _PragmaState()
        for rel in sorted(payloads):
            pragmas.load(rel, payloads[rel])
            self._collect_file(report, rel, payloads[rel], pragmas)

        # Whole-program phase over the summaries (cached files
        # contribute without a re-parse).
        program = None
        if files:
            index = ProjectIndex(
                [
                    ModuleSummary.from_payload(payloads[rel]["summary"])
                    for rel in sorted(payloads)
                ]
            )
            program = ProgramContext(
                self.root, files, index, build_callgraph(index)
            )
        self.last_program = program
        if program is not None:
            for rule in self.rules:
                if not isinstance(rule, ProgramRule):
                    continue
                for finding in rule.check_program(program):
                    record = pragmas.suppressor(
                        finding.path, finding.line, finding.rule
                    )
                    if record is not None:
                        report.suppressed.append(
                            (finding, pragmas.pragma(record))
                        )
                    else:
                        report.findings.append(finding)

        for rel in sorted(payloads):
            report.findings.extend(self._pragma_findings(rel, pragmas))
        report.findings.sort(key=Finding.sort_key)
        return report
