"""Baseline files: grandfathered findings, tracked as a multiset.

A baseline lets the linter land as a hard gate while old findings are
paid down incrementally: findings recorded in the committed baseline
do not fail the run, *new* ones do.  Entries match on
``(rule, path, snippet)`` rather than line numbers, so unrelated edits
above a grandfathered line do not resurrect it.

This repo's policy (see ``docs/LINTING.md``) is an **empty** baseline:
everything the initial rules surfaced was either fixed or carries a
justified pragma.  The machinery stays because the next rule someone
adds will surface debt that cannot all be fixed in one PR.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, List, Tuple

from .engine import Finding

__all__ = ["load_baseline", "write_baseline", "apply_baseline"]

SCHEMA_VERSION = 1


def load_baseline(path: Path) -> Counter:
    """The baseline as a multiset of finding keys (missing file =
    empty baseline)."""
    if not path.exists():
        return Counter()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline schema "
            f"{payload.get('schema')!r} (expected {SCHEMA_VERSION})"
        )
    baseline: Counter = Counter()
    for entry in payload.get("findings", []):
        baseline[(entry["rule"], entry["path"], entry["snippet"])] += 1
    return baseline


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Persist ``findings`` as the new baseline (sorted, canonical)."""
    entries = [
        {
            "rule": finding.rule,
            "path": finding.path,
            "snippet": finding.snippet,
        }
        for finding in findings
    ]
    entries.sort(
        key=lambda entry: (entry["path"], entry["rule"], entry["snippet"])
    )
    payload = {"schema": SCHEMA_VERSION, "findings": entries}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def apply_baseline(
    findings: Iterable[Finding], baseline: Counter
) -> Tuple[List[Finding], int]:
    """Split findings into (new, grandfathered-count).

    Each baseline entry absorbs at most its recorded multiplicity, so
    a second copy of a grandfathered violation still fails the run.
    """
    remaining = Counter(baseline)
    new: List[Finding] = []
    matched = 0
    for finding in findings:
        key = finding.key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            matched += 1
        else:
            new.append(finding)
    return new, matched
