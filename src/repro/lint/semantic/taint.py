"""Interprocedural determinism taint: impure facts, propagated to a
fixed point over the call graph.

The per-file determinism rules (DET001–DET004) flag an impure
*call site*; this pass answers the question they cannot: **can a
digest reach it?**  The repo's digests — ``state_digest``,
``detection_digest``, ``partition_digest``, ``combined_digest``, and
the golden-corpus builders — are the bit-stability contract; any
wall-clock read, global-RNG draw, environment read, unsorted
iteration, or salted ``hash`` transitively reachable from one is a
latent nondeterminism that no per-file rule and no lucky fuzz seed is
guaranteed to catch.

Two passes over the graph:

- :func:`propagate` — a backward worklist: a function is tainted by
  the impure facts of everything it can call, iterated to a fixed
  point (recursive and mutually recursive chains converge because the
  lattice — sets of rule ids — is finite and monotone);
- :func:`taint_findings` — forward BFS from the digest entry points;
  every reachable function's *direct* impure site becomes a finding
  anchored at that source line, carrying the full entry→source call
  chain in the message.

Anchoring at the source site (not the digest) is what makes the
existing pragma machinery compose: a ``# lint: allow[DET102] -- ...``
on the offending line is a reviewable claim about that line, and a
per-file ``DET002`` pragma does *not* silence the interprocedural
finding — reachability from a digest is exactly the evidence that
such a pragma's "display-only" justification needs re-review.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional

from ..engine import ModuleContext
from .callgraph import CallGraph

__all__ = [
    "ENTRY_NAMES",
    "TAINT_RULES",
    "direct_impure_sites",
    "entry_points",
    "propagate",
    "taint_findings",
]

#: Bare function names treated as determinism-critical roots.  Digest
#: methods across tiers share these names by repo convention; the
#: golden-corpus builders are the other place a stray clock read
#: becomes a corrupted frozen artifact.
ENTRY_NAMES = frozenset(
    {
        "state_digest",
        "detection_digest",
        "partition_digest",
        "combined_digest",
        "route_state_digest",
        "build_golden",
        "write_golden",
    }
)

#: Interprocedural rule id -> (per-file counterpart, human label).
TAINT_RULES = {
    "DET101": ("DET001", "global RNG draw"),
    "DET102": ("DET002", "wall-clock read"),
    "DET103": ("DET003", "unsorted iteration"),
    "DET104": ("DET004", "salted hash()"),
    "DET105": (None, "environment read"),
}

_PER_FILE_TO_TAINT = {
    "DET001": "DET101",
    "DET002": "DET102",
    "DET003": "DET103",
    "DET004": "DET104",
}

#: ``os.environ`` / ``os.getenv`` origins (DET105 has no per-file
#: counterpart: environment reads are legitimate in CLI glue, so only
#: reachability from a digest makes one a finding).
_ENV_ORIGINS = frozenset(
    {"os.environ", "os.getenv", "os.environb", "os.getenvb"}
)


def direct_impure_sites(ctx: ModuleContext) -> List[dict]:
    """Every impure site in one file, as taint sources.

    Re-runs the per-file determinism rules (so per-file and
    interprocedural semantics can never drift apart) — *ignoring*
    per-file pragmas, which suppress the local finding but not the
    fact — and adds the environment-read scan.
    """
    from ..rules.det001_global_random import GlobalRandomRule
    from ..rules.det002_wall_clock import WallClockRule
    from ..rules.det003_unsorted_iter import UnsortedIterationRule
    from ..rules.det004_builtin_hash import BuiltinHashRule

    sites: List[dict] = []
    for rule in (
        GlobalRandomRule(),
        WallClockRule(),
        UnsortedIterationRule(),
        BuiltinHashRule(),
    ):
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            sites.append(
                {
                    "line": finding.line,
                    "rule": _PER_FILE_TO_TAINT[finding.rule],
                    "what": finding.message,
                }
            )
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Attribute, ast.Name)):
            continue
        origin = ctx.resolve(node)
        if origin in _ENV_ORIGINS:
            parent = ctx.parent(node)
            if (
                isinstance(parent, ast.Attribute)
                and ctx.resolve(parent) in _ENV_ORIGINS
            ):
                continue  # counted once, at the outermost origin
            sites.append(
                {
                    "line": node.lineno,
                    "rule": "DET105",
                    "what": (
                        f"reads the process environment ({origin}) — "
                        "host-dependent state"
                    ),
                }
            )
    sites.sort(key=lambda site: (site["line"], site["rule"]))
    return sites


def entry_points(graph: CallGraph) -> List[str]:
    """Every graph node whose bare name is a digest entry name."""
    return sorted(
        fqn
        for fqn, info in graph.nodes.items()
        if info["name"] in ENTRY_NAMES
    )


def propagate(graph: CallGraph) -> Dict[str, FrozenSet[str]]:
    """Transitive taint per function: the backward fixed point.

    Each function's taint set is its own direct impure rules unioned
    with the taint sets of everything it calls; iterate until nothing
    changes.  Converges on arbitrary (including cyclic) graphs: the
    per-node sets only grow and are bounded by the finite rule set.
    """
    taints: Dict[str, set] = {
        fqn: {site["rule"] for site in info["impure"]}
        for fqn, info in graph.nodes.items()
    }
    callers: Dict[str, List[str]] = {}
    successors: Dict[str, List[str]] = {}
    for src, dst, _line, _kind in graph.edges:
        callers.setdefault(dst, []).append(src)
        successors.setdefault(src, []).append(dst)
    worklist = sorted(fqn for fqn, rules in taints.items() if rules)
    pending = set(worklist)
    while worklist:
        current = worklist.pop()
        pending.discard(current)
        facts = taints[current]
        for caller in callers.get(current, ()):
            before = len(taints[caller])
            taints[caller] |= facts
            if len(taints[caller]) != before and caller not in pending:
                worklist.append(caller)
                pending.add(caller)
    return {fqn: frozenset(rules) for fqn, rules in taints.items()}


def taint_findings(
    graph: CallGraph, only: Optional[Iterable[str]] = None
) -> List[dict]:
    """DET1xx finding payloads: ``{"rule", "path", "line", "message"}``.

    One finding per (rule, source path, source line), anchored at the
    impure site so pragmas land where the hazard lives; the message
    carries the full entry-to-source call chain.
    """
    entries = entry_points(graph)
    if not entries:
        return []
    wanted = frozenset(only) if only is not None else None
    parents = graph.reachable_from(entries)
    found: Dict[tuple, dict] = {}
    for fqn in sorted(parents):
        info = graph.nodes[fqn]
        for site in info["impure"]:
            rule = site["rule"]
            if wanted is not None and rule not in wanted:
                continue
            key = (rule, info["path"], site["line"])
            if key in found:
                continue
            chain = CallGraph.chain(parents, fqn)
            label = TAINT_RULES[rule][1]
            found[key] = {
                "rule": rule,
                "path": info["path"],
                "line": site["line"],
                "message": (
                    f"{label} reachable from digest entry point "
                    f"{chain[0]} via call chain: "
                    + " -> ".join(chain)
                    + f"; {site['what']} — determinism-critical "
                    "paths must stay pure (fix the source, or "
                    f"pragma allow[{rule}] on this line only if "
                    "the value provably never enters a digest)"
                ),
            }
    return [found[key] for key in sorted(found)]
