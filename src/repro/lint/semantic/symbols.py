"""Project-wide symbol table: per-module semantic summaries.

The whole-program passes (call-graph taint, process-boundary
contracts, Protocol conformance) need facts no single
:class:`~repro.lint.engine.ModuleContext` can provide: what a dotted
name means *in another module*, which class a method lives on, which
classes structurally implement a Protocol.  This module extracts a
JSON-serializable :class:`ModuleSummary` per file — functions with
their call sites, local type bindings, impure sites, classes with
bases/fields/methods, resolved import aliases (including relative
imports, which the per-file rules ignore) — and assembles them into a
:class:`ProjectIndex` that resolves references *across* modules,
following re-export chains through package ``__init__`` files.

Summaries are deliberately flat dictionaries: they are what the
engine's content-sha cache persists, so an unchanged file contributes
to whole-program analysis without being re-parsed.

Type descriptors — the small language local bindings and annotations
are lowered into (``{"k": ...}`` dicts so they serialize):

- ``ref``      a name resolved through imports to a dotted path
- ``builtin``  a builtin scalar/container name (``str``, ``dict``...)
- ``sub``      a subscripted annotation (``Dict[int, Router]``)
- ``tuple``    a tuple-of-types annotation element
- ``call_of``  "instance of class F / return value of function F"
- ``item_of``  element ``i`` of ``call_of``'s tuple result
- ``attr_of``  attribute ``a`` of a value of some other descriptor
- ``elem_of``  an element drawn out of a container descriptor
- ``?``        unknown (rules must treat unknown as innocent)
"""

from __future__ import annotations

import ast
import builtins as _builtins
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine import ModuleContext

__all__ = [
    "ANALYZER_VERSION",
    "ModuleSummary",
    "ProjectIndex",
    "module_name_for",
    "summarize_module",
    "unit_typer",
    "UNKNOWN",
]

#: Bumped whenever summary extraction changes shape or meaning; part
#: of the cache version token, so stale summaries never feed a run.
ANALYZER_VERSION = 1

UNKNOWN = {"k": "?"}

#: Names treated as registries of boundary-crossing types (CON001).
_REGISTRY_NAMES = frozenset({"TRANSFERABLE_TYPES"})

_BUILTIN_TYPES = frozenset(
    {
        "str", "bytes", "int", "float", "bool", "complex", "None",
        "dict", "list", "tuple", "set", "frozenset", "object",
    }
)

#: Annotation wrappers that do not change the transferable/base type.
_TRANSPARENT = frozenset({"Optional", "Final", "Annotated", "ClassVar"})


def module_name_for(rel: str) -> str:
    """Dotted module name for a lint-relative posix path.

    ``src/repro/sim/engine.py`` -> ``repro.sim.engine`` (a leading
    ``src/`` layout directory is stripped); ``repro/campaign/__init__.py``
    -> ``repro.campaign``.
    """
    parts = list(rel.split("/"))
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[:-3]
    if leaf == "__init__":
        parts = parts[:-1]
    else:
        parts[-1] = leaf
    return ".".join(part for part in parts if part)


def _is_package_init(rel: str) -> bool:
    return rel.endswith("__init__.py")


class _AliasCollector(ast.NodeVisitor):
    """Every import alias in the file, resolved to an absolute dotted
    origin (relative imports are resolved against the module's own
    dotted name).  Function-level imports are merged into one map —
    the lazy-import idiom means they matter, and a collision between
    two scopes' aliases is vanishingly rare in practice."""

    def __init__(self, module: str, is_init: bool) -> None:
        self.module = module
        self.is_init = is_init
        self.aliases: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".", 1)[0]
            origin = alias.name if alias.asname else local
            self.aliases[local] = origin

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self._base_for(node)
        if base is None:
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.aliases[local] = f"{base}.{alias.name}" if base else (
                alias.name
            )

    def _base_for(self, node: ast.ImportFrom) -> Optional[str]:
        if not node.level:
            return node.module or ""
        # Level 1 is "this package": the module itself for a package
        # __init__, the containing package for a plain module.  Each
        # further level ascends one package.
        package = self.module.split(".") if self.module else []
        if not self.is_init and package:
            package = package[:-1]
        ascend = node.level - 1
        if ascend > len(package):
            return None
        if ascend:
            package = package[: len(package) - ascend]
        if node.module:
            package = package + node.module.split(".")
        return ".".join(package)


def _annotation_descriptor(
    node: Optional[ast.AST], resolve_name
) -> dict:
    """Lower an annotation expression to a type descriptor."""
    if node is None:
        return UNKNOWN
    if isinstance(node, ast.Constant):
        if node.value is None:
            return {"k": "builtin", "n": "None"}
        if isinstance(node.value, str):
            try:
                inner = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return UNKNOWN
            return _annotation_descriptor(inner, resolve_name)
        return UNKNOWN
    if isinstance(node, ast.Name):
        if node.id in _BUILTIN_TYPES:
            return {"k": "builtin", "n": node.id}
        dotted = resolve_name(node.id)
        if dotted is None:
            return UNKNOWN
        return {"k": "ref", "n": dotted}
    if isinstance(node, ast.Attribute):
        parts: List[str] = []
        current: ast.AST = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return UNKNOWN
        dotted = resolve_name(current.id)
        if dotted is None:
            return UNKNOWN
        return {"k": "ref", "n": ".".join([dotted] + list(reversed(parts)))}
    if isinstance(node, ast.Subscript):
        base = node.value
        name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else ""
        )
        inner = node.slice
        args = list(inner.elts) if isinstance(inner, ast.Tuple) else [inner]
        if name in _TRANSPARENT:
            return _annotation_descriptor(args[0], resolve_name)
        lowered = [
            _annotation_descriptor(arg, resolve_name) for arg in args
        ]
        base_desc = _annotation_descriptor(base, resolve_name)
        return {"k": "sub", "base": base_desc, "args": lowered}
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # PEP 604 unions: keep the first non-None arm (Optional-style).
        left = _annotation_descriptor(node.left, resolve_name)
        if left.get("n") != "None":
            return left
        return _annotation_descriptor(node.right, resolve_name)
    if isinstance(node, ast.Tuple):
        return {
            "k": "tuple",
            "items": [
                _annotation_descriptor(e, resolve_name) for e in node.elts
            ],
        }
    return UNKNOWN


class _UnitExtractor:
    """Calls, function references, and local type bindings for one
    function unit (a module-level def or a method; nested defs and
    lambdas fold into their enclosing unit — a closure's hazards are
    the enclosing function's hazards)."""

    def __init__(
        self,
        summarizer: "_Summarizer",
        func: ast.AST,
        cls: Optional[str],
    ) -> None:
        self.s = summarizer
        self.func = func
        self.cls = cls
        self.bindings: Dict[str, dict] = {}
        self.calls: List[dict] = []
        self._call_funcs: set = set()

    def extract(self) -> None:
        self._bind_params()
        for node in self._walk_unit(self.func):
            if isinstance(node, ast.Call):
                self._record_call(node)
            elif isinstance(node, ast.Assign):
                self._record_assign(node)
            elif isinstance(node, ast.AnnAssign):
                self._record_annassign(node)
        for node in self._walk_unit(self.func):
            if isinstance(node, (ast.Name, ast.Attribute)):
                self._record_ref(node)

    # -- structure ----------------------------------------------------------

    def _walk_unit(self, root: ast.AST):
        """Pre-order walk of the unit's body in source order (a binding
        must be recorded before the statements that use it are typed),
        without descending into nested class definitions (their methods
        are separate units)."""
        stack = list(ast.iter_child_nodes(root))
        stack.reverse()
        while stack:
            node = stack.pop()
            if isinstance(node, ast.ClassDef):
                continue
            yield node
            children = list(ast.iter_child_nodes(node))
            children.reverse()
            stack.extend(children)

    # -- bindings -----------------------------------------------------------

    def _bind_params(self) -> None:
        args = self.func.args
        params = list(args.posonlyargs) + list(args.args)
        params += list(args.kwonlyargs)
        first = params[0].arg if params else None
        for param in params:
            desc = _annotation_descriptor(
                param.annotation, self.s.resolve_name
            )
            self.bindings[param.arg] = desc
        if self.cls is not None and first in ("self", "cls"):
            self.bindings[first] = {
                "k": "ref",
                "n": f"{self.s.module}.{self.cls}",
            }

    def _bind(self, name: str, desc: dict) -> None:
        if name in self.bindings and self.bindings[name] != desc:
            self.bindings[name] = dict(UNKNOWN)
        else:
            self.bindings[name] = desc

    def _record_assign(self, node: ast.Assign) -> None:
        desc = self.expr_type(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._bind(target.id, desc)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for index, element in enumerate(target.elts):
                    if not isinstance(element, ast.Name):
                        continue
                    if desc.get("k") == "call_of":
                        self._bind(
                            element.id,
                            {"k": "item_of", "f": desc["f"], "i": index},
                        )
                    else:
                        self._bind(element.id, dict(UNKNOWN))

    def _record_annassign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            desc = _annotation_descriptor(
                node.annotation, self.s.resolve_name
            )
            self._bind(node.target.id, desc)

    # -- expression typing --------------------------------------------------

    def expr_type(self, node: Optional[ast.AST]) -> dict:
        if node is None:
            return dict(UNKNOWN)
        if isinstance(node, ast.Constant):
            value = node.value
            if value is None:
                return {"k": "builtin", "n": "None"}
            name = type(value).__name__
            if name in _BUILTIN_TYPES:
                return {"k": "builtin", "n": name}
            return dict(UNKNOWN)
        if isinstance(node, ast.JoinedStr):
            return {"k": "builtin", "n": "str"}
        if isinstance(node, ast.Tuple):
            return {
                "k": "tuple",
                "items": [self.expr_type(e) for e in node.elts],
            }
        if isinstance(node, (ast.List, ast.Set)):
            base = "list" if isinstance(node, ast.List) else "set"
            return {
                "k": "sub",
                "base": {"k": "builtin", "n": base},
                "args": [self.expr_type(e) for e in node.elts],
            }
        if isinstance(node, ast.Name):
            bound = self.bindings.get(node.id)
            if bound is not None:
                return dict(bound)
            dotted = self.s.resolve_name(node.id)
            if dotted is not None:
                return {"k": "ref", "n": dotted}
            return dict(UNKNOWN)
        if isinstance(node, ast.Attribute):
            base = self.expr_type(node.value)
            if base.get("k") == "ref":
                return {"k": "ref", "n": f"{base['n']}.{node.attr}"}
            if base.get("k") == "?":
                return dict(UNKNOWN)
            return {"k": "attr_of", "base": base, "attr": node.attr}
        if isinstance(node, ast.Call):
            func_desc = self.callee_descriptor(node)
            if func_desc is None:
                return dict(UNKNOWN)
            return {"k": "call_of", "f": func_desc}
        if isinstance(node, ast.Subscript):
            base = self.expr_type(node.value)
            if base.get("k") == "?":
                return dict(UNKNOWN)
            return {"k": "elem_of", "base": base}
        return dict(UNKNOWN)

    # -- calls and references -----------------------------------------------

    def callee_descriptor(self, node: ast.Call) -> Optional[dict]:
        """A target descriptor for a call: ``{"t": "ref", ...}`` for a
        name/module-attribute callee, ``{"t": "method", ...}`` for an
        attribute call on a typed receiver, None when unknown."""
        func = node.func
        if isinstance(func, ast.Name):
            bound = self.bindings.get(func.id)
            if bound is not None and bound.get("k") != "ref":
                return None  # calling a local value: unknown
            dotted = (
                bound["n"] if bound is not None
                else self.s.resolve_name(func.id)
            )
            if dotted is None:
                return None
            return {"t": "ref", "n": dotted}
        if isinstance(func, ast.Attribute):
            recv = self.expr_type(func.value)
            if recv.get("k") == "ref":
                return {"t": "ref", "n": f"{recv['n']}.{func.attr}"}
            if recv.get("k") == "?":
                return None
            return {"t": "method", "recv": recv, "attr": func.attr}
        return None

    def _record_call(self, node: ast.Call) -> None:
        self._call_funcs.add(id(node.func))
        target = self.callee_descriptor(node)
        if target is None:
            return
        self.calls.append(
            {"kind": "call", "line": node.lineno, "target": target}
        )

    def _record_ref(self, node: ast.AST) -> None:
        """A bare reference to a known function (callback, pool
        target, decorator): conservatively an edge — a function whose
        reference escapes may be called."""
        if id(node) in self._call_funcs:
            return
        if isinstance(node, ast.Name):
            if node.id in self.bindings:
                return
            dotted = self.s.resolve_name(node.id)
        elif isinstance(node, ast.Attribute):
            desc = self.expr_type(node)
            dotted = desc.get("n") if desc.get("k") == "ref" else None
        else:
            return
        if dotted is None or dotted.startswith("builtins."):
            return
        self.calls.append(
            {
                "kind": "ref",
                "line": getattr(node, "lineno", 0),
                "target": {"t": "ref", "n": dotted},
            }
        )


class _Summarizer:
    """Drives extraction over one :class:`ModuleContext`."""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.module = module_name_for(ctx.rel)
        collector = _AliasCollector(
            self.module, _is_package_init(ctx.rel)
        )
        collector.visit(ctx.tree)
        self.aliases = collector.aliases
        self.toplevel: Dict[str, str] = {}  # name -> "func" | "class"
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.toplevel[node.name] = "func"
            elif isinstance(node, ast.ClassDef):
                self.toplevel[node.name] = "class"

    def resolve_name(self, name: str) -> Optional[str]:
        """Absolute dotted origin of a module-visible name."""
        if name in self.aliases:
            return self.aliases[name]
        if name in self.toplevel:
            return f"{self.module}.{name}" if self.module else name
        if name in _BUILTIN_TYPES or hasattr(_builtins, name):
            return f"builtins.{name}"
        return None

    # -- functions ----------------------------------------------------------

    def _function_summary(
        self, node: ast.AST, cls: Optional[str]
    ) -> dict:
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        names = [a.arg for a in positional]
        if cls is not None and names and names[0] in ("self", "cls"):
            names = names[1:]
            positional = positional[1:]
        defaults = len(args.defaults)
        decorators = []
        for decorator in node.decorator_list:
            desc = _annotation_descriptor(decorator, self.resolve_name)
            if desc.get("k") == "ref":
                decorators.append(desc["n"])
            elif isinstance(decorator, ast.Name):
                decorators.append(decorator.id)
        is_property = any(
            d in ("builtins.property", "property") or
            d.endswith(".property") or d.endswith(".cached_property")
            for d in decorators
        )
        unit = _UnitExtractor(self, node, cls)
        unit.extract()
        qual = f"{cls}.{node.name}" if cls else node.name
        return {
            "name": node.name,
            "qual": qual,
            "cls": cls,
            "line": node.lineno,
            "params": names,
            "required": max(0, len(names) - defaults),
            "vararg": args.vararg is not None,
            "kwonly": [a.arg for a in args.kwonlyargs],
            "kwarg": args.kwarg is not None,
            "property": is_property,
            "decorators": decorators,
            "returns": _annotation_descriptor(
                node.returns, self.resolve_name
            ),
            "calls": unit.calls,
            "impure": [],  # filled in by summarize_module
        }

    # -- classes ------------------------------------------------------------

    def _class_summary(self, node: ast.ClassDef) -> dict:
        bases = []
        is_protocol = False
        for base in node.bases:
            desc = _annotation_descriptor(base, self.resolve_name)
            if desc.get("k") == "sub":
                desc = desc["base"]
            if desc.get("k") == "ref":
                bases.append(desc["n"])
                tail = desc["n"].rsplit(".", 1)[-1]
                if tail == "Protocol":
                    is_protocol = True
            elif isinstance(base, ast.Name):
                bases.append(base.id)
                if base.id == "Protocol":
                    is_protocol = True
        methods = {}
        fields = {}
        for statement in node.body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                methods[statement.name] = self._function_summary(
                    statement, node.name
                )
            elif isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                fields[statement.target.id] = _annotation_descriptor(
                    statement.annotation, self.resolve_name
                )
        return {
            "name": node.name,
            "line": node.lineno,
            "bases": bases,
            "protocol": is_protocol,
            "methods": methods,
            "fields": fields,
        }

    # -- registries ---------------------------------------------------------

    def _registries(self) -> Dict[str, List[str]]:
        found: Dict[str, List[str]] = {}
        for node in self.ctx.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id not in _REGISTRY_NAMES:
                    continue
                names: List[str] = []
                if isinstance(node.value, (ast.Tuple, ast.List)):
                    for element in node.value.elts:
                        desc = _annotation_descriptor(
                            element, self.resolve_name
                        )
                        if desc.get("k") == "ref":
                            names.append(desc["n"])
                found[target.id] = names
        return found


class ModuleSummary:
    """One file's contribution to the project index (plain data)."""

    __slots__ = ("rel", "module", "payload")

    def __init__(self, rel: str, module: str, payload: dict) -> None:
        self.rel = rel
        self.module = module
        self.payload = payload

    @property
    def functions(self) -> Dict[str, dict]:
        return self.payload["functions"]

    @property
    def classes(self) -> Dict[str, dict]:
        return self.payload["classes"]

    @property
    def aliases(self) -> Dict[str, str]:
        return self.payload["aliases"]

    @property
    def registries(self) -> Dict[str, List[str]]:
        return self.payload["registries"]

    def to_payload(self) -> dict:
        return {
            "rel": self.rel,
            "module": self.module,
            **self.payload,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ModuleSummary":
        body = {
            key: value
            for key, value in payload.items()
            if key not in ("rel", "module")
        }
        return cls(payload["rel"], payload["module"], body)


def summarize_module(ctx: ModuleContext) -> ModuleSummary:
    """Extract the semantic summary of one parsed file."""
    summarizer = _Summarizer(ctx)
    functions: Dict[str, dict] = {}
    classes: Dict[str, dict] = {}
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = summarizer._function_summary(
                node, None
            )
        elif isinstance(node, ast.ClassDef):
            classes[node.name] = summarizer._class_summary(node)
    payload = {
        "aliases": summarizer.aliases,
        "functions": functions,
        "classes": classes,
        "registries": summarizer._registries(),
    }
    summary = ModuleSummary(ctx.rel, summarizer.module, payload)
    _attach_impure_sites(ctx, summary)
    return summary


def _attach_impure_sites(ctx: ModuleContext, summary: ModuleSummary) -> None:
    """Tag each function unit with the impure sites the taint pass
    treats as sources (see :mod:`repro.lint.semantic.taint`).

    The per-file determinism rules are re-run here so the transitive
    pass flags exactly what they would — including sites whose
    *per-file* finding is pragma-suppressed: a ``DET002`` pragma
    claims "display-only", and reachability from a digest is precisely
    the evidence that claim needs re-review, so only the matching
    ``DET1xx`` pragma silences the interprocedural finding.
    """
    from .taint import direct_impure_sites

    spans: List[Tuple[int, int, str, Optional[str]]] = []

    def record_span(node: ast.AST, cls: Optional[str]) -> None:
        end = getattr(node, "end_lineno", node.lineno)
        spans.append((node.lineno, end, node.name, cls))

    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            record_span(node, None)
        elif isinstance(node, ast.ClassDef):
            for statement in node.body:
                if isinstance(
                    statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    record_span(statement, node.name)

    def owner_of(line: int) -> Optional[dict]:
        best = None
        for lo, hi, name, cls in spans:
            if lo <= line <= hi:
                if best is None or lo > best[0]:
                    best = (lo, name, cls)
        if best is None:
            return None
        _, name, cls = best
        if cls is None:
            return summary.functions.get(name)
        klass = summary.classes.get(cls)
        return klass["methods"].get(name) if klass else None

    for site in direct_impure_sites(ctx):
        owner = owner_of(site["line"])
        if owner is not None:
            owner["impure"].append(site)


def unit_typer(
    ctx: ModuleContext,
    func: ast.AST,
    cls_name: Optional[str] = None,
) -> "_UnitExtractor":
    """A live expression typer scoped to one function unit.

    Program rules that must type arbitrary expressions in a re-parsed
    file (e.g. CON001 on ``conn.send(...)`` arguments) get the same
    binding/descriptor machinery the summaries are built from; feed
    the returned object's ``expr_type(node)`` any expression inside
    ``func``.
    """
    summarizer = _Summarizer(ctx)
    unit = _UnitExtractor(summarizer, func, cls_name)
    unit.extract()
    return unit


class ProjectIndex:
    """Cross-module resolution over a set of summaries."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.summaries = sorted(summaries, key=lambda s: s.rel)
        self.by_module: Dict[str, ModuleSummary] = {}
        for summary in self.summaries:
            self.by_module[summary.module] = summary

    # -- reference resolution ----------------------------------------------

    def resolve_ref(
        self, dotted: str, _depth: int = 0
    ) -> Optional[Tuple[str, str, dict]]:
        """Resolve a dotted reference to a project symbol.

        Returns ``(kind, fqn, payload)`` with kind ``"func"`` or
        ``"class"`` (fqn is ``module.qualname``), following re-export
        aliases through package ``__init__`` modules; None when the
        reference leaves the project (stdlib, third-party) or cannot
        be resolved.
        """
        if _depth > 8 or not dotted or dotted.startswith("builtins."):
            return None
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            summary = self.by_module.get(module)
            if summary is None:
                continue
            rest = parts[cut:]
            head = rest[0]
            if head in summary.functions and len(rest) == 1:
                return (
                    "func",
                    f"{module}.{head}",
                    summary.functions[head],
                )
            if head in summary.classes:
                klass = summary.classes[head]
                if len(rest) == 1:
                    return ("class", f"{module}.{head}", klass)
                if len(rest) == 2 and rest[1] in klass["methods"]:
                    return (
                        "func",
                        f"{module}.{head}.{rest[1]}",
                        klass["methods"][rest[1]],
                    )
                return None
            if head in summary.aliases:
                target = ".".join([summary.aliases[head]] + rest[1:])
                return self.resolve_ref(target, _depth + 1)
            # The module exists but does not define the name: it may
            # be a submodule reference (repro.sim.engine.Engine hits
            # module repro.sim first when both exist).
            continue
        return None

    # -- classes ------------------------------------------------------------

    def class_summary(self, fqn: str) -> Optional[dict]:
        resolved = self.resolve_ref(fqn)
        if resolved is not None and resolved[0] == "class":
            return resolved[2]
        return None

    def mro(self, fqn: str, _seen=None) -> List[str]:
        """Conservative linearization: the class then its resolvable
        project bases, depth-first, cycles guarded."""
        seen = _seen if _seen is not None else set()
        if fqn in seen:
            return []
        seen.add(fqn)
        resolved = self.resolve_ref(fqn)
        if resolved is None or resolved[0] != "class":
            return []
        _, canonical, klass = resolved
        order = [canonical]
        module = canonical.rsplit(".", 1)[0]
        summary = self.by_module.get(module)
        for base in klass["bases"]:
            dotted = base
            if summary is not None and "." not in base:
                local = summary.aliases.get(base)
                if local is not None:
                    dotted = local
                elif base in summary.classes:
                    dotted = f"{module}.{base}"
            order.extend(self.mro(dotted, seen))
        return order

    def method_lookup(
        self, class_fqn: str, attr: str
    ) -> Optional[Tuple[str, dict]]:
        """``(method fqn, summary)`` through the conservative MRO."""
        for fqn in self.mro(class_fqn):
            klass = self.class_summary(fqn)
            if klass is not None and attr in klass["methods"]:
                return (f"{fqn}.{attr}", klass["methods"][attr])
        return None

    def field_annotation(
        self, class_fqn: str, attr: str
    ) -> Optional[dict]:
        for fqn in self.mro(class_fqn):
            klass = self.class_summary(fqn)
            if klass is not None and attr in klass["fields"]:
                return klass["fields"][attr]
        return None

    # -- protocols ----------------------------------------------------------

    def protocols(self) -> List[Tuple[str, dict]]:
        found = []
        for summary in self.summaries:
            for name in sorted(summary.classes):
                klass = summary.classes[name]
                if klass["protocol"]:
                    found.append((f"{summary.module}.{name}", klass))
        return found

    def implementers(self, proto_fqn: str) -> List[str]:
        """Classes structurally implementing every method of the
        protocol (used for conservative call dispatch)."""
        proto = self.class_summary(proto_fqn)
        if proto is None:
            return []
        needed = {
            name for name in proto["methods"]
            if not name.startswith("_")
        }
        if not needed:
            return []
        found = []
        for summary in self.summaries:
            for name in sorted(summary.classes):
                klass = summary.classes[name]
                if klass["protocol"]:
                    continue
                fqn = f"{summary.module}.{name}"
                have = set()
                for cls_fqn in self.mro(fqn):
                    body = self.class_summary(cls_fqn)
                    if body is not None:
                        have.update(body["methods"])
                if needed <= have:
                    found.append(fqn)
        return found

    # -- type descriptor resolution -----------------------------------------

    def concrete_type(
        self, desc: Optional[dict], _depth: int = 0
    ) -> Optional[dict]:
        """Normalize a descriptor to one of
        ``{"k": "class", "fqn": ...}``, ``{"k": "builtin", "n": ...}``,
        ``{"k": "container", "n": ..., "args": [...]}`` or None
        (unknown)."""
        if desc is None or _depth > 12:
            return None
        kind = desc.get("k")
        if kind == "builtin":
            return {"k": "builtin", "n": desc["n"]}
        if kind == "tuple":
            return {
                "k": "container",
                "n": "tuple",
                "args": [
                    self.concrete_type(item, _depth + 1)
                    for item in desc.get("items", [])
                ],
            }
        if kind == "ref":
            resolved = self.resolve_ref(desc["n"])
            if resolved is None:
                tail = desc["n"].rsplit(".", 1)[-1]
                if desc["n"].startswith("builtins."):
                    return {"k": "builtin", "n": tail}
                if desc["n"].startswith("typing."):
                    return self._typing_container(tail, [])
                return None
            kind2, fqn, _ = resolved
            if kind2 == "class":
                return {"k": "class", "fqn": fqn}
            return None
        if kind == "sub":
            base = desc.get("base", UNKNOWN)
            name = None
            if base.get("k") == "builtin":
                name = base["n"]
            elif base.get("k") == "ref":
                name = base["n"].rsplit(".", 1)[-1]
            args = [
                self.concrete_type(arg, _depth + 1)
                for arg in desc.get("args", [])
            ]
            if name is None:
                return None
            container = self._typing_container(name, args)
            if container is not None:
                return container
            # Subscripted project class (generics): the class itself.
            return self.concrete_type(base, _depth + 1)
        if kind == "call_of":
            target = desc.get("f", {})
            if target.get("t") == "ref" or target.get("k") == "ref":
                dotted = target.get("n")
                resolved = self.resolve_ref(dotted) if dotted else None
                if resolved is None:
                    return None
                kind2, fqn, payload = resolved
                if kind2 == "class":
                    return {"k": "class", "fqn": fqn}
                return self.concrete_type(
                    payload.get("returns"), _depth + 1
                )
            if target.get("t") == "method":
                method = self._method_from_target(target, _depth)
                if method is None:
                    return None
                return self.concrete_type(
                    method[1].get("returns"), _depth + 1
                )
            return None
        if kind == "item_of":
            call = self.concrete_type(
                {"k": "call_of", "f": desc["f"]}, _depth + 1
            )
            if (
                call is not None
                and call["k"] == "container"
                and call["n"] == "tuple"
            ):
                index = desc.get("i", 0)
                args = call.get("args", [])
                if 0 <= index < len(args):
                    return args[index]
            return None
        if kind == "attr_of":
            base = self.concrete_type(desc.get("base"), _depth + 1)
            if base is None or base["k"] != "class":
                return None
            field = self.field_annotation(base["fqn"], desc["attr"])
            if field is not None:
                return self.concrete_type(field, _depth + 1)
            method = self.method_lookup(base["fqn"], desc["attr"])
            if method is not None and method[1].get("property"):
                return self.concrete_type(
                    method[1].get("returns"), _depth + 1
                )
            return None
        if kind == "elem_of":
            base = self.concrete_type(desc.get("base"), _depth + 1)
            if base is not None and base["k"] == "container":
                args = base.get("args", [])
                if args:
                    return args[-1]
            return None
        return None

    def _method_from_target(
        self, target: dict, _depth: int
    ) -> Optional[Tuple[str, dict]]:
        recv = self.concrete_type(target.get("recv"), _depth + 1)
        if recv is None or recv["k"] != "class":
            return None
        return self.method_lookup(recv["fqn"], target["attr"])

    def _typing_container(self, name: str, args) -> Optional[dict]:
        lowered = name.lower()
        mapping = {
            "list": "list", "sequence": "list", "iterable": "list",
            "iterator": "list", "tuple": "tuple", "dict": "dict",
            "mapping": "dict", "mutablemapping": "dict", "set": "set",
            "frozenset": "set",
        }
        if lowered in mapping:
            return {
                "k": "container",
                "n": mapping[lowered],
                "args": list(args),
            }
        return None
