"""Whole-program semantic layer for ``repro.lint``.

Per-file rules see one AST; the semantic layer sees the project:

- :mod:`~repro.lint.semantic.symbols` — per-module summaries (import
  aliases with relative-import resolution, functions, classes,
  registries, type descriptors) and the cross-module
  :class:`~repro.lint.semantic.symbols.ProjectIndex`;
- :mod:`~repro.lint.semantic.callgraph` — the conservative call graph
  (direct calls, inferred method dispatch, Protocol fan-out, escaping
  function references);
- :mod:`~repro.lint.semantic.taint` — impure facts propagated to a
  fixed point, and the DET1xx findings with full call chains;
- :mod:`~repro.lint.semantic.cache` — the content-sha result cache
  that keeps whole-program mode fast on warm runs.
"""

from .cache import ResultCache, content_sha
from .callgraph import CallGraph, build_callgraph
from .symbols import (
    ANALYZER_VERSION,
    ModuleSummary,
    ProjectIndex,
    module_name_for,
    summarize_module,
)
from .taint import (
    ENTRY_NAMES,
    TAINT_RULES,
    direct_impure_sites,
    entry_points,
    propagate,
    taint_findings,
)

__all__ = [
    "ANALYZER_VERSION",
    "CallGraph",
    "ENTRY_NAMES",
    "ModuleSummary",
    "ProjectIndex",
    "ResultCache",
    "TAINT_RULES",
    "build_callgraph",
    "content_sha",
    "direct_impure_sites",
    "entry_points",
    "module_name_for",
    "propagate",
    "summarize_module",
    "taint_findings",
]
