"""Conservative whole-program call graph over module summaries.

Nodes are function units (module-level functions and methods, named
by ``module.qualname``); edges come from three resolution strategies,
each deliberately over-approximate — a taint pass built on this graph
can only miss hazards through an *unresolvable* callee, never through
a resolvable one:

- **direct calls** through the import-alias map, following re-export
  chains (``from ..campaign import run_campaign`` inside a package
  ``__init__`` still lands on ``repro.campaign.runner.run_campaign``);
- **method calls** on receivers whose class is recoverable from the
  conservative type descriptors (annotations, constructor calls,
  ``self``); a receiver typed as a Protocol fans out to *every*
  structural implementer — dynamic dispatch is modeled as "any of
  them";
- **function references** (``pool.imap_unordered(_shard_task, ...)``,
  callbacks, decorators): a function whose reference escapes may be
  called, so the reference site gets an edge of kind ``ref``.

Calling a class adds an edge to its ``__init__`` (and
``__post_init__`` when defined) so constructor impurity is visible.
Everything iterates in sorted order: graph dumps and finding output
are byte-stable run to run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .symbols import ModuleSummary, ProjectIndex

__all__ = ["CallGraph", "build_callgraph"]


class CallGraph:
    """Nodes, sorted adjacency, and BFS reachability with parents."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        #: fqn -> {"path", "line", "name", "impure": [...]}
        self.nodes: Dict[str, dict] = {}
        #: (src, dst, line, kind) — kind is "call" | "ref" | "init"
        self._edges: set = set()

    # -- construction -------------------------------------------------------

    def add_node(self, fqn: str, info: dict) -> None:
        self.nodes[fqn] = info

    def add_edge(self, src: str, dst: str, line: int, kind: str) -> None:
        if src in self.nodes and dst in self.nodes:
            self._edges.add((src, dst, line, kind))

    @property
    def edges(self) -> List[Tuple[str, str, int, str]]:
        return sorted(self._edges)

    def successors(self, fqn: str) -> List[Tuple[str, int, str]]:
        return sorted(
            (dst, line, kind)
            for src, dst, line, kind in self._edges
            if src == fqn
        )

    # -- reachability -------------------------------------------------------

    def reachable_from(
        self, entries: Sequence[str]
    ) -> Dict[str, Optional[Tuple[str, int]]]:
        """BFS over sorted entries/successors; maps every reachable
        fqn to its ``(parent fqn, call line)`` — entries map to None.
        First-found parents are deterministic, so reported chains are
        stable."""
        adjacency: Dict[str, List[Tuple[str, int, str]]] = {}
        for src, dst, line, kind in self.edges:
            adjacency.setdefault(src, []).append((dst, line, kind))
        parents: Dict[str, Optional[Tuple[str, int]]] = {}
        queue: List[str] = []
        for entry in sorted(set(entries)):
            if entry in self.nodes and entry not in parents:
                parents[entry] = None
                queue.append(entry)
        head = 0
        while head < len(queue):
            current = queue[head]
            head += 1
            for dst, line, _kind in adjacency.get(current, []):
                if dst not in parents:
                    parents[dst] = (current, line)
                    queue.append(dst)
        return parents

    @staticmethod
    def chain(
        parents: Dict[str, Optional[Tuple[str, int]]], fqn: str
    ) -> List[str]:
        """Entry-to-``fqn`` call chain under a ``reachable_from``
        parent map."""
        links: List[str] = []
        current: Optional[str] = fqn
        while current is not None:
            links.append(current)
            step = parents.get(current)
            current = step[0] if step else None
        return list(reversed(links))

    # -- serialization ------------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "schema": 1,
            "nodes": [
                {
                    "fqn": fqn,
                    "path": info["path"],
                    "line": info["line"],
                    "impure": info["impure"],
                }
                for fqn, info in sorted(self.nodes.items())
            ],
            "edges": [
                {"src": src, "dst": dst, "line": line, "kind": kind}
                for src, dst, line, kind in self.edges
            ],
        }


def _register_nodes(
    graph: CallGraph, summaries: Sequence[ModuleSummary]
) -> None:
    for summary in summaries:
        for name in sorted(summary.functions):
            func = summary.functions[name]
            graph.add_node(
                f"{summary.module}.{name}",
                {
                    "path": summary.rel,
                    "line": func["line"],
                    "name": name,
                    "impure": func["impure"],
                },
            )
        for cls_name in sorted(summary.classes):
            klass = summary.classes[cls_name]
            for method_name in sorted(klass["methods"]):
                method = klass["methods"][method_name]
                graph.add_node(
                    f"{summary.module}.{cls_name}.{method_name}",
                    {
                        "path": summary.rel,
                        "line": method["line"],
                        "name": method_name,
                        "impure": method["impure"],
                    },
                )


def _class_call_targets(
    index: ProjectIndex, class_fqn: str
) -> List[str]:
    """Calling a class runs its constructor chain."""
    targets = []
    for hook in ("__init__", "__post_init__"):
        found = index.method_lookup(class_fqn, hook)
        if found is not None:
            targets.append(found[0])
    return targets


def _edges_for_target(
    graph: CallGraph, src: str, target: dict, line: int, kind: str
) -> None:
    index = graph.index
    if target.get("t") == "ref":
        resolved = index.resolve_ref(target.get("n", ""))
        if resolved is None:
            return
        resolved_kind, fqn, payload = resolved
        if resolved_kind == "func":
            graph.add_edge(src, fqn, line, kind)
            if payload.get("cls"):
                # A receiver annotated with a class type reaches its
                # method through this ref path (``t.tick`` with
                # ``t: Ticker`` resolves like a dotted attribute); if
                # that class is a Protocol, fan out to every
                # structural implementer, same as the method path.
                cls_fqn, attr = fqn.rsplit(".", 1)
                _fan_out_protocol(graph, src, cls_fqn, attr, line, kind)
        else:
            for ctor in _class_call_targets(index, fqn):
                graph.add_edge(src, ctor, line, "init")
        return
    if target.get("t") == "method":
        recv = index.concrete_type(target.get("recv"))
        if recv is None or recv.get("k") != "class":
            return
        attr = target["attr"]
        klass = index.class_summary(recv["fqn"])
        if klass is not None and klass["protocol"]:
            _fan_out_protocol(graph, src, recv["fqn"], attr, line, kind)
            return
        found = index.method_lookup(recv["fqn"], attr)
        if found is not None:
            graph.add_edge(src, found[0], line, kind)


def _fan_out_protocol(
    graph: CallGraph,
    src: str,
    proto_fqn: str,
    attr: str,
    line: int,
    kind: str,
) -> None:
    """Dynamic dispatch on a Protocol-typed receiver: any structural
    implementer's method may run."""
    index = graph.index
    klass = index.class_summary(proto_fqn)
    if klass is None or not klass["protocol"]:
        return
    for impl in index.implementers(proto_fqn):
        found = index.method_lookup(impl, attr)
        if found is not None:
            graph.add_edge(src, found[0], line, kind)


def build_callgraph(index: ProjectIndex) -> CallGraph:
    """Assemble the graph for every function unit in the index."""
    graph = CallGraph(index)
    _register_nodes(graph, index.summaries)
    for summary in index.summaries:
        units: List[Tuple[str, dict]] = []
        for name in sorted(summary.functions):
            units.append(
                (f"{summary.module}.{name}", summary.functions[name])
            )
        for cls_name in sorted(summary.classes):
            klass = summary.classes[cls_name]
            for method_name in sorted(klass["methods"]):
                units.append(
                    (
                        f"{summary.module}.{cls_name}.{method_name}",
                        klass["methods"][method_name],
                    )
                )
        for fqn, unit in units:
            for call in unit["calls"]:
                _edges_for_target(
                    graph,
                    fqn,
                    call["target"],
                    call["line"],
                    call["kind"],
                )
    return graph
