"""Content-addressed per-file result cache for whole-program lint.

Whole-program mode re-reads the entire tree every run; almost none of
it changed since the last run.  The cache keys each file's *complete*
per-file phase output — findings, pragma-suppressed findings, the
pragma inventory, and the semantic summary the program passes consume
— on the sha256 of its bytes, so an unchanged file costs one hash and
zero parses.  Program-level passes (taint, contracts, conformance)
always run fresh over the summaries: they are cheap once summaries
exist, and caching them would couple a file's cache entry to every
*other* file's content.

The cache version token folds in the enabled rule ids and
:data:`~repro.lint.semantic.symbols.ANALYZER_VERSION`, so changing
the rule pack or the summary shape silently invalidates everything —
a stale-schema cache can never masquerade as a clean run.  The file
itself (default ``.lint-cache.json`` under the lint root) is an
untracked artifact; deleting it is always safe.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, Optional

__all__ = ["CACHE_SCHEMA", "ResultCache", "content_sha"]

CACHE_SCHEMA = 1


def content_sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class ResultCache:
    """Load/store per-file phase results keyed on content sha."""

    def __init__(self, path: Optional[Path], version: str) -> None:
        self.path = path
        self.version = version
        self.entries: Dict[str, dict] = {}
        self.dirty = False
        if path is None:
            return
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            isinstance(raw, dict)
            and raw.get("schema") == CACHE_SCHEMA
            and raw.get("version") == version
            and isinstance(raw.get("files"), dict)
        ):
            self.entries = raw["files"]

    def get(self, rel: str, sha: str) -> Optional[dict]:
        entry = self.entries.get(rel)
        if entry is not None and entry.get("sha") == sha:
            return entry.get("result")
        return None

    def put(self, rel: str, sha: str, result: dict) -> None:
        self.entries[rel] = {"sha": sha, "result": result}
        self.dirty = True

    def save(self, keep: Optional[Iterable[str]] = None) -> None:
        """Persist, pruning entries for files no longer linted (so
        deletions do not grow the cache forever)."""
        if self.path is None:
            return
        entries = self.entries
        if keep is not None:
            wanted = set(keep)
            pruned = {
                rel: entry
                for rel, entry in entries.items()
                if rel in wanted
            }
            if len(pruned) != len(entries):
                self.dirty = True
            entries = pruned
        if not self.dirty:
            return
        payload = {
            "schema": CACHE_SCHEMA,
            "version": self.version,
            "files": entries,
        }
        try:
            self.path.write_text(
                json.dumps(payload, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError:
            pass  # a read-only tree degrades to cold runs, not errors
