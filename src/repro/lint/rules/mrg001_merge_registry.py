"""MRG001: mergeable results must be registered and field-complete.

The campaign's whole resume/sharding story rests on ``PartialResult``
merges being associative and commutative with an explicit identity —
that is what makes the merged result independent of shard completion
order, pool size, and kill/resume cycles.  Two ways that silently
breaks:

1. someone adds a dataclass field and forgets to merge it in
   ``__add__`` (the new field silently resets to its default on every
   merge);
2. someone adds a new ``+``-mergeable type without registering it in
   ``COMMUTATIVE_MERGES``, so the property tests that prove
   merge-order independence never see it.

The rule statically enforces, for every ``__add__``-defining class in
``repro.campaign.results`` (and the out-of-core fold/handoff modules
that feed it): registration in the module-level
``COMMUTATIVE_MERGES`` tuple, an ``__radd__ = __add__`` alias (so
``sum()`` folds work), and that the ``__add__`` body mentions every
dataclass field.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from ..engine import Finding, ModuleContext, Rule

REGISTRY_NAME = "COMMUTATIVE_MERGES"

#: Suffixes of the modules the discipline applies to — the result
#: types plus the out-of-core fold/handoff layer that produces them.
TARGET_SUFFIXES = (
    "campaign/results.py",
    "campaign/fold.py",
    "campaign/handoff.py",
)


def _registered_names(tree: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == REGISTRY_NAME
            for target in node.targets
        ):
            continue
        if isinstance(node.value, (ast.Tuple, ast.List)):
            for element in node.value.elts:
                if isinstance(element, ast.Name):
                    names.add(element.id)
    return names


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else (
            decorator
        )
        name = target.attr if isinstance(target, ast.Attribute) else (
            getattr(target, "id", "")
        )
        if name == "dataclass":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> List[str]:
    fields = []
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        annotation = statement.annotation
        if isinstance(annotation, ast.Subscript):
            base = annotation.value
            if isinstance(base, ast.Name) and base.id == "ClassVar":
                continue
        fields.append(statement.target.id)
    return fields


def _mentioned_names(func: ast.FunctionDef) -> Set[str]:
    seen: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute):
            seen.add(node.attr)
        elif isinstance(node, ast.keyword) and node.arg:
            seen.add(node.arg)
        elif isinstance(node, ast.Name):
            seen.add(node.id)
    return seen


class MergeRegistryRule(Rule):
    id = "MRG001"
    title = "unregistered or field-incomplete merge"
    rationale = (
        "Every +-mergeable result class must be registered in "
        "COMMUTATIVE_MERGES and merge all of its dataclass fields; "
        "a forgotten field silently resets on every shard merge."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.rel.endswith(TARGET_SUFFIXES)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        registered = _registered_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            add = None
            has_radd = False
            for statement in node.body:
                if (
                    isinstance(statement, ast.FunctionDef)
                    and statement.name == "__add__"
                ):
                    add = statement
                if isinstance(statement, ast.Assign) and any(
                    isinstance(target, ast.Name)
                    and target.id == "__radd__"
                    for target in statement.targets
                ):
                    has_radd = True
                if (
                    isinstance(statement, ast.FunctionDef)
                    and statement.name == "__radd__"
                ):
                    has_radd = True
            if add is None:
                continue
            if node.name not in registered:
                yield ctx.finding(
                    self.id,
                    node,
                    f"'{node.name}' defines __add__ but is not "
                    f"registered in {REGISTRY_NAME} (the merge "
                    "property tests iterate that registry)",
                )
            if not has_radd:
                yield ctx.finding(
                    self.id,
                    node,
                    f"'{node.name}' defines __add__ without "
                    "__radd__ = __add__ (sum() folds need it)",
                )
            if _is_dataclass(node):
                missing = sorted(
                    set(_dataclass_fields(node)) - _mentioned_names(add)
                )
                if missing:
                    yield ctx.finding(
                        self.id,
                        add,
                        f"__add__ of '{node.name}' never mentions "
                        f"field(s): {', '.join(missing)} — they "
                        "would silently reset on merge",
                    )
