"""The rule pack: one module per rule, assembled in id order.

Adding a rule is three steps (see ``docs/LINTING.md``):

1. create ``rules/<id>_<slug>.py`` with a :class:`~repro.lint.engine.Rule`
   subclass,
2. list its class here,
3. add fixture tests (positive / negative / pragma) to
   ``tests/test_lint.py``.
"""

from __future__ import annotations

from typing import List

from ..engine import Rule
from .con001_transferable import TransferableRule
from .det001_global_random import GlobalRandomRule
from .det002_wall_clock import WallClockRule
from .det003_unsorted_iter import UnsortedIterationRule
from .det004_builtin_hash import BuiltinHashRule
from .det1xx_taint import (
    TaintEnvironRule,
    TaintGlobalRandomRule,
    TaintSaltedHashRule,
    TaintUnsortedIterRule,
    TaintWallClockRule,
)
from .hot001_slots import SlotsRule
from .lint000_pragma import PragmaRule
from .mrg001_merge_registry import MergeRegistryRule
from .pro001_protocol import ProtocolConformanceRule

__all__ = ["all_rules", "rules_by_id"]

_RULE_CLASSES = (
    PragmaRule,
    GlobalRandomRule,
    WallClockRule,
    UnsortedIterationRule,
    BuiltinHashRule,
    TaintGlobalRandomRule,
    TaintWallClockRule,
    TaintUnsortedIterRule,
    TaintSaltedHashRule,
    TaintEnvironRule,
    SlotsRule,
    MergeRegistryRule,
    TransferableRule,
    ProtocolConformanceRule,
)


def all_rules() -> List[Rule]:
    """A fresh instance of every registered rule, in id order."""
    return sorted(
        (cls() for cls in _RULE_CLASSES), key=lambda rule: rule.id
    )


def rules_by_id(*ids: str) -> List[Rule]:
    """The subset of rules with the given ids (unknown ids raise)."""
    rules = {rule.id: rule for rule in all_rules()}
    missing = sorted(set(ids) - set(rules))
    if missing:
        raise KeyError(f"unknown rule id(s): {', '.join(missing)}")
    return [rules[rule_id] for rule_id in ids]
