"""DET001: calls on the shared module-level ``random`` stream.

The global ``random`` functions all draw from one hidden
``random.Random`` instance.  Any caller perturbs every other caller's
stream, so a result produced through it is a function of *call order
across the whole process*, not of an explicit seed — which breaks the
verify layer's premise that every result replays from its config.
Constructing seeded instances (``random.Random(seed)``,
``random.SystemRandom()`` for the one place true entropy is wanted)
is exactly what the rule wants instead, so those stay allowed.

Unlike the old regex audit, this sees through aliases: both
``from random import randint`` and ``import random as rnd`` resolve
to the same origin and are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Finding, ModuleContext, Rule

#: Seeded-generator constructors: instantiating these is the fix, not
#: the bug.
_ALLOWED = frozenset({"random.Random", "random.SystemRandom"})


class GlobalRandomRule(Rule):
    id = "DET001"
    title = "call on the global random stream"
    rationale = (
        "All randomness must flow from explicitly seeded "
        "random.Random / numpy default_rng(seed) instances; the "
        "module-level functions share one process-global stream."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.resolve(node.func)
            if origin is None or origin in _ALLOWED:
                continue
            if origin == "random" or origin.startswith("random."):
                yield ctx.finding(
                    self.id,
                    node,
                    f"call to global '{origin}' (draws from the "
                    "process-wide stream; use a seeded "
                    "random.Random instance)",
                )
