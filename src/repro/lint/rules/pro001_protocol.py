"""PRO001: static Protocol conformance for the scheduler contract.

``EventScheduler`` is a runtime-checkable Protocol, but runtime
checks only see method *presence* at ``isinstance`` time — a drifted
arity (``run_until(end_time)`` losing its ``max_events``) or a method
turned property passes ``isinstance`` and then explodes deep inside a
differential run.  This pass checks the declared implementers
structurally at lint time, method set *and* signature shape:

- every public Protocol method must exist on the implementer (through
  its conservative MRO);
- property-ness must match (a Protocol ``@property`` implemented as a
  method changes every call site);
- the implementer must accept every call the Protocol permits: its
  required positional count cannot exceed the Protocol's positional
  count, it must take at least as many positionals (or ``*args``),
  a Protocol ``*args`` demands an implementer ``*args``, and every
  Protocol keyword-only name must be addressable.

Findings anchor at the implementer's class line.  If the Protocol
module is not part of the linted tree (fixture subsets), the pass is
silent — absence of evidence is not a finding.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..engine import Finding, ProgramContext, ProgramRule

__all__ = ["ProtocolConformanceRule"]

#: (protocol fqn, implementer fqns) pairs to enforce.
CONTRACTS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    (
        "repro.sim.scheduler.EventScheduler",
        (
            "repro.sim.engine.Engine",
            "repro.sim.refengine.ReferenceEngine",
            "repro.sim.parallel.ParallelDriver",
        ),
    ),
)


class ProtocolConformanceRule(ProgramRule):
    id = "PRO001"
    title = "implementer drifts from its Protocol's method contract"
    rationale = (
        "Engine, ReferenceEngine, and ParallelDriver must stay "
        "call-compatible with the EventScheduler Protocol: the "
        "differential harness swaps them freely, and runtime "
        "isinstance() only checks method names.  A renamed method, a "
        "property/method mismatch, or a narrowed signature fails "
        "lint here instead of mid-simulation."
    )

    def check_program(
        self, program: ProgramContext
    ) -> Iterable[Finding]:
        index = program.index
        for proto_fqn, implementer_fqns in CONTRACTS:
            proto = index.class_summary(proto_fqn)
            if proto is None or not proto["protocol"]:
                continue  # protocol not in this tree: nothing provable
            for impl_fqn in sorted(implementer_fqns):
                yield from self._check_implementer(
                    program, proto_fqn, proto, impl_fqn
                )

    def _check_implementer(
        self,
        program: ProgramContext,
        proto_fqn: str,
        proto: dict,
        impl_fqn: str,
    ) -> Iterable[Finding]:
        index = program.index
        module = impl_fqn.rsplit(".", 1)[0]
        if module not in index.by_module:
            return  # implementer's module not linted: skip, not fail
        resolved = index.resolve_ref(impl_fqn)
        rel = index.by_module[module].rel
        if resolved is None or resolved[0] != "class":
            yield program.finding(
                self.id,
                rel,
                1,
                f"declared {proto_fqn} implementer {impl_fqn} does "
                "not exist (renamed or moved? update the contract in "
                "pro001_protocol.py alongside the code)",
            )
            return
        _, canonical, klass = resolved
        line = klass["line"]
        for name in sorted(proto["methods"]):
            if name.startswith("_"):
                continue
            proto_method = proto["methods"][name]
            found = index.method_lookup(canonical, name)
            if found is None:
                yield program.finding(
                    self.id,
                    rel,
                    line,
                    f"{impl_fqn} is missing {proto_fqn} method "
                    f"{name}()",
                )
                continue
            _, impl_method = found
            if bool(proto_method["property"]) != bool(
                impl_method["property"]
            ):
                expected = (
                    "a property"
                    if proto_method["property"]
                    else "a method"
                )
                yield program.finding(
                    self.id,
                    rel,
                    impl_method["line"]
                    if impl_method["line"]
                    else line,
                    f"{impl_fqn}.{name} must be {expected} to match "
                    f"{proto_fqn}.{name}",
                )
                continue
            if proto_method["property"]:
                continue  # properties have no caller-visible arity
            problem = _arity_problem(proto_method, impl_method)
            if problem is not None:
                yield program.finding(
                    self.id,
                    rel,
                    impl_method["line"]
                    if impl_method["line"]
                    else line,
                    f"{impl_fqn}.{name}() signature drifts from "
                    f"{proto_fqn}.{name}(): {problem}",
                )


def _arity_problem(proto: dict, impl: dict) -> Optional[str]:
    """Why ``impl`` cannot take every call ``proto`` permits (None
    when it can)."""
    positional = len(proto["params"])
    if impl["required"] > positional:
        return (
            f"requires {impl['required']} positional argument(s) but "
            f"the protocol only guarantees {positional}"
        )
    if len(impl["params"]) < positional and not impl["vararg"]:
        return (
            f"accepts only {len(impl['params'])} positional "
            f"argument(s) where the protocol passes {positional}"
        )
    if proto["vararg"] and not impl["vararg"]:
        return "drops the protocol's *args"
    missing: List[str] = [
        kw
        for kw in proto["kwonly"]
        if kw not in impl["kwonly"]
        and kw not in impl["params"]
        and not impl["kwarg"]
    ]
    if missing:
        return (
            "missing keyword argument(s) the protocol declares: "
            + ", ".join(sorted(missing))
        )
    return None
