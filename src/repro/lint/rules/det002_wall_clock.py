"""DET002: wall-clock reads.

Every repro result must be a pure function of seeds and configs; a
wall-clock read anywhere near result-producing code makes output
depend on *when* it ran.  The only legitimate uses in this repo are
display-only elapsed-time measurements (progress lines, the campaign's
``elapsed`` bookkeeping field), and those carry inline pragmas with a
justification — the successor of the old audit's allowlist table,
moved next to the code it grants.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Finding, ModuleContext, Rule

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    id = "DET002"
    title = "wall-clock read"
    rationale = (
        "Results must be functions of seeds, never of real time; "
        "display-only timing needs a justified pragma."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.resolve(node.func)
            if origin in _WALL_CLOCK:
                yield ctx.finding(
                    self.id,
                    node,
                    f"wall-clock read '{origin}' (results must be "
                    "functions of seeds; display-only timing needs "
                    "a justified pragma)",
                )
