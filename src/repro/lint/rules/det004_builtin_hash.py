"""DET004: builtin ``hash()`` of str/bytes values.

``hash(str)`` and ``hash(bytes)`` are salted per process by
``PYTHONHASHSEED`` — two runs of the same program disagree.  Any such
hash that reaches a persisted artifact, a digest, or (the case this
repo actually had) an RNG seed silently breaks replay.  Tuple hashes
mix the element hashes, so a tuple literal with a str/bytes element is
just as salted as the string itself and the rule flags it too.
Integer and int-tuple hashes are value-based and stable, so the rule
only fires when the argument's static type is provably textual; use
``zlib.crc32`` / ``hashlib`` for a stable text hash instead.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Finding, ModuleContext, Rule


class BuiltinHashRule(Rule):
    id = "DET004"
    title = "builtin hash() of a str/bytes value"
    rationale = (
        "hash(str/bytes) is PYTHONHASHSEED-salted and differs "
        "between runs; use zlib.crc32 or hashlib for stable hashes."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or len(node.args) != 1:
                continue
            if ctx.resolve(node.func) != "builtins.hash":
                continue
            inferred = ctx.infer(node.args[0])
            if inferred in ("str", "bytes"):
                yield ctx.finding(
                    self.id,
                    node,
                    f"hash() of a {inferred} value is salted by "
                    "PYTHONHASHSEED and differs between runs; use "
                    "zlib.crc32/hashlib for a stable hash",
                )
            elif inferred == "tuple[str]":
                yield ctx.finding(
                    self.id,
                    node,
                    "hash() of a tuple with str/bytes elements mixes "
                    "their PYTHONHASHSEED-salted hashes and differs "
                    "between runs; hash a canonical encoding with "
                    "zlib.crc32/hashlib instead",
                )
