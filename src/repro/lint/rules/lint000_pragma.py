"""LINT000: the pragma grammar itself is linted.

An allowlist is only as trustworthy as its entries.  Three failure
modes get findings (emitted by the engine, attributed to this rule):

- **malformed** pragmas — a comment that starts ``# lint:`` but does
  not parse as ``allow[RULE-ID] -- justification`` would otherwise be
  silently ignored, which is the worst outcome: the author believes
  the grant exists;
- **justification-free** pragmas — the justification is the review
  artifact; a bare grant is indistinguishable from a shrug;
- **stale** pragmas — a grant that no longer suppresses anything
  hides the next real regression behind an old decision (the old
  audit's ``test_allowlist_entries_still_exist`` check, generalized).

The detection lives in :meth:`repro.lint.engine.LintEngine` because it
needs the token stream and the post-run suppression tallies; this
module contributes the rule identity, so LINT000 can be listed,
documented, and (unlike every other rule) never pragma-suppressed.
"""

from __future__ import annotations

from typing import Iterable

from ..engine import Finding, ModuleContext, Rule


class PragmaRule(Rule):
    id = "LINT000"
    title = "malformed, unjustified, or stale pragma"
    rationale = (
        "Pragmas are reviewed grants: they must parse, carry a "
        "justification, and still suppress something."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        # Engine-level: pragma findings need suppression results,
        # so LintEngine emits them after the other rules run.
        return ()
