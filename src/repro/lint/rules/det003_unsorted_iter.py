"""DET003: iteration over unordered collections without ``sorted()``.

Sets iterate in hash order (randomized per process for strings),
``os.listdir`` / ``Path.iterdir`` / ``glob`` return filesystem order
(whatever the OS feels like), and ``dict.keys()`` order is whatever
insertion order happened to be.  Feed any of those into accumulation,
a digest, or output and two identical runs can disagree — the exact
failure class the campaign's resume path and the golden corpus cannot
tolerate.  Wrapping the source in ``sorted()`` (or consuming it with
an order-insensitive reducer like ``len``/``sum``/``set``) makes the
order canonical and satisfies the rule.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..engine import Finding, ModuleContext, Rule

#: Filesystem-enumeration calls (by resolved origin).
_FS_ORIGINS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)

#: Filesystem-enumeration methods (any receiver; Path-style API).
_FS_METHODS = frozenset({"glob", "rglob", "iterdir"})

#: Consumers whose result cannot depend on iteration order.
_ORDER_INSENSITIVE = frozenset(
    {
        "builtins.sorted",
        "builtins.len",
        "builtins.sum",
        "builtins.min",
        "builtins.max",
        "builtins.any",
        "builtins.all",
        "builtins.set",
        "builtins.frozenset",
        "collections.Counter",
    }
)


class UnsortedIterationRule(Rule):
    id = "DET003"
    title = "iteration over an unordered source"
    rationale = (
        "Set / directory-listing / dict.keys() iteration order is "
        "not canonical; wrap the source in sorted() before it feeds "
        "accumulation, digests, or output."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            sources = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                sources.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)
            ):
                sources.extend(gen.iter for gen in node.generators)
            else:
                continue
            for source in sources:
                label = self._unordered(ctx, source)
                if label is None:
                    continue
                if self._made_canonical(ctx, node, source):
                    continue
                yield ctx.finding(
                    self.id,
                    source,
                    f"iteration over {label} without an enclosing "
                    "sorted() — the order is not canonical",
                )

    def _unordered(
        self, ctx: ModuleContext, source: ast.AST
    ) -> Optional[str]:
        """A human label when ``source`` iterates in no canonical
        order, else None."""
        if isinstance(source, (ast.Set, ast.SetComp)):
            return "a set literal"
        inferred = ctx.infer(source)
        if inferred == "set":
            return "a set"
        if isinstance(source, ast.Call):
            origin = ctx.resolve(source.func)
            if origin in _FS_ORIGINS:
                return f"'{origin}' output"
            if origin in ("builtins.set", "builtins.frozenset"):
                return "a set"
            if isinstance(source.func, ast.Attribute):
                method = source.func.attr
                if method in _FS_METHODS:
                    return f"'.{method}()' output"
                if method == "keys":
                    receiver = ctx.infer(source.func.value)
                    if receiver == "dict":
                        return "'.keys()' of a dict"
        return None

    def _made_canonical(
        self, ctx: ModuleContext, loop: ast.AST, source: ast.AST
    ) -> bool:
        """True when an enclosing call pins or neutralizes the order.

        Covers both ``sorted(path.iterdir())`` around the source and
        ``sorted(f(p) for p in path.iterdir())`` /
        ``len({...})`` around the whole comprehension.
        """
        for start in (source, loop):
            for ancestor in ctx.ancestors(start):
                if isinstance(ancestor, ast.stmt):
                    break
                if not isinstance(ancestor, ast.Call):
                    continue
                origin = ctx.resolve(ancestor.func)
                if origin in _ORDER_INSENSITIVE:
                    return True
        return False
