"""HOT001: hot-path classes must be ``__slots__``-packed.

``repro.collector.record`` and ``repro.core`` hold the per-record
types and classifier state the columnar pipeline instantiates millions
of times per simulated day.  A ``__dict__`` per instance costs ~100
bytes and a pointer chase on every attribute access; PR 1's profile
showed slotting these types was worth double-digit percent on the
materialization path.  The discipline also covers ``repro.sim`` (event
handles, timers, links, routers — the discrete-event hot path drains
millions of events per run) and the RIB data model
(``repro.bgp.rib`` / ``repro.bgp.attributes``, where a table holds one
``Route``/``PathAttributes`` per (peer, prefix)).  The out-of-core
campaign tier joins the list: ``repro.core.spill`` (covered via the
``repro/core/`` prefix) plus ``repro.campaign.fold`` and
``repro.campaign.handoff`` sit on the per-day spill/fold path and hold
per-shard accumulator state.  The parallel simulator
(``repro.sim.partition`` / ``repro.sim.parallel`` — cross-exchange
messages, partitions, shard ports) is covered via the ``repro/sim/``
prefix, and so is the trace generator (``repro/workloads/`` — pair
state, day plans, and the emission sinks the vectorized
materialization tier drives once per pair per day).  The rule keeps
the discipline from
silently eroding: every class in those modules
declares ``__slots__`` directly or via ``@dataclass(slots=True)``.
Enums, exceptions, and the other interpreter-managed layouts are
exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import Finding, ModuleContext, Rule

#: Module paths the discipline applies to (suffix match on the
#: posix-style lint-relative path).
TARGET_SUFFIXES = (
    "collector/record.py",
    "bgp/rib.py",
    "bgp/attributes.py",
    "campaign/fold.py",
    "campaign/handoff.py",
)
TARGET_DIRS = ("repro/core/", "repro/sim/", "repro/workloads/")

_EXEMPT_BASES = frozenset(
    {
        "Enum",
        "IntEnum",
        "StrEnum",
        "Flag",
        "IntFlag",
        "Exception",
        "BaseException",
        "NamedTuple",
        "TypedDict",
        "Protocol",
        "ABC",
        "type",
    }
)

_EXEMPT_SUFFIXES = ("Error", "Exception", "Warning")


def _base_name(base: ast.AST) -> str:
    """The trailing identifier of a base-class expression
    (``enum.IntEnum`` -> ``IntEnum``, ``Generic[T]`` -> ``Generic``)."""
    if isinstance(base, ast.Subscript):
        return _base_name(base.value)
    if isinstance(base, ast.Attribute):
        return base.attr
    if isinstance(base, ast.Name):
        return base.id
    return ""


def _has_slots_decorator(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(
            func, "id", ""
        )
        if name != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "slots"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


def _declares_slots(node: ast.ClassDef) -> bool:
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


class SlotsRule(Rule):
    id = "HOT001"
    title = "hot-path class without __slots__"
    rationale = (
        "Per-record, classifier-state, simulator, and RIB classes in "
        "repro.collector.record / repro.core / repro.sim / "
        "repro.bgp.{rib,attributes} are allocated or traversed "
        "millions of times; an instance __dict__ there costs memory "
        "and attribute-chase time on the hottest paths."
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        rel = ctx.rel
        if rel.endswith(TARGET_SUFFIXES):
            return True
        return any(part in rel for part in TARGET_DIRS)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = [_base_name(base) for base in node.bases]
            if any(name in _EXEMPT_BASES for name in base_names):
                continue
            if any(
                name.endswith(_EXEMPT_SUFFIXES) for name in base_names
            ):
                continue
            if _declares_slots(node) or _has_slots_decorator(node):
                continue
            yield ctx.finding(
                self.id,
                node,
                f"class '{node.name}' in a hot-path module has no "
                "__slots__ (declare one, or use "
                "@dataclass(slots=True))",
            )
