"""DET101–DET105: interprocedural determinism taint.

The per-file determinism rules (DET001–DET004) see one call site; a
pragma there asserts "this impurity never reaches a digest" — and
nothing checks the assertion.  These rules do: any function reachable
from a digest entry point (``state_digest``, ``detection_digest``,
``partition_digest``, ``combined_digest``, the golden-corpus
builders) that *transitively* reaches an impure source is a finding,
anchored at the impure source line with the full call chain in the
message.

The ids are disjoint from the per-file family on purpose: a
``# lint: allow[DET002]`` does not silence DET102.  Proving a clock
read harmless locally ("display only") and proving it unreachable
from every digest are different claims; each needs its own pragma
with its own justification.  DET105 (environment reads) has no
per-file counterpart at all — ``os.environ`` is fine in CLI glue and
only becomes a hazard when a digest can see it.
"""

from __future__ import annotations

from typing import Iterable

from ..engine import Finding, ProgramContext, ProgramRule

__all__ = [
    "TaintEnvironRule",
    "TaintGlobalRandomRule",
    "TaintSaltedHashRule",
    "TaintUnsortedIterRule",
    "TaintWallClockRule",
]


class _TaintRule(ProgramRule):
    """Shared driver: the taint pass runs once per engine run (cached
    on the ProgramContext); each id filters for its own findings."""

    def check_program(
        self, program: ProgramContext
    ) -> Iterable[Finding]:
        for payload in program.taint_findings():
            if payload["rule"] != self.id:
                continue
            yield program.finding(
                self.id,
                payload["path"],
                payload["line"],
                payload["message"],
            )


class TaintGlobalRandomRule(_TaintRule):
    id = "DET101"
    title = "global RNG reachable from a digest entry point"
    rationale = (
        "A module-level random.* draw anywhere under a digest's call "
        "graph makes the digest depend on interpreter-global RNG "
        "state.  DET001 flags the call site; DET101 proves a digest "
        "can actually reach it — route a seeded random.Random "
        "instance instead."
    )


class TaintWallClockRule(_TaintRule):
    id = "DET102"
    title = "wall-clock read reachable from a digest entry point"
    rationale = (
        "time.time()/perf_counter()/datetime.now() reachable from a "
        "digest means rerunning the same input can hash differently. "
        "A DET002 pragma claims the value is display-only; DET102 is "
        "the static check of that claim — it fires exactly when the "
        "clock read sits under state_digest/detection_digest/"
        "partition_digest/combined_digest or the golden-corpus "
        "builders, with the offending call chain in the message."
    )


class TaintUnsortedIterRule(_TaintRule):
    id = "DET103"
    title = "unsorted iteration reachable from a digest entry point"
    rationale = (
        "Set/dict/filesystem iteration order is not part of the "
        "language contract; three frames below a digest it silently "
        "reorders the bytes being hashed.  Same fix as DET003 "
        "(sorted()/canonical order), enforced transitively."
    )


class TaintSaltedHashRule(_TaintRule):
    id = "DET104"
    title = "salted hash() reachable from a digest entry point"
    rationale = (
        "builtins.hash() of str/bytes changes per process "
        "(PYTHONHASHSEED); feeding it into anything a digest reaches "
        "breaks cross-run stability.  Use hashlib or the repo's "
        "stable-hash helpers."
    )


class TaintEnvironRule(_TaintRule):
    id = "DET105"
    title = "environment read reachable from a digest entry point"
    rationale = (
        "os.environ/os.getenv under a digest makes the result depend "
        "on host configuration.  There is deliberately no per-file "
        "rule for environment reads — they are legitimate in CLI "
        "glue — so this interprocedural check is the only line of "
        "defense."
    )
