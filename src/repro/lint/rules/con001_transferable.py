"""CON001: the process-boundary transfer contract.

Three modules ship values between processes — the campaign pool
(``campaign/runner.py`` + ``campaign/handoff.py``) and the parallel
simulation's worker pipes (``sim/parallel.py``).  Everything that
crosses one of those seams is serialized, so its type is part of a
*protocol*, not an implementation detail: a field added to a class
one side pickles is a silent wire-format change.  The contract,
extending the ``COMMUTATIVE_MERGES`` registry idea:

- every seam module declares a module-level ``TRANSFERABLE_TYPES``
  tuple naming the project classes allowed to cross its boundary;
- a value whose inferred type is a project class (directly or inside
  a tuple/list payload) sent through ``conn.send(...)``, or named in
  a worker target's parameter/return annotations, must appear in the
  union of the declared registries;
- worker target callables (``Process(target=...)``, pool
  ``imap``/``imap_unordered``/``map``/``apply_async``/... first
  arguments) must be module-level project functions — not lambdas,
  nested closures, or bound methods, which drag their enclosing state
  into the pickle — and must not declare ``global`` or read
  module-global mutable state (fork shares it by accident, spawn
  silently re-initializes it; neither is a contract).

Unknown types stay innocent (the repo-wide "prefer false negatives"
rule): the checks fire only on types the conservative inference can
actually prove.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from ..engine import Finding, ModuleContext, ProgramContext, ProgramRule

__all__ = ["TransferableRule"]

REGISTRY_NAME = "TRANSFERABLE_TYPES"

#: The worker seams (lint-root-relative path suffixes).
TARGET_SUFFIXES = (
    "campaign/handoff.py",
    "campaign/runner.py",
    "sim/parallel.py",
)

#: Pool methods whose first positional argument runs in a worker.
_POOL_METHODS = frozenset(
    {
        "apply",
        "apply_async",
        "imap",
        "imap_unordered",
        "map",
        "map_async",
        "starmap",
        "starmap_async",
    }
)

#: Module-level value shapes treated as mutable global state.
_MUTABLE_CALLS = frozenset(
    {
        "builtins.dict",
        "builtins.list",
        "builtins.set",
        "collections.defaultdict",
        "collections.deque",
        "collections.OrderedDict",
        "collections.Counter",
    }
)


def _seam_files(program: ProgramContext) -> List[str]:
    return sorted(
        rel
        for _path, rel in program.files
        if rel.endswith(TARGET_SUFFIXES)
    )


class TransferableRule(ProgramRule):
    id = "CON001"
    title = "unregistered type or stateful callable at a worker seam"
    rationale = (
        "Values crossing campaign/handoff.py, campaign/runner.py, or "
        "sim/parallel.py worker boundaries are wire format: each seam "
        "module must declare TRANSFERABLE_TYPES, every project class "
        "that crosses must be registered there, and worker targets "
        "must be module-level functions free of module-global mutable "
        "state — a closure or global sneaking through the pickle is "
        "exactly the nondeterminism the handoff digests exist to "
        "catch at runtime; this catches it before."
    )

    def check_program(
        self, program: ProgramContext
    ) -> Iterable[Finding]:
        seams = _seam_files(program)
        if not seams:
            return
        allowed = self._allowed_types(program, seams)
        for rel in seams:
            summary = self._summary_for(program, rel)
            ctx = program.context(rel)
            if summary is None or ctx is None:
                continue
            registry = summary.registries.get(REGISTRY_NAME)
            if not registry:
                yield program.finding(
                    self.id,
                    rel,
                    1,
                    f"worker-seam module declares no {REGISTRY_NAME} "
                    "registry: every type crossing this process "
                    "boundary must be named in a module-level "
                    f"{REGISTRY_NAME} tuple",
                )
                continue
            yield from self._check_seam(program, rel, ctx, allowed)

    # -- registry -----------------------------------------------------------

    def _summary_for(self, program: ProgramContext, rel: str):
        from ..semantic import module_name_for

        return program.index.by_module.get(module_name_for(rel))

    def _allowed_types(
        self, program: ProgramContext, seams: List[str]
    ) -> frozenset:
        allowed = set()
        for rel in seams:
            summary = self._summary_for(program, rel)
            if summary is None:
                continue
            for dotted in summary.registries.get(REGISTRY_NAME, ()):
                resolved = program.index.resolve_ref(dotted)
                if resolved is not None and resolved[0] == "class":
                    allowed.add(resolved[1])
                else:
                    allowed.add(dotted)
        return frozenset(allowed)

    # -- seam checks --------------------------------------------------------

    def _check_seam(
        self,
        program: ProgramContext,
        rel: str,
        ctx: ModuleContext,
        allowed: frozenset,
    ) -> Iterable[Finding]:
        units = _function_units(ctx)
        mutable_globals = _mutable_globals(ctx)
        worker_targets: List[Tuple[ast.AST, Optional[ast.expr]]] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _worker_target(node)
            if target is not None:
                worker_targets.append((node, target))
        checked: set = set()
        for call, target in worker_targets:
            yield from self._check_target(
                program,
                rel,
                ctx,
                call,
                target,
                units,
                mutable_globals,
                allowed,
                checked,
            )
        yield from self._check_sends(program, rel, ctx, units, allowed)

    def _check_target(
        self,
        program: ProgramContext,
        rel: str,
        ctx: ModuleContext,
        call: ast.Call,
        target: ast.expr,
        units: Dict[str, ast.AST],
        mutable_globals: frozenset,
        allowed: frozenset,
        checked: set,
    ) -> Iterable[Finding]:
        if isinstance(target, ast.Lambda):
            yield program.finding(
                self.id,
                rel,
                target.lineno,
                "worker target is a lambda: targets must be "
                "module-level functions (closures smuggle enclosing "
                "state across the process boundary)",
            )
            return
        if not isinstance(target, ast.Name):
            # Bound methods / attribute targets pickle their instance.
            if isinstance(target, ast.Attribute):
                yield program.finding(
                    self.id,
                    rel,
                    target.lineno,
                    "worker target is a bound attribute: targets must "
                    "be module-level functions (the receiver object "
                    "would be pickled into every worker)",
                )
            return
        name = target.id
        func_node = units.get(name)
        if func_node is None:
            # Imported or unknown target: resolvable project functions
            # in other modules stay fair game for the registry check;
            # unknown names stay innocent.
            return
        if name in checked:
            return
        checked.add(name)
        if not _is_module_level(ctx, func_node):
            yield program.finding(
                self.id,
                rel,
                call.lineno,
                f"worker target {name}() is not module-level: nested "
                "functions capture their defining frame and cannot "
                "cross the process boundary cleanly",
            )
            return
        for stmt in ast.walk(func_node):
            if isinstance(stmt, ast.Global):
                yield program.finding(
                    self.id,
                    rel,
                    stmt.lineno,
                    f"worker target {name}() declares global "
                    f"{', '.join(stmt.names)}: workers must not "
                    "mutate parent-module state (fork shares it by "
                    "accident, spawn discards it)",
                )
        yield from self._check_global_reads(
            program, rel, func_node, name, mutable_globals
        )
        yield from self._check_annotations(
            program, rel, func_node, name, allowed
        )

    def _check_global_reads(
        self,
        program: ProgramContext,
        rel: str,
        func_node: ast.AST,
        name: str,
        mutable_globals: frozenset,
    ) -> Iterable[Finding]:
        if not mutable_globals:
            return
        local = _local_names(func_node)
        reported = set()
        for node in ast.walk(func_node):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in mutable_globals
                and node.id not in local
                and node.id not in reported
            ):
                reported.add(node.id)
                yield program.finding(
                    self.id,
                    rel,
                    node.lineno,
                    f"worker target {name}() reads module-global "
                    f"mutable state ({node.id}): worker inputs must "
                    "arrive through arguments, not shared module "
                    "state",
                )

    def _check_annotations(
        self,
        program: ProgramContext,
        rel: str,
        func_node: ast.AST,
        name: str,
        allowed: frozenset,
    ) -> Iterable[Finding]:
        """Worker-function signatures are the declared wire format:
        any project class they name must be registered."""
        from ..semantic.symbols import unit_typer

        typer = unit_typer(program.context(rel), func_node)
        annotations = [
            (param.annotation, f"parameter {param.arg!r}")
            for param in (
                list(func_node.args.posonlyargs)
                + list(func_node.args.args)
                + list(func_node.args.kwonlyargs)
            )
            if param.annotation is not None
        ]
        if func_node.returns is not None:
            annotations.append((func_node.returns, "return value"))
        for annotation, what in annotations:
            desc = _annotation_desc(typer, annotation)
            for fqn in _unregistered(program, desc, allowed):
                yield program.finding(
                    self.id,
                    rel,
                    annotation.lineno,
                    f"worker target {name}()'s {what} carries "
                    f"{fqn} across the process boundary but it is "
                    f"not registered in {REGISTRY_NAME}",
                )

    def _check_sends(
        self,
        program: ProgramContext,
        rel: str,
        ctx: ModuleContext,
        units: Dict[str, ast.AST],
        allowed: frozenset,
    ) -> Iterable[Finding]:
        """Every ``<pipe>.send(x)`` in a seam module ships ``x`` to
        another process: type it and hold it to the registry."""
        from ..semantic.symbols import unit_typer

        typers: Dict[int, object] = {}
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "send"
                and len(node.args) == 1
            ):
                continue
            owner, cls_name = _enclosing_function(ctx, node)
            if owner is None:
                continue
            typer = typers.get(id(owner))
            if typer is None:
                typer = unit_typer(ctx, owner, cls_name)
                typers[id(owner)] = typer
            desc = typer.expr_type(node.args[0])
            for fqn in _unregistered(program, desc, allowed):
                yield program.finding(
                    self.id,
                    rel,
                    node.lineno,
                    f"conn.send() payload carries {fqn} across the "
                    "process boundary but it is not registered in "
                    f"{REGISTRY_NAME}",
                )


# -- helpers (module-level so they stay import-light) -----------------------


def _worker_target(call: ast.Call) -> Optional[ast.expr]:
    """The callable a Call ships to a worker, if it ships one."""
    func = call.func
    is_process = (
        isinstance(func, ast.Attribute) and func.attr == "Process"
    ) or (isinstance(func, ast.Name) and func.id == "Process")
    if is_process:
        for keyword in call.keywords:
            if keyword.arg == "target":
                return keyword.value
        return None
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _POOL_METHODS
        and call.args
    ):
        return call.args[0]
    return None


def _function_units(ctx: ModuleContext) -> Dict[str, ast.AST]:
    """Every named function def in the file (any nesting), by name."""
    units: Dict[str, ast.AST] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            units.setdefault(node.name, node)
    return units


def _is_module_level(ctx: ModuleContext, func_node: ast.AST) -> bool:
    return ctx.parent(func_node) is ctx.tree


def _local_names(func_node: ast.AST) -> frozenset:
    names = set()
    args = func_node.args
    for param in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + [a for a in (args.vararg, args.kwarg) if a is not None]
    ):
        names.add(param.arg)
    for node in ast.walk(func_node):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.add(node.name)
    return frozenset(names)


def _mutable_globals(ctx: ModuleContext) -> frozenset:
    """Module-level names bound to mutable containers."""
    found = set()
    for node in ctx.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        mutable = isinstance(
            value,
            (
                ast.Dict,
                ast.List,
                ast.Set,
                ast.DictComp,
                ast.ListComp,
                ast.SetComp,
            ),
        )
        if isinstance(value, ast.Call):
            origin = ctx.resolve(value.func)
            mutable = origin in _MUTABLE_CALLS
        if not mutable:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                found.add(target.id)
    return frozenset(found)


def _enclosing_function(
    ctx: ModuleContext, node: ast.AST
) -> Tuple[Optional[ast.AST], Optional[str]]:
    """The nearest enclosing (named) function def and, when it is a
    method, its class name."""
    owner: Optional[ast.AST] = None
    for ancestor in ctx.ancestors(node):
        if owner is None and isinstance(
            ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            owner = ancestor
        elif owner is not None and isinstance(ancestor, ast.ClassDef):
            return owner, ancestor.name
        elif owner is not None:
            return owner, None
    return owner, None


def _annotation_desc(typer, annotation: ast.AST) -> dict:
    from ..semantic.symbols import _annotation_descriptor

    return _annotation_descriptor(annotation, typer.s.resolve_name)


def _unregistered(
    program: ProgramContext, desc: Optional[dict], allowed: frozenset
) -> List[str]:
    """Project-class fqns in ``desc`` missing from the registry."""
    concrete = program.index.concrete_type(desc)
    offenders: List[str] = []
    _walk_concrete(concrete, allowed, offenders, set())
    return sorted(set(offenders))


def _walk_concrete(
    concrete: Optional[dict],
    allowed: frozenset,
    offenders: List[str],
    seen: set,
) -> None:
    if concrete is None:
        return
    kind = concrete.get("k")
    if kind == "class":
        fqn = concrete["fqn"]
        if fqn not in allowed and fqn not in seen:
            seen.add(fqn)
            offenders.append(fqn)
        return
    if kind == "container":
        for arg in concrete.get("args", []):
            _walk_concrete(arg, allowed, offenders, seen)
