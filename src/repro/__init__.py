"""repro: a reproduction of "Internet Routing Instability"
(Labovitz, Malan, Jahanian; SIGCOMM 1997).

The package provides, from the bottom up:

- :mod:`repro.net` — IP prefixes, radix tries, CIDR aggregation;
- :mod:`repro.bgp` — the BGP-4 protocol substrate (messages, wire
  codec, FSM, RIBs, policy, route-flap damping);
- :mod:`repro.sim` — a discrete-event simulator with the paper's §4.2
  pathology mechanisms (stateless BGP, unjittered timers, CSU links,
  IGP redistribution loops, flap storms, self-synchronization);
- :mod:`repro.topology` — Internet-shaped AS graphs and the five
  measured exchange points;
- :mod:`repro.collector` — the Routing Arbiter-style measurement
  apparatus (update records, MRT-flavoured archives);
- :mod:`repro.workloads` — the calibrated statistical generator for
  month-scale campaigns;
- :mod:`repro.analysis` — the paper's analyses (classification,
  density, FFT/MEM/SSA spectra, inter-arrival histograms, ...);
- :mod:`repro.core` — the update taxonomy and streaming classifier
  (the paper's primary analytical contribution);
- :mod:`repro.experiments` — one runner per paper table and figure.

Quick start::

    from repro.core import classify, CategoryCounts
    from repro.workloads import TraceGenerator

    generator = TraceGenerator(seed=1)
    counts = CategoryCounts()
    counts.extend(classify(generator.day_records(0, pair_fraction=0.01)))
    print(counts.as_dict(), counts.pathological_fraction)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
