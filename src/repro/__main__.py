"""Command-line interface: run reproduction experiments and tooling.

Usage::

    python -m repro list                 # list experiment ids
    python -m repro run figure8          # run one, print its report
    python -m repro run all              # run everything
    python -m repro report -o EXPERIMENTS.md   # regenerate the
                                               # paper-vs-measured index
    python -m repro simulate -o day.mrt --hours 2   # simulate an
                                               # exchange, write an
                                               # RFC 6396 MRT archive
    python -m repro classify day.mrt     # classify an archive and
                                               # print the taxonomy
"""

from __future__ import annotations

import argparse
import sys
import time

from .core.report import ExperimentResult, format_number
from .experiments import EXPERIMENTS, experiment_ids, run_experiment

#: Paper context shown in the generated report, per experiment.
_PAPER_CONTEXT = {
    "table1": "Most ISPs withdraw >>10x what they announce; ISP-I: 259 "
              "announced / 2,479,023 withdrawn / 14,112 unique prefixes.",
    "figure1": "Five U.S. exchange points; Mae-East largest (60+ providers, "
               "route servers peer with >90%).",
    "figure2": "AADup and WADup consistently dominate the non-WWDup "
               "update mix, April-September.",
    "figure3": "Diurnal + weekend structure; late-May upgrade lines; 10am "
               "maintenance line; threshold 345->770 per 10-min bin.",
    "figure4": "Bell-shaped weekday curves, quiet weekends, a localized "
               "Saturday spike (Aug 3-9, 1996).",
    "figure5": "FFT and MEM spectra agree on significant frequencies at "
               "24 hours and 7 days; SSA's top five lines confirm.",
    "figure6": "Update share uncorrelated with routing-table share; no "
               "consistent dominator AS in any category.",
    "figure7": "80-100% of daily instability from Prefix+AS pairs seen "
               "<50 times; WADiff plateaus fastest; Aug-11 dominator day.",
    "figure8": "30-second and 1-minute bins hold ~half the inter-arrival "
               "mass in every category.",
    "figure9": "3-10% of routes see a WADiff per day, 5-20% an AADiff; "
               "35-100% (median 50%) see some update; >80% stable.",
    "figure10": "Multi-homed prefixes grow ~linearly April-December; "
                ">25% of prefixes multi-homed; late-May spike; data gap.",
    "pathology": "3-6M updates/day vs 42k prefixes; 0.5-6M WWDups/day; "
                 "~99% pathological; stateless fix: 2M -> 1905 "
                 "withdrawals; 300 updates/s crashes a router.",
    "ablation-damping": "Damping suppresses flap updates but delays "
                        "legitimate re-announcements (section 3).",
    "ablation-aggregation": "Aggregation hides customer instability "
                            "inside supernets (sections 3, 4.1).",
    "ablation-routeserver": "Route servers reduce O(N^2) bilateral "
                            "sessions to O(N) (section 3).",
    "ablation-sync": "Unjittered periodic timers self-synchronize "
                     "(Floyd-Jacobson; section 4.2).",
    "ablation-storm": "Keepalive prioritization contains route-flap "
                      "storms (section 3).",
    "crossexchange": "Results at one exchange are representative of "
                     "the others - same category mix, different "
                     "volumes (section 5).",
    "ablation-cache": "Instability churns route caches, causing misses "
                      "and packet loss; full-table forwarding hardware "
                      "is churn-immune (section 3).",
    "ablation-filter": "Filtering long prefixes trades away multi-homed\n"
                       "reachability for stability (section 3).",
    "ablation-convergence": "Instability delays network convergence; "
                            "the MRAI setting trades update volume "
                            "against settle time (sections 1, 6).",
}


def _render_markdown(name: str, result: ExperimentResult, elapsed: float) -> str:
    lines = [f"## {name}: {result.description}", ""]
    context = _PAPER_CONTEXT.get(name)
    if context:
        lines.append(f"**Paper:** {context}")
        lines.append("")
    if result.expectations:
        lines.append("| measurement | measured | paper expectation | status |")
        lines.append("|---|---|---|---|")
        for key, value in result.measurements.items():
            expected = result.expectations.get(key)
            if expected is None:
                continue
            if isinstance(expected, tuple):
                expect_text = (
                    f"{format_number(expected[0])} .. "
                    f"{format_number(expected[1])}"
                )
            else:
                expect_text = format_number(expected)
            status = "ok" if result.check(key) else "**MISMATCH**"
            lines.append(
                f"| {key} | {format_number(value)} | {expect_text} "
                f"| {status} |"
            )
        lines.append("")
    for note in result.notes:
        lines.append(f"*{note}*")
        lines.append("")
    lines.append(f"(runtime: {elapsed:.1f}s; regenerate with "
                 f"`pytest benchmarks/bench_{name.replace('-', '_') if name.startswith('ablation') else name}.py --benchmark-only` "
                 f"or `python -m repro run {name}`)")
    lines.append("")
    return "\n".join(lines)


_REPORT_HEADER = """\
# EXPERIMENTS — paper vs. measured

Generated by ``python -m repro report``.  Every table and figure of
*Internet Routing Instability* (Labovitz, Malan, Jahanian; SIGCOMM
1997) has a runner in ``repro.experiments`` and a benchmark in
``benchmarks/``; this file records the shape comparison between the
paper's reported values and what the reproduction measures.

Absolute volumes marked "scaled" come from event simulations run for
hours rather than days and tables of tens of prefixes rather than
42,000 — per DESIGN.md, the reproduction target for those experiments
is the *structure* (ratios, orderings, periodicities, distribution
shapes), not raw counts.  The statistical tier (figures 2-9) is
calibrated to the paper's absolute magnitudes and is compared directly.

"""


def cmd_list() -> int:
    for name in experiment_ids():
        print(name)
    return 0


def cmd_run(names) -> int:
    if names == ["all"]:
        names = experiment_ids()
    status = 0
    for name in names:
        started = time.time()
        result = run_experiment(name)
        print(result.render())
        print(f"[{name} finished in {time.time() - started:.1f}s]")
        print()
        if not all(result.all_checks().values()):
            status = 1
    return status


def cmd_report(output: str) -> int:
    sections = [_REPORT_HEADER]
    status = 0
    for name in experiment_ids():
        started = time.time()
        print(f"running {name}...", file=sys.stderr, flush=True)
        result = run_experiment(name)
        elapsed = time.time() - started
        sections.append(_render_markdown(name, result, elapsed))
        if not all(result.all_checks().values()):
            status = 1
    text = "\n".join(sections)
    with open(output, "w") as f:
        f.write(text)
    print(f"wrote {output}", file=sys.stderr)
    return status


def cmd_simulate(output: str, hours: float, seed: int) -> int:
    """Run the Table-1-style exchange scenario and archive the updates
    the route server logged, in standard RFC 6396 BGP4MP format."""
    from .collector.mrt_rfc import write_bgp4mp
    from .experiments import table1

    print(
        f"simulating {hours:.1f} hours at the exchange "
        f"(seed {seed})...", file=sys.stderr,
    )
    # Reuse the Table 1 scenario machinery but capture the sink.
    import repro.experiments.table1 as table1_module

    sink_holder = {}
    original_memlog = table1_module.MemoryLog

    class _CapturingLog(original_memlog):
        def __init__(self):
            super().__init__()
            sink_holder["sink"] = self

    table1_module.MemoryLog = _CapturingLog
    try:
        table1_module.run(duration=hours * 3600.0, seed=seed)
    finally:
        table1_module.MemoryLog = original_memlog
    records = sink_holder["sink"].sorted_by_time()
    with open(output, "wb") as stream:
        count = write_bgp4mp(stream, records)
    print(f"wrote {count} updates to {output}", file=sys.stderr)
    return 0


def cmd_classify(path: str) -> int:
    """Read an RFC 6396 BGP4MP archive, classify it, print the
    taxonomy breakdown — the library as a bgpdump-style tool."""
    from .collector.mrt_rfc import read_bgp4mp
    from .core.classifier import classify
    from .core.instability import CategoryCounts

    counts = CategoryCounts()
    with open(path, "rb") as stream:
        for update in classify(read_bgp4mp(stream)):
            counts.add(update)
    print(f"{path}: {counts.total} updates")
    for name, value in counts.as_dict().items():
        if value:
            share = value / counts.total
            print(f"  {name:15s} {value:10,d}  ({share:6.1%})")
    print(f"  {'instability':15s} {counts.instability:10,d}")
    print(f"  {'pathological':15s} {counts.pathological:10,d}  "
          f"({counts.pathological_fraction:6.1%})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run_parser = sub.add_parser("run", help="run experiments")
    run_parser.add_argument("names", nargs="+", help="ids, or 'all'")
    report_parser = sub.add_parser(
        "report", help="run everything, write the markdown index"
    )
    report_parser.add_argument("-o", "--output", default="EXPERIMENTS.md")
    sim_parser = sub.add_parser(
        "simulate", help="simulate an exchange day, write an MRT archive"
    )
    sim_parser.add_argument("-o", "--output", default="exchange.mrt")
    sim_parser.add_argument("--hours", type=float, default=1.0)
    sim_parser.add_argument("--seed", type=int, default=7)
    classify_parser = sub.add_parser(
        "classify", help="classify an RFC 6396 BGP4MP archive"
    )
    classify_parser.add_argument("path")
    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args.names)
    if args.command == "simulate":
        return cmd_simulate(args.output, args.hours, args.seed)
    if args.command == "classify":
        return cmd_classify(args.path)
    return cmd_report(args.output)


if __name__ == "__main__":
    sys.exit(main())
