"""IP addressing substrate: prefixes, radix tries, aggregation, allocation."""

from .prefix import MAX_PREFIX_LENGTH, Prefix, PrefixError, common_supernet, parse_many
from .radix import RadixTree
from .aggregation import (
    aggregate,
    aggregation_ratio,
    covering_set,
    deaggregate,
    punch_hole,
)
from .addressing import (
    AddressExhausted,
    AddressPlan,
    ProviderBlockAllocator,
    SwampAllocator,
    provider_allocator,
)

__all__ = [
    "MAX_PREFIX_LENGTH",
    "Prefix",
    "PrefixError",
    "common_supernet",
    "parse_many",
    "RadixTree",
    "aggregate",
    "aggregation_ratio",
    "covering_set",
    "deaggregate",
    "punch_hole",
    "AddressExhausted",
    "AddressPlan",
    "ProviderBlockAllocator",
    "SwampAllocator",
    "provider_allocator",
]
