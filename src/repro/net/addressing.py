"""Address-space allocation models.

The paper attributes part of the Internet's poor aggregation to *how
address space was allocated*: pre-CIDR "swamp" space was handed to end
sites directly by the InterNIC (so it cannot be aggregated by any
provider), while post-CIDR space is carved from provider blocks (so a
provider can announce one supernet).  The topology builder uses this
module to give each simulated AS a realistic mix of both kinds of space,
which in turn determines how many globally-visible prefixes it announces
and how well it can hide customer instability.

Two allocators are provided:

- :class:`ProviderBlockAllocator` — hands each provider a large CIDR
  block and sub-allocates customer prefixes from it.
- :class:`SwampAllocator` — hands out scattered, unaggregatable /24s from
  the classic 192/8 swamp.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from .prefix import MAX_PREFIX_LENGTH, Prefix

__all__ = [
    "AddressExhausted",
    "ProviderBlockAllocator",
    "SwampAllocator",
    "AddressPlan",
]


class AddressExhausted(RuntimeError):
    """Raised when an allocator has no space left at the requested size."""


class ProviderBlockAllocator:
    """Sequentially sub-allocates prefixes out of one provider CIDR block.

    Allocation is a simple first-fit bump allocator aligned to the
    requested prefix size — adequate because simulated providers allocate
    customers in arrival order, exactly how early provider blocks filled.
    """

    def __init__(self, block: Prefix) -> None:
        self.block = block
        self._cursor = block.network

    def allocate(self, length: int) -> Prefix:
        """Allocate the next free ``/length`` from the block."""
        if length < self.block.length or length > MAX_PREFIX_LENGTH:
            raise AddressExhausted(
                f"cannot allocate /{length} from {self.block}"
            )
        size = 1 << (MAX_PREFIX_LENGTH - length)
        # Align the cursor up to the allocation size.
        aligned = (self._cursor + size - 1) & ~(size - 1)
        if aligned + size - 1 > self.block.broadcast:
            raise AddressExhausted(
                f"{self.block} exhausted for /{length}"
            )
        self._cursor = aligned + size
        return Prefix(aligned, length)

    @property
    def remaining_addresses(self) -> int:
        """Addresses not yet handed out."""
        return self.block.broadcast - self._cursor + 1

    def allocate_many(self, length: int, count: int) -> List[Prefix]:
        """Allocate ``count`` consecutive ``/length`` prefixes."""
        return [self.allocate(length) for _ in range(count)]


class SwampAllocator:
    """Hands out scattered /24s from pre-CIDR class-C space.

    Swamp allocations are deliberately shuffled so consecutive requests
    land far apart and can never aggregate — matching the paper's
    description of early InterNIC allocations.
    """

    #: The classic class-C swamp, 192.0.0.0/8 through 205.0.0.0/8.
    SWAMP_BLOCKS = (
        Prefix.parse("192.0.0.0/8"),
        Prefix.parse("193.0.0.0/8"),
        Prefix.parse("198.0.0.0/8"),
        Prefix.parse("199.0.0.0/8"),
        Prefix.parse("202.0.0.0/8"),
        Prefix.parse("204.0.0.0/8"),
    )

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng or random.Random(0)
        self._free: List[int] = []
        self._block_iter = iter(self.SWAMP_BLOCKS)

    def _refill(self) -> None:
        block = next(self._block_iter, None)
        if block is None:
            raise AddressExhausted("swamp space exhausted")
        networks = [p.network for p in block.subnets(24)]
        self._rng.shuffle(networks)
        self._free.extend(networks)

    def allocate(self) -> Prefix:
        """Allocate one scattered /24."""
        if not self._free:
            self._refill()
        return Prefix(self._free.pop(), 24)

    def allocate_many(self, count: int) -> List[Prefix]:
        """Allocate ``count`` scattered /24s."""
        return [self.allocate() for _ in range(count)]


@dataclass
class AddressPlan:
    """The address holdings of one simulated autonomous system.

    ``aggregates`` are the provider-block supernets the AS can announce
    on behalf of well-behaved single-homed customers; ``specifics`` are
    prefixes that must stay globally visible (swamp space plus
    multi-homed customer blocks punched out of aggregates).
    """

    aggregates: List[Prefix] = field(default_factory=list)
    specifics: List[Prefix] = field(default_factory=list)

    @property
    def announced(self) -> List[Prefix]:
        """Everything this AS originates into BGP."""
        return sorted(set(self.aggregates) | set(self.specifics))

    @property
    def prefix_count(self) -> int:
        return len(set(self.aggregates) | set(self.specifics))


#: Provider blocks assigned to simulated backbones, spaced across the
#: post-CIDR address ranges (RFC 1466 style 8-bit-aligned /8 carving).
PROVIDER_BLOCK_BASES = tuple(
    Prefix(base << 24, 8)
    for base in (12, 24, 38, 63, 64, 128, 134, 140, 152, 160, 166, 170)
)


def provider_allocator(index: int) -> ProviderBlockAllocator:
    """A deterministic allocator for the ``index``-th provider.

    Providers beyond the base-block list split later /8s into /10s so an
    arbitrary number of providers can be accommodated.
    """
    bases = PROVIDER_BLOCK_BASES
    if index < len(bases):
        return ProviderBlockAllocator(bases[index])
    overflow = index - len(bases)
    block8 = Prefix((208 + overflow // 4) << 24, 8)
    sub = list(block8.subnets(10))[overflow % 4]
    return ProviderBlockAllocator(sub)
