"""CIDR aggregation (supernetting).

The paper repeatedly ties instability to the *quality of aggregation*: a
well-aggregated provider announces a few supernets and absorbs customer
flaps internally, while a poorly-aggregated provider leaks every /24.
This module implements the aggregation machinery both the topology
builder and the aggregation-ablation benchmark use:

- :func:`aggregate` — maximal pairwise merging of sibling prefixes
  (classic CIDR supernetting), optionally constrained to a minimum
  prefix length.
- :func:`aggregation_ratio` — how much a prefix set shrinks when
  aggregated; the paper's informal "quality of aggregation" measure.
- :func:`deaggregate` — split a supernet into more-specifics, modelling
  multi-homing-driven breakup of aggregate blocks.
- :func:`covering_set` — remove prefixes already covered by another
  member (route-table redundancy elimination).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from .prefix import Prefix, PrefixError

__all__ = [
    "aggregate",
    "aggregation_ratio",
    "covering_set",
    "deaggregate",
]


def aggregate(
    prefixes: Iterable[Prefix],
    min_length: int = 0,
) -> List[Prefix]:
    """Maximally merge ``prefixes`` into the smallest equivalent set.

    Two prefixes merge when they are siblings (the two halves of one
    supernet); merging repeats until fixpoint.  Prefixes covered by
    another member are dropped.  ``min_length`` stops merging above a
    given mask length (providers do not announce their whole CIDR block
    as 0.0.0.0/0).

    The result covers exactly the same address space as the input.
    """
    current: Set[Prefix] = set(prefixes)
    # Drop covered more-specifics first so sibling merging sees the
    # minimal covering set.
    current = set(covering_set(current))
    changed = True
    while changed:
        changed = False
        merged: Set[Prefix] = set()
        done: Set[Prefix] = set()
        # Sorted so each pass visits prefixes in canonical address
        # order (the merge is confluent, but the discipline is cheap
        # and makes the pass order a non-question — DET003).
        for prefix in sorted(current):
            if prefix in done:
                continue
            sibling = None
            if prefix.length > min_length and prefix.length > 0:
                sibling = prefix.sibling()
            if sibling is not None and sibling in current and sibling not in done:
                merged.add(prefix.supernet())
                done.add(prefix)
                done.add(sibling)
                changed = True
            else:
                merged.add(prefix)
                done.add(prefix)
        if changed:
            # A merge can create a prefix covering other members, and can
            # enable further sibling merges; re-minimize and loop.
            current = set(covering_set(merged))
        else:
            current = merged
    return sorted(current)


def covering_set(prefixes: Iterable[Prefix]) -> List[Prefix]:
    """The subset of ``prefixes`` not covered by any other member.

    Sorted output (address order, shortest first within an address).
    """
    ordered = sorted(set(prefixes))  # shorter prefixes sort first per network
    result: List[Prefix] = []
    for prefix in ordered:
        if result and result[-1].covers(prefix):
            continue
        # Earlier entries with lower network addresses may still cover us;
        # only the most recent kept entry can, because kept entries are
        # disjoint and sorted.
        result.append(prefix)
    return result


def aggregation_ratio(prefixes: Sequence[Prefix]) -> float:
    """How well a prefix set aggregates: ``len(aggregated) / len(input)``.

    1.0 means no aggregation possible; small values mean the set collapses
    into few supernets.  Returns 1.0 for an empty input.
    """
    unique = set(prefixes)
    if not unique:
        return 1.0
    return len(aggregate(unique)) / len(unique)


def deaggregate(prefix: Prefix, new_length: int) -> List[Prefix]:
    """Split ``prefix`` into all its ``/new_length`` components.

    Models the multi-homing-driven breakup of aggregates the paper
    describes (§3): a multi-homed customer's /24 must be globally
    visible, so the provider's covering /16 no longer suffices.
    """
    if new_length < prefix.length:
        raise PrefixError(
            f"cannot deaggregate {prefix} to shorter /{new_length}"
        )
    return list(prefix.subnets(new_length))


def punch_hole(prefix: Prefix, hole: Prefix) -> List[Prefix]:
    """The minimal prefix set covering ``prefix`` minus ``hole``.

    Used when a multi-homed customer takes its block to another provider:
    the original provider keeps announcing the rest of its aggregate.
    """
    if not prefix.covers(hole):
        raise PrefixError(f"{hole} is not inside {prefix}")
    remainder: List[Prefix] = []
    current = hole
    while current != prefix:
        remainder.append(current.sibling())
        current = current.supernet()
    return sorted(remainder)


def table_compression_report(
    tables: Dict[str, Sequence[Prefix]],
) -> Dict[str, float]:
    """Per-origin aggregation ratios for a set of named prefix tables.

    Convenience used by the aggregation-quality ablation: maps each name
    (e.g. an AS) to :func:`aggregation_ratio` of its announced prefixes.
    """
    return {
        name: aggregation_ratio(list(prefixes))
        for name, prefixes in tables.items()
    }
