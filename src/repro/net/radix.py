"""Patricia/radix trie keyed by IPv4 prefixes.

The routing tables in this reproduction — router Loc-RIBs, route-server
views, the classifier's per-prefix state — all need longest-prefix match
and covered-prefix enumeration.  This is the classic binary radix trie used
by real routing software, implemented with path compression (internal
nodes exist only at branching points or where values are stored).

The trie maps :class:`~repro.net.prefix.Prefix` keys to arbitrary values.
It supports exact lookup, longest-prefix match on addresses or prefixes,
subtree enumeration, and deletion with node merging.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from .prefix import MAX_PREFIX_LENGTH, Prefix

__all__ = ["RadixTree"]

V = TypeVar("V")

_SENTINEL = object()


class _Node(Generic[V]):
    """A trie node covering ``prefix``; may or may not hold a value."""

    __slots__ = ("prefix", "value", "left", "right")

    def __init__(self, prefix: Prefix) -> None:
        self.prefix = prefix
        self.value: object = _SENTINEL
        self.left: Optional["_Node[V]"] = None
        self.right: Optional["_Node[V]"] = None

    @property
    def has_value(self) -> bool:
        return self.value is not _SENTINEL


def _branch_bit(prefix: Prefix, node_prefix: Prefix) -> int:
    """The child slot (0/1) under ``node_prefix`` on the way to ``prefix``."""
    return prefix.bit(node_prefix.length)


class RadixTree(Generic[V]):
    """A path-compressed binary trie from prefixes to values.

    Examples
    --------
    >>> tree = RadixTree()
    >>> tree[Prefix.parse("10.0.0.0/8")] = "supernet"
    >>> tree[Prefix.parse("10.1.0.0/16")] = "more specific"
    >>> tree.lookup_best(Prefix.parse("10.1.2.0/24")).value
    'more specific'
    """

    def __init__(self) -> None:
        self._root: Optional[_Node[V]] = None
        self._size = 0

    # -- basic protocol ------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, prefix: Prefix) -> bool:
        node = self._find_exact(prefix)
        return node is not None and node.has_value

    def __getitem__(self, prefix: Prefix) -> V:
        node = self._find_exact(prefix)
        if node is None or not node.has_value:
            raise KeyError(prefix)
        return node.value  # type: ignore[return-value]

    def __setitem__(self, prefix: Prefix, value: V) -> None:
        self.insert(prefix, value)

    def __delitem__(self, prefix: Prefix) -> None:
        if not self.delete(prefix):
            raise KeyError(prefix)

    def __iter__(self) -> Iterator[Prefix]:
        for prefix, _ in self.items():
            yield prefix

    def get(self, prefix: Prefix, default: Optional[V] = None) -> Optional[V]:
        """The value stored exactly at ``prefix``, or ``default``."""
        node = self._find_exact(prefix)
        if node is None or not node.has_value:
            return default
        return node.value  # type: ignore[return-value]

    # -- insertion -------------------------------------------------------------

    def insert(self, prefix: Prefix, value: V) -> None:
        """Store ``value`` at ``prefix``, replacing any existing value."""
        if self._root is None:
            self._root = _Node(prefix)
            self._root.value = value
            self._size += 1
            return
        parent: Optional[_Node[V]] = None
        parent_slot = 0
        node = self._root
        while True:
            if node.prefix == prefix:
                if not node.has_value:
                    self._size += 1
                node.value = value
                return
            if node.prefix.covers(prefix):
                slot = _branch_bit(prefix, node.prefix)
                child = node.right if slot else node.left
                if child is None:
                    leaf: _Node[V] = _Node(prefix)
                    leaf.value = value
                    self._attach(node, slot, leaf)
                    self._size += 1
                    return
                parent, parent_slot, node = node, slot, child
                continue
            # ``node.prefix`` does not cover ``prefix``: splice in a new
            # node at their meet point (either ``prefix`` itself if it
            # covers ``node.prefix``, or a glue node covering both).
            self._splice(parent, parent_slot, node, prefix, value)
            self._size += 1
            return

    def _attach(self, parent: _Node[V], slot: int, child: _Node[V]) -> None:
        if slot:
            parent.right = child
        else:
            parent.left = child

    def _replace_child(
        self,
        parent: Optional[_Node[V]],
        slot: int,
        new_child: Optional[_Node[V]],
    ) -> None:
        if parent is None:
            self._root = new_child
        elif slot:
            parent.right = new_child
        else:
            parent.left = new_child

    def _splice(
        self,
        parent: Optional[_Node[V]],
        parent_slot: int,
        node: _Node[V],
        prefix: Prefix,
        value: V,
    ) -> None:
        """Insert ``prefix`` above/alongside ``node`` below ``parent``."""
        from .prefix import common_supernet

        if prefix.covers(node.prefix):
            new_node: _Node[V] = _Node(prefix)
            new_node.value = value
            slot = _branch_bit(node.prefix, prefix)
            self._attach(new_node, slot, node)
            self._replace_child(parent, parent_slot, new_node)
            return
        glue_prefix = common_supernet([prefix, node.prefix])
        glue: _Node[V] = _Node(glue_prefix)
        leaf: _Node[V] = _Node(prefix)
        leaf.value = value
        self._attach(glue, _branch_bit(node.prefix, glue_prefix), node)
        self._attach(glue, _branch_bit(prefix, glue_prefix), leaf)
        self._replace_child(parent, parent_slot, glue)

    # -- search ------------------------------------------------------------------

    def _find_exact(self, prefix: Prefix) -> Optional[_Node[V]]:
        node = self._root
        while node is not None:
            if node.prefix == prefix:
                return node
            if not node.prefix.covers(prefix):
                return None
            slot = _branch_bit(prefix, node.prefix)
            node = node.right if slot else node.left
        return None

    def lookup_best(self, prefix: Prefix) -> Optional[Tuple[Prefix, V]]:
        """Longest-prefix match: the most specific stored prefix covering
        ``prefix`` (which may be a /32 host route).  Returns a
        ``(prefix, value)`` named-access tuple or ``None``.
        """
        best: Optional[_Node[V]] = None
        node = self._root
        while node is not None and node.prefix.covers(prefix):
            if node.has_value:
                best = node
            if node.prefix == prefix:
                break
            slot = _branch_bit(prefix, node.prefix)
            node = node.right if slot else node.left
        if best is None:
            return None
        return _Match(best.prefix, best.value)  # type: ignore[arg-type]

    def lookup_address(self, address: int) -> Optional[Tuple[Prefix, V]]:
        """Longest-prefix match for a 32-bit host address."""
        return self.lookup_best(Prefix(address, MAX_PREFIX_LENGTH))

    def covered(self, prefix: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """Iterate stored ``(prefix, value)`` pairs lying within ``prefix``."""
        node = self._root
        # Descend until the current node is inside ``prefix`` or diverges.
        while node is not None and not prefix.covers(node.prefix):
            if not node.prefix.covers(prefix):
                return
            slot = _branch_bit(prefix, node.prefix)
            node = node.right if slot else node.left
        if node is None:
            return
        yield from self._walk(node)

    def covering(self, prefix: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """Iterate stored pairs whose prefix covers ``prefix``
        (shortest first, i.e. least specific to most specific)."""
        node = self._root
        while node is not None and node.prefix.covers(prefix):
            if node.has_value:
                yield (node.prefix, node.value)  # type: ignore[misc]
            if node.prefix == prefix:
                return
            slot = _branch_bit(prefix, node.prefix)
            node = node.right if slot else node.left

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """Iterate all stored pairs in address order."""
        if self._root is not None:
            yield from self._walk(self._root)

    def keys(self) -> Iterator[Prefix]:
        for prefix, _ in self.items():
            yield prefix

    def values(self) -> Iterator[V]:
        for _, value in self.items():
            yield value

    def _walk(self, node: _Node[V]) -> Iterator[Tuple[Prefix, V]]:
        stack: List[_Node[V]] = [node]
        while stack:
            current = stack.pop()
            if current.has_value:
                yield (current.prefix, current.value)  # type: ignore[misc]
            # Push right first so the left (lower addresses) pops first.
            if current.right is not None:
                stack.append(current.right)
            if current.left is not None:
                stack.append(current.left)

    # -- deletion ---------------------------------------------------------------

    def delete(self, prefix: Prefix) -> bool:
        """Remove the value at ``prefix``; True if something was removed."""
        parent: Optional[_Node[V]] = None
        parent_slot = 0
        grandparent: Optional[_Node[V]] = None
        grandparent_slot = 0
        node = self._root
        while node is not None and node.prefix != prefix:
            if not node.prefix.covers(prefix):
                return False
            slot = _branch_bit(prefix, node.prefix)
            grandparent, grandparent_slot = parent, parent_slot
            parent, parent_slot = node, slot
            node = node.right if slot else node.left
        if node is None or not node.has_value:
            return False
        node.value = _SENTINEL
        self._size -= 1
        self._prune(grandparent, grandparent_slot, parent, parent_slot, node)
        return True

    def _prune(
        self,
        grandparent: Optional[_Node[V]],
        grandparent_slot: int,
        parent: Optional[_Node[V]],
        parent_slot: int,
        node: _Node[V],
    ) -> None:
        """Collapse ``node`` if it became a valueless leaf or pass-through."""
        children = [c for c in (node.left, node.right) if c is not None]
        if len(children) == 2:
            return  # still a branching point
        replacement = children[0] if children else None
        self._replace_child(parent, parent_slot, replacement)
        # The parent may now itself be a valueless pass-through glue node.
        if (
            parent is not None
            and not parent.has_value
        ):
            parent_children = [
                c for c in (parent.left, parent.right) if c is not None
            ]
            if len(parent_children) == 1:
                self._replace_child(
                    grandparent, grandparent_slot, parent_children[0]
                )

    def clear(self) -> None:
        """Remove everything."""
        self._root = None
        self._size = 0


class _Match(tuple):
    """A ``(prefix, value)`` result with attribute access."""

    __slots__ = ()

    def __new__(cls, prefix: Prefix, value: object) -> "_Match":
        return tuple.__new__(cls, (prefix, value))

    @property
    def prefix(self) -> Prefix:
        return self[0]

    @property
    def value(self) -> object:
        return self[1]
