"""IPv4 prefix value type.

The entire reproduction traffics in network-layer address blocks
("prefixes" in the paper's terminology): BGP updates announce or withdraw
reachability for a prefix, the default-free routing table is a set of
prefixes, and aggregation combines prefixes into supernets.  This module
provides a small, immutable, hashable :class:`Prefix` value type plus the
arithmetic the rest of the library needs (containment, supernetting,
subnetting, adjacency).

We deliberately implement prefixes from scratch instead of wrapping
:mod:`ipaddress`: the simulator creates and compares millions of prefixes,
and a plain ``(int, int)`` tuple subclass with precomputed masks is both
faster and simpler to reason about.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Prefix",
    "PrefixError",
    "MAX_PREFIX_LENGTH",
]

MAX_PREFIX_LENGTH = 32

# Precomputed network masks indexed by prefix length: _MASKS[8] == 0xFF000000.
_MASKS: Tuple[int, ...] = tuple(
    (0xFFFFFFFF << (MAX_PREFIX_LENGTH - length)) & 0xFFFFFFFF
    for length in range(MAX_PREFIX_LENGTH + 1)
)


class PrefixError(ValueError):
    """Raised for malformed prefix strings or invalid prefix arithmetic."""


def _octets_to_int(text: str) -> int:
    """Parse dotted-quad ``text`` into a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise PrefixError(f"expected dotted quad, got {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise PrefixError(f"non-numeric octet in {text!r}")
        octet = int(part)
        if octet > 255:
            raise PrefixError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def _int_to_octets(value: int) -> str:
    """Render a 32-bit integer as a dotted quad."""
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


class Prefix(tuple):
    """An immutable IPv4 prefix: a network address and a mask length.

    ``Prefix`` is a ``tuple`` subclass holding ``(network, length)`` where
    ``network`` is the 32-bit network address with host bits zeroed.  Being
    a tuple makes instances hashable, totally ordered (network-major,
    shorter-prefix-first within a network), and cheap to copy — properties
    the radix trie, RIBs, and classifiers all rely on.

    Examples
    --------
    >>> p = Prefix.parse("192.42.113.0/24")
    >>> str(p)
    '192.42.113.0/24'
    >>> p in Prefix.parse("192.42.0.0/16")
    True
    """

    __slots__ = ()

    def __new__(cls, network: int, length: int) -> "Prefix":
        if not 0 <= length <= MAX_PREFIX_LENGTH:
            raise PrefixError(f"prefix length {length} out of range")
        if not 0 <= network <= 0xFFFFFFFF:
            raise PrefixError(f"network address {network:#x} out of range")
        masked = network & _MASKS[length]
        if masked != network:
            raise PrefixError(
                f"host bits set: {_int_to_octets(network)}/{length}"
            )
        return tuple.__new__(cls, (network, length))

    # -- constructors -----------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` (or a bare host address) into a Prefix.

        A bare address without ``/len`` is treated as a /32 host route,
        matching common router CLI behaviour.
        """
        text = text.strip()
        if "/" in text:
            addr_text, _, len_text = text.partition("/")
            if not len_text.isdigit():
                raise PrefixError(f"bad prefix length in {text!r}")
            length = int(len_text)
        else:
            addr_text, length = text, MAX_PREFIX_LENGTH
        return cls(_octets_to_int(addr_text), length)

    @classmethod
    def from_host(cls, text: str, length: int) -> "Prefix":
        """Build a prefix from a host address, zeroing the host bits."""
        if not 0 <= length <= MAX_PREFIX_LENGTH:
            raise PrefixError(f"prefix length {length} out of range")
        return cls(_octets_to_int(text) & _MASKS[length], length)

    # -- accessors ---------------------------------------------------------

    @property
    def network(self) -> int:
        """The 32-bit network address (host bits zero)."""
        return self[0]

    @property
    def length(self) -> int:
        """The mask length (0..32)."""
        return self[1]

    @property
    def netmask(self) -> int:
        """The 32-bit network mask."""
        return _MASKS[self[1]]

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered by this prefix."""
        return 1 << (MAX_PREFIX_LENGTH - self[1])

    @property
    def broadcast(self) -> int:
        """The highest address covered by this prefix."""
        return self[0] | (~_MASKS[self[1]] & 0xFFFFFFFF)

    def __str__(self) -> str:
        return f"{_int_to_octets(self[0])}/{self[1]}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    # -- set relations -----------------------------------------------------

    def covers(self, other: "Prefix") -> bool:
        """True if ``other`` lies within this prefix (or equals it)."""
        if other[1] < self[1]:
            return False
        return (other[0] & _MASKS[self[1]]) == self[0]

    def covers_address(self, address: int) -> bool:
        """True if the 32-bit ``address`` lies within this prefix."""
        return (address & _MASKS[self[1]]) == self[0]

    def __contains__(self, other: object) -> bool:
        if isinstance(other, Prefix):
            return self.covers(other)
        if isinstance(other, int):
            return self.covers_address(other)
        return NotImplemented  # type: ignore[return-value]

    def overlaps(self, other: "Prefix") -> bool:
        """True if the two prefixes share any address."""
        return self.covers(other) or other.covers(self)

    # -- arithmetic ----------------------------------------------------------

    def supernet(self, new_length: Optional[int] = None) -> "Prefix":
        """The enclosing prefix at ``new_length`` (default: one bit shorter)."""
        if new_length is None:
            new_length = self[1] - 1
        if not 0 <= new_length <= self[1]:
            raise PrefixError(
                f"cannot widen {self} to /{new_length}"
            )
        return Prefix(self[0] & _MASKS[new_length], new_length)

    def subnets(self, new_length: Optional[int] = None) -> Iterator["Prefix"]:
        """Iterate the subnets of this prefix at ``new_length``.

        Default is one bit longer (the two halves).  Raises if
        ``new_length`` is shorter than this prefix's length.
        """
        if new_length is None:
            new_length = self[1] + 1
        if new_length < self[1] or new_length > MAX_PREFIX_LENGTH:
            raise PrefixError(
                f"cannot subnet {self} to /{new_length}"
            )
        step = 1 << (MAX_PREFIX_LENGTH - new_length)
        for network in range(self[0], self.broadcast + 1, step):
            yield Prefix(network, new_length)

    def sibling(self) -> "Prefix":
        """The other half of this prefix's parent (its aggregation partner)."""
        if self[1] == 0:
            raise PrefixError("0.0.0.0/0 has no sibling")
        bit = 1 << (MAX_PREFIX_LENGTH - self[1])
        return Prefix(self[0] ^ bit, self[1])

    def is_aggregatable_with(self, other: "Prefix") -> bool:
        """True if ``self`` and ``other`` merge exactly into one supernet."""
        return self[1] == other[1] and self[1] > 0 and self.sibling() == other

    def bit(self, index: int) -> int:
        """The ``index``-th address bit (0 = most significant)."""
        if not 0 <= index < MAX_PREFIX_LENGTH:
            raise PrefixError(f"bit index {index} out of range")
        return (self[0] >> (MAX_PREFIX_LENGTH - 1 - index)) & 1


def common_supernet(prefixes: Sequence[Prefix]) -> Prefix:
    """The longest prefix covering every prefix in ``prefixes``.

    Raises :class:`PrefixError` on an empty sequence.
    """
    if not prefixes:
        raise PrefixError("common_supernet of no prefixes")
    lo = min(p.network for p in prefixes)
    hi = max(p.broadcast for p in prefixes)
    length = min(p.length for p in prefixes)
    while length > 0 and (
        (lo & _MASKS[length]) != (hi & _MASKS[length])
    ):
        length -= 1
    # Also never exceed the shortest member's own length.
    return Prefix(lo & _MASKS[length], length)


def parse_many(texts: Sequence[str]) -> List[Prefix]:
    """Parse a sequence of prefix strings; convenience for tests/examples."""
    return [Prefix.parse(text) for text in texts]
