"""Network convergence measurement.

The paper names "delays in the time for network convergence" as one of
instability's three primary effects, without measuring it directly —
the event simulator lets the reproduction measure it.

Two tools:

- :func:`settle_time` — given the update records observed at a
  measurement point and the time of an injected event, the time until
  updates about the affected prefix stop (the network has converged);
- :class:`ConvergenceProbe` — drives a scenario: flaps a prefix,
  observes the collector sink, and reports per-event convergence
  times, suitable for comparing topologies/timer settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..collector.record import UpdateRecord
from ..net.prefix import Prefix

__all__ = ["settle_time", "ConvergenceProbe", "ConvergenceReport"]


def settle_time(
    records: Iterable[UpdateRecord],
    prefix: Prefix,
    event_time: float,
    horizon: float = 600.0,
) -> Optional[float]:
    """Seconds from ``event_time`` until the last update for
    ``prefix`` within ``horizon``; None if no updates were seen.

    This is convergence as a measurement point experiences it: the
    burst of updates triggered by the event dies out once every router
    has settled on its new best path.
    """
    last = None
    for record in records:
        if record.prefix != prefix:
            continue
        if event_time <= record.time <= event_time + horizon:
            if last is None or record.time > last:
                last = record.time
    if last is None:
        return None
    return last - event_time


@dataclass
class ConvergenceReport:
    """Convergence times for a batch of probe events."""

    times: List[float]

    @property
    def mean(self) -> float:
        return sum(self.times) / len(self.times) if self.times else 0.0

    @property
    def worst(self) -> float:
        return max(self.times) if self.times else 0.0

    @property
    def count(self) -> int:
        return len(self.times)


class ConvergenceProbe:
    """Measure convergence in a live scenario.

    Parameters
    ----------
    engine, sink:
        The scenario's event engine and its route-server sink (anything
        iterable over :class:`UpdateRecord`).
    settle_horizon:
        How long after an event to watch for related updates.
    """

    def __init__(self, engine, sink, settle_horizon: float = 600.0) -> None:
        self.engine = engine
        self.sink = sink
        self.settle_horizon = settle_horizon
        self._events: List[tuple] = []

    def flap(self, router, prefix: Prefix, down_for: float = 5.0) -> None:
        """Inject one probe flap and remember its timestamp."""
        self._events.append((prefix, self.engine.now))
        router.flap_origin(prefix, down_for=down_for)

    def report(self) -> ConvergenceReport:
        """Convergence times for all injected events (run the engine
        past the settle horizon first)."""
        records = list(self.sink)
        times: List[float] = []
        for prefix, event_time in self._events:
            settled = settle_time(
                records, prefix, event_time, self.settle_horizon
            )
            if settled is not None:
                times.append(settled)
        return ConvergenceReport(times=times)
