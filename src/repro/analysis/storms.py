"""Route-flap-storm forensics over session-event logs.

The paper (§3) describes storms narratively: overloaded routers miss
keepalives, peers mark them down, withdrawals and re-peering dumps
spread the load, "a storm that begins affecting ever larger sections
of the Internet.  Several route flap storms in the past year have
caused extended outages for several million network customers."

Given the session-transition log a collector keeps (see
:class:`~repro.collector.mrt_rfc.SessionEvent` and
:attr:`~repro.sim.routeserver.RouteServer.session_events`), this module
detects and characterizes storms:

- :func:`session_loss_bursts` — clusters of session losses in time;
- :func:`detect_storms` — bursts that qualify as storms (multiple
  distinct peers lost within a window), with spread and duration;
- :func:`flap_rate_series` — session-loss counts per time bin for
  plotting storm evolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Set

from ..collector.mrt_rfc import SessionEvent

__all__ = ["StormEpisode", "session_loss_bursts", "detect_storms",
           "flap_rate_series"]


@dataclass
class StormEpisode:
    """One clustered burst of session losses."""

    start: float
    end: float
    losses: int
    peers: Set[int] = field(default_factory=set)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def spread(self) -> int:
        """Distinct peers losing sessions — the storm's blast radius."""
        return len(self.peers)


def session_loss_bursts(
    events: Iterable[SessionEvent],
    quiet_gap: float = 120.0,
) -> List[StormEpisode]:
    """Cluster session-loss events separated by under ``quiet_gap``.

    Returns one :class:`StormEpisode` per cluster (including singleton
    losses — filter by size/spread via :func:`detect_storms`).
    """
    losses = sorted(
        (e for e in events if e.is_session_loss), key=lambda e: e.time
    )
    episodes: List[StormEpisode] = []
    current: StormEpisode = None
    for event in losses:
        if current is not None and event.time - current.end <= quiet_gap:
            current.end = event.time
            current.losses += 1
            current.peers.add(event.peer_id)
        else:
            current = StormEpisode(
                start=event.time, end=event.time, losses=1,
                peers={event.peer_id},
            )
            episodes.append(current)
    return episodes


def detect_storms(
    events: Iterable[SessionEvent],
    quiet_gap: float = 120.0,
    min_losses: int = 3,
    min_spread: int = 2,
) -> List[StormEpisode]:
    """Bursts large and wide enough to call storms.

    ``min_losses`` filters ordinary single-session bounces;
    ``min_spread`` requires the failure to have *spread* beyond one
    peer — the defining property of the paper's storms.
    """
    return [
        episode
        for episode in session_loss_bursts(events, quiet_gap)
        if episode.losses >= min_losses and episode.spread >= min_spread
    ]


def flap_rate_series(
    events: Iterable[SessionEvent],
    bin_width: float = 60.0,
    end: float = None,
) -> List[int]:
    """Session losses per time bin (the storm-evolution curve)."""
    losses = [e.time for e in events if e.is_session_loss]
    if not losses:
        return []
    if end is None:
        end = max(losses) + bin_width
    n_bins = max(1, int(end // bin_width) + 1)
    series = [0] * n_bins
    for time in losses:
        index = int(time // bin_width)
        if 0 <= index < n_bins:
            series[index] += 1
    return series
