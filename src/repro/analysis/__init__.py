"""The paper's analysis pipeline: time-series preparation, spectral
estimation (FFT/MEM/SSA), inter-arrival histograms, the density matrix,
per-AS contribution, Prefix+AS distributions, affected-route fractions,
and multi-homing counting."""

from .timeseries import (
    aggregate_bins,
    bin_records,
    daily_totals,
    linear_fit,
    log_detrend,
    threshold_above_mean,
)
from .spectral import (
    SpectralPeak,
    autocorrelation,
    correlogram_psd,
    dominant_periods,
    has_period,
    periodogram,
)
from .mem import burg, mem_psd
from .ssa import SsaComponent, significant_frequencies, ssa_components
from .interarrival import (
    FIGURE8_BINS,
    BinBox,
    bin_label,
    daily_boxes,
    histogram_proportions,
    interarrival_times,
    timer_bin_mass,
)
from .density import DensityCell, DensityMatrix, build_density_matrix
from .contribution import (
    ContributionPoint,
    consistent_dominators,
    contribution_points,
    correlation,
)
from .distribution import (
    DailyCdf,
    daily_cdf,
    dominated_days,
    mass_below,
    monthly_cdfs,
)
from .affected import (
    AffectedSeriesStats,
    DayAffected,
    affected_from_updates,
    affected_series_stats,
)
from .convergence import (
    ConvergenceProbe,
    ConvergenceReport,
    settle_time,
)
from .storms import (
    StormEpisode,
    detect_storms,
    flap_rate_series,
    session_loss_bursts,
)
from .multihoming import (
    MultihomingSummary,
    count_multihomed,
    multihomed_by_origin,
    series_summary,
)
from .detection import (
    FLAGS,
    AsRelationships,
    ColumnDetector,
    DetectionResult,
    StreamDetector,
    detect_records,
    detect_records_columnar,
    detection_digest,
    flag_names,
    path_flags,
    stability_scores,
)

__all__ = [
    "aggregate_bins",
    "bin_records",
    "daily_totals",
    "linear_fit",
    "log_detrend",
    "threshold_above_mean",
    "SpectralPeak",
    "autocorrelation",
    "correlogram_psd",
    "dominant_periods",
    "has_period",
    "periodogram",
    "burg",
    "mem_psd",
    "SsaComponent",
    "significant_frequencies",
    "ssa_components",
    "FIGURE8_BINS",
    "BinBox",
    "bin_label",
    "daily_boxes",
    "histogram_proportions",
    "interarrival_times",
    "timer_bin_mass",
    "DensityCell",
    "DensityMatrix",
    "build_density_matrix",
    "ContributionPoint",
    "consistent_dominators",
    "contribution_points",
    "correlation",
    "DailyCdf",
    "daily_cdf",
    "dominated_days",
    "mass_below",
    "monthly_cdfs",
    "AffectedSeriesStats",
    "DayAffected",
    "affected_from_updates",
    "affected_series_stats",
    "ConvergenceProbe",
    "ConvergenceReport",
    "settle_time",
    "StormEpisode",
    "detect_storms",
    "flap_rate_series",
    "session_loss_bursts",
    "MultihomingSummary",
    "count_multihomed",
    "multihomed_by_origin",
    "series_summary",
    "FLAGS",
    "AsRelationships",
    "ColumnDetector",
    "DetectionResult",
    "StreamDetector",
    "detect_records",
    "detect_records_columnar",
    "detection_digest",
    "flag_names",
    "path_flags",
    "stability_scores",
]
