"""Time-series preparation: aggregation and log-detrending.

Section 5.1's treatment (following Bloomfield's handling of the
Beveridge wheat prices): the update rate is modelled as ``x_t = T_t *
I_t`` with a trend and an oscillating term, so ``log x_t = log T_t +
log I_t``; the trend is removed with a least-squares line on the
logarithm, leaving ``log I_t`` oscillating about zero.  "This avoids
adding frequency biases that can be introduced due to linear
filtering."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..collector.record import UpdateRecord
from ..collector.store import SECONDS_PER_DAY

__all__ = [
    "bin_records",
    "BinnedSeries",
    "aggregate_bins",
    "log_detrend",
    "linear_fit",
    "threshold_above_mean",
]


def bin_records(
    records: Iterable[UpdateRecord],
    bin_width: float = 600.0,
    start: float = 0.0,
    end: float = None,
) -> np.ndarray:
    """Count records into fixed-width time bins.

    ``records`` may be an iterable of :class:`UpdateRecord`, a
    columnar :class:`~repro.core.columns.RecordColumns` batch, or a
    bare array of timestamps — the columnar forms skip the per-record
    Python loop entirely.  ``end`` defaults to the latest record
    (rounded up to a whole bin).  Returns an integer array of per-bin
    counts.
    """
    if isinstance(records, np.ndarray) and records.dtype.names is None:
        times = np.asarray(records, dtype=float)
    elif hasattr(records, "data") and hasattr(records, "attrs"):
        times = records.data["time"]  # RecordColumns
    else:
        times = np.fromiter((r.time for r in records), dtype=float)
    if times.size == 0:
        return np.zeros(0, dtype=int)
    if end is None:
        end = times.max() + bin_width
    n_bins = max(1, int(np.ceil((end - start) / bin_width)))
    # floor(x / w) via true division + floor: same result, and several
    # times faster than floor_divide's per-element correction step.
    indices = np.floor((times - start) / bin_width).astype(int)
    valid = (indices >= 0) & (indices < n_bins)
    return np.bincount(indices[valid], minlength=n_bins)


@dataclass(frozen=True, eq=False)
class BinnedSeries:
    """A mergeable window of fixed-width bin counts.

    ``offset`` positions the window on the global bin axis (bin index
    of ``counts[0]``), so partial series computed over disjoint time
    ranges — e.g. one campaign shard each — can be summed into the
    full-campaign series with ``+``.  Merging is associative and
    commutative (integer addition over the span union), so shard order
    never matters; the zero-length series is the identity.
    """

    offset: int
    counts: np.ndarray
    width: float = 600.0

    @classmethod
    def empty(cls, width: float = 600.0) -> "BinnedSeries":
        """The merge identity."""
        return cls(0, np.zeros(0, dtype=np.int64), width)

    @classmethod
    def from_records(
        cls,
        records,
        bin_width: float,
        start: float,
        end: float,
    ) -> "BinnedSeries":
        """Bin ``records`` over ``[start, end)`` (see
        :func:`bin_records`); ``start`` must sit on a bin boundary."""
        offset, remainder = divmod(start, bin_width)
        if remainder:
            raise ValueError(
                f"start {start} is not a multiple of bin_width {bin_width}"
            )
        counts = bin_records(records, bin_width, start=start, end=end)
        return cls(int(offset), counts.astype(np.int64), bin_width)

    @property
    def end(self) -> int:
        """One past the last bin index covered."""
        return self.offset + len(self.counts)

    def __len__(self) -> int:
        return len(self.counts)

    def __add__(self, other: "BinnedSeries") -> "BinnedSeries":
        if isinstance(other, int) and other == 0:  # sum() start value
            return self
        if not isinstance(other, BinnedSeries):
            return NotImplemented
        if len(self.counts) == 0:
            return other
        if len(other.counts) == 0:
            return self
        if self.width != other.width:
            raise ValueError(
                f"bin widths differ: {self.width} vs {other.width}"
            )
        lo = min(self.offset, other.offset)
        hi = max(self.end, other.end)
        merged = np.zeros(hi - lo, dtype=np.int64)
        merged[self.offset - lo:self.end - lo] += self.counts
        merged[other.offset - lo:other.end - lo] += other.counts
        return BinnedSeries(lo, merged, self.width)

    __radd__ = __add__

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BinnedSeries):
            return NotImplemented
        return (
            self.width == other.width
            and self.offset == other.offset
            and len(self.counts) == len(other.counts)
            and bool((self.counts == other.counts).all())
        )

    def dense(self, total_bins: Optional[int] = None) -> np.ndarray:
        """The series as a plain array starting at bin 0, zero-padded
        to ``total_bins`` (default: just past the last covered bin)."""
        n = max(self.end, total_bins or 0)
        out = np.zeros(n, dtype=np.int64)
        out[self.offset:self.end] = self.counts
        return out

    def to_payload(self) -> dict:
        return {
            "offset": self.offset,
            "width": self.width,
            "counts": self.counts.tolist(),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "BinnedSeries":
        return cls(
            int(payload["offset"]),
            np.asarray(payload["counts"], dtype=np.int64),
            float(payload["width"]),
        )


def aggregate_bins(counts: Sequence[int], factor: int) -> np.ndarray:
    """Re-aggregate fine bins into coarser ones (e.g. 10-min → hourly
    with ``factor=6``).  A ragged tail is dropped."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    array = np.asarray(counts)
    usable = (len(array) // factor) * factor
    return array[:usable].reshape(-1, factor).sum(axis=1)


def linear_fit(values: Sequence[float]) -> Tuple[float, float]:
    """Least-squares ``(slope, intercept)`` of values against index."""
    y = np.asarray(values, dtype=float)
    if y.size == 0:
        return (0.0, 0.0)
    x = np.arange(y.size, dtype=float)
    slope, intercept = np.polyfit(x, y, 1)
    return float(slope), float(intercept)


def log_detrend(
    counts: Sequence[float], floor: float = 1.0
) -> np.ndarray:
    """The paper's detrending: log-transform, subtract the LSQ line.

    Zero bins are floored at ``floor`` before the log (the paper's
    plots treat empty bins as minimal activity).  The result oscillates
    about zero.
    """
    array = np.maximum(np.asarray(counts, dtype=float), floor)
    logged = np.log(array)
    slope, intercept = linear_fit(logged)
    trend = slope * np.arange(logged.size) + intercept
    return logged - trend


def threshold_above_mean(
    detrended: Sequence[float], offset_std: float = 0.5
) -> float:
    """Figure 3's threshold: "a point above the mean of the detrended
    data" — mean plus ``offset_std`` standard deviations."""
    array = np.asarray(detrended, dtype=float)
    if array.size == 0:
        return 0.0
    return float(array.mean() + offset_std * array.std())


def daily_totals(
    counts: Sequence[int], bins_per_day: int = 144
) -> np.ndarray:
    """Collapse per-bin counts into per-day totals."""
    return aggregate_bins(counts, bins_per_day)
