"""Singular spectrum analysis (Figure 5b's frequency extraction).

"A software tool was used to extract the specific frequencies through
singular spectrum analysis, the top five of which are shown in figure
5b.  These frequencies lie in a 99% confidence interval generated
using white noise on the data."

SSA embeds the series in a trajectory matrix of lagged windows,
eigendecomposes its covariance, and pairs eigenvectors that represent
oscillatory components; each pair's dominant frequency is estimated
from its eigenvector.  The white-noise significance test (a small
Monte-Carlo version of the paper's 99% interval) compares component
variances against those of white-noise surrogates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SsaComponent", "ssa_components", "significant_frequencies"]


@dataclass(frozen=True)
class SsaComponent:
    """One SSA eigen-component."""

    index: int
    variance_share: float
    frequency: float       #: cycles per sample (0 for trend-like)
    period: float          #: samples (inf for trend-like)


def _trajectory_covariance(x: np.ndarray, window: int) -> np.ndarray:
    n = x.size
    k = n - window + 1
    rows = np.lib.stride_tricks.sliding_window_view(x, window)
    return (rows.T @ rows) / k


def _eigenvector_frequency(vector: np.ndarray) -> float:
    """Dominant frequency of an eigenvector via its periodogram."""
    v = vector - vector.mean()
    spectrum = np.abs(np.fft.rfft(v)) ** 2
    freqs = np.fft.rfftfreq(v.size)
    if spectrum.size <= 1:
        return 0.0
    peak = int(np.argmax(spectrum[1:])) + 1
    return float(freqs[peak])


def ssa_components(
    series: Sequence[float],
    window: int = None,
    n_components: int = 10,
) -> List[SsaComponent]:
    """Decompose ``series`` into its leading SSA components.

    ``window`` defaults to a quarter of the series (capped at 240
    samples — ten days of hourly data — so the weekly line is
    resolvable).  Components are ordered by variance share.
    """
    x = np.asarray(series, dtype=float)
    x = x - x.mean()
    n = x.size
    if window is None:
        window = min(max(2, n // 4), 240)
    if n < 2 * window:
        raise ValueError(
            f"series length {n} too short for window {window}"
        )
    covariance = _trajectory_covariance(x, window)
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = eigenvalues[order]
    eigenvectors = eigenvectors[:, order]
    total = float(eigenvalues.sum()) or 1.0
    components: List[SsaComponent] = []
    for i in range(min(n_components, window)):
        frequency = _eigenvector_frequency(eigenvectors[:, i])
        components.append(
            SsaComponent(
                index=i,
                variance_share=float(eigenvalues[i]) / total,
                frequency=frequency,
                period=float("inf") if frequency == 0.0 else 1.0 / frequency,
            )
        )
    return components


def significant_frequencies(
    series: Sequence[float],
    window: int = None,
    n_frequencies: int = 5,
    n_surrogates: int = 20,
    confidence: float = 0.99,
    seed: int = 0,
) -> List[SsaComponent]:
    """The top oscillatory SSA components that beat white noise.

    A component is significant when its variance share exceeds the
    ``confidence`` quantile of the leading variance shares obtained
    from white-noise surrogates of the same length and variance — the
    paper's "99% confidence interval generated using white noise".
    Oscillatory pairs (nearly equal frequency) are reported once per
    member, like Figure 5b's five lines (two weekly + three daily).
    """
    components = ssa_components(series, window)
    x = np.asarray(series, dtype=float)
    rng = np.random.default_rng(seed)
    surrogate_shares: List[float] = []
    for _ in range(n_surrogates):
        noise = rng.normal(0.0, x.std() or 1.0, x.size)
        noise_components = ssa_components(noise, window, n_components=1)
        surrogate_shares.append(noise_components[0].variance_share)
    surrogate_shares.sort()
    cut_index = min(
        len(surrogate_shares) - 1,
        int(confidence * len(surrogate_shares)),
    )
    threshold = surrogate_shares[cut_index]
    significant = [
        c
        for c in components
        if c.variance_share > threshold and c.frequency > 0.0
    ]
    return significant[:n_frequencies]
