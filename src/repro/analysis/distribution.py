"""Cumulative Prefix+AS event distributions (Figure 7).

Figure 7 plots, per category and per day, the cumulative proportion of
events contributed by Prefix+AS pairs with at most ``k`` events.  Key
readings: 80–100% of daily instability comes from pairs announced
fewer than fifty times; WADiff "climbs to a plateau of about 95%
faster than the other three categories"; rare dominator days (Aug 11)
pull a curve far down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.classifier import ClassifiedUpdate
from ..core.instability import counts_by_prefix_as
from ..core.taxonomy import UpdateCategory

__all__ = [
    "DailyCdf",
    "daily_cdf",
    "mass_below",
    "monthly_cdfs",
    "dominated_days",
]


@dataclass
class DailyCdf:
    """One day's cumulative distribution for one category.

    ``thresholds[i]`` is an event count ``k``; ``cumulative[i]`` the
    proportion of the day's events from pairs with ≤ k events.
    """

    day: int
    category: UpdateCategory
    thresholds: List[int]
    cumulative: List[float]
    total_events: int
    max_pair_events: int

    def mass_at_or_below(self, k: int) -> float:
        """Event mass from pairs with at most ``k`` events."""
        result = 0.0
        for threshold, cum in zip(self.thresholds, self.cumulative):
            if threshold <= k:
                result = cum
            else:
                break
        return result


def daily_cdf(
    updates: Iterable[ClassifiedUpdate],
    category: UpdateCategory,
    day: int = 0,
    by_prefix_only: bool = False,
) -> Optional[DailyCdf]:
    """Build one Figure 7 curve; None if the day has no such events.

    ``by_prefix_only`` collapses the AS dimension — the aggregation
    the paper says "generated results similar ... and have been
    omitted".  ``updates`` may also be a ``(RecordColumns, codes)``
    pair from the columnar tier.
    """
    if isinstance(updates, tuple):
        from ..core.instability import (
            counts_by_prefix_as_columns,
            counts_by_prefix_columns,
        )

        columns, codes = updates
        grouped = (
            counts_by_prefix_columns
            if by_prefix_only
            else counts_by_prefix_as_columns
        )
        per_pair = grouped(columns, codes, category)
    elif by_prefix_only:
        from ..core.instability import counts_by_prefix

        per_pair = counts_by_prefix(updates, category)
    else:
        per_pair = counts_by_prefix_as(updates, category)
    if not per_pair:
        return None
    counts = sorted(per_pair.values())
    total = sum(counts)
    thresholds: List[int] = []
    cumulative: List[float] = []
    running = 0
    previous = None
    for count in counts:
        running += count
        if count != previous:
            thresholds.append(count)
            cumulative.append(running / total)
            previous = count
        else:
            cumulative[-1] = running / total
    return DailyCdf(
        day=day,
        category=category,
        thresholds=thresholds,
        cumulative=cumulative,
        total_events=total,
        max_pair_events=counts[-1],
    )


def monthly_cdfs(
    daily_updates: Dict[int, Sequence[ClassifiedUpdate]],
    category: UpdateCategory,
) -> List[DailyCdf]:
    """One curve per day of the month (Figure 7's line bundles)."""
    curves = []
    for day, updates in sorted(daily_updates.items()):
        curve = daily_cdf(updates, category, day)
        if curve is not None:
            curves.append(curve)
    return curves


def mass_below(curves: Sequence[DailyCdf], k: int) -> List[float]:
    """Per-day event mass from pairs with ≤ k events (e.g. the
    "<50 announcements" reading)."""
    return [curve.mass_at_or_below(k) for curve in curves]


def dominated_days(
    curves: Sequence[DailyCdf],
    k: int = 200,
    heavy_mass: float = 0.05,
) -> List[int]:
    """Days where pairs with > k events carry over ``heavy_mass`` of
    the total — the AADup/WADup "5% to 10% ... 200 times or more"
    observation and the Aug-11-style dominator days."""
    result = []
    for curve in curves:
        if 1.0 - curve.mass_at_or_below(k) > heavy_mass:
            result.append(curve.day)
    return result
