"""Adversarial-event detection tier: hijacks, leaks, and storms.

The paper's taxonomy names the *benign* pathologies (flaps, WWDups,
AADups).  Real instability also comes from adversarial or misconfigured
announcements; this module layers a detection tier on top of the
taxonomy that flags, per update record:

``MOAS_CONFLICT``
    The announced origin AS conflicts with a different origin currently
    announcing the *same* prefix (Multiple-Origin-AS — the classic
    exact-prefix hijack signature).
``ORIGIN_CHANGE``
    The origin AS differs from the last origin ever announced for this
    prefix (persists across withdrawals; a hijack that waits for the
    victim to withdraw still trips it).
``SUBPREFIX_FOREIGN``
    A more-specific prefix announced while a covering prefix is active
    with *only other* origins — the sub-prefix hijack signature.
``SUBPREFIX_DEAGG``
    A more-specific prefix whose origin also announces the covering
    prefix — deaggregation (misconfiguration storm material, not an
    attack).
``VALLEY_VIOLATION``
    The AS path violates the Gao-Rexford valley-free export rule given
    a declared :class:`AsRelationships` topology — the route-leak
    signature.  The observer (route server / collector) session is a
    peering session, so a path whose last hop learned the route from a
    provider or peer and exported it to us is a leak.
``FORGED_EDGE``
    The AS path contains an adjacency absent from the declared
    topology — AS-path forgery.  Forged paths are not valley-checked
    (the relationship of a non-existent edge is undefined).

On top of the flags the tier keeps per-prefix *stability counters*
(total events, instability events, plain withdrawals) following the
path-vector stability metrics of Papadimitriou & Cabellos
(arXiv:1204.5641/5642): a route's stability is the fraction of its
update activity that does **not** perturb reachability or forwarding —
see :func:`stability_scores`.

Two implementations are provided and proven bit-identical by the
differential harness (``repro.verify``):

- :class:`StreamDetector` — record-by-record, layered on
  :class:`~repro.core.classifier.StreamClassifier` categories;
- :class:`ColumnDetector` — batched over
  :class:`~repro.core.columns.RecordColumns`, with the per-attribute
  work (origin extraction, path checks) and the stability counters
  vectorized and the concurrent-origin multiset updated in one scan
  over primitive arrays.  State carries across batches, so a campaign
  fed day by day detects exactly like one continuous stream.

A third, dependency-free oracle lives in
:mod:`repro.verify.reference` and is deliberately *not* imported here.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..collector.record import UpdateKind, UpdateRecord
from ..core.classifier import StreamClassifier
from ..core.columns import NO_ATTR, AttributeTable, ColumnClassifier, RecordColumns
from ..core.taxonomy import INSTABILITY_CATEGORIES, UpdateCategory

__all__ = [
    "FLAGS",
    "MOAS_CONFLICT",
    "ORIGIN_CHANGE",
    "SUBPREFIX_FOREIGN",
    "SUBPREFIX_DEAGG",
    "VALLEY_VIOLATION",
    "FORGED_EDGE",
    "AsRelationships",
    "ColumnDetector",
    "DetectionResult",
    "StreamDetector",
    "detect_records",
    "detect_records_columnar",
    "detection_digest",
    "flag_names",
    "path_flags",
    "stability_scores",
]

# -- flag bits (stable wire values: golden digests depend on them) ----------

MOAS_CONFLICT = 1
ORIGIN_CHANGE = 2
SUBPREFIX_FOREIGN = 4
SUBPREFIX_DEAGG = 8
VALLEY_VIOLATION = 16
FORGED_EDGE = 32

#: Canonical (bit, name) order — counter keys and rendering follow it.
FLAGS: Tuple[Tuple[int, str], ...] = (
    (MOAS_CONFLICT, "moas_conflict"),
    (ORIGIN_CHANGE, "origin_change"),
    (SUBPREFIX_FOREIGN, "subprefix_foreign"),
    (SUBPREFIX_DEAGG, "subprefix_deagg"),
    (VALLEY_VIOLATION, "valley_violation"),
    (FORGED_EDGE, "forged_edge"),
)


def flag_names(flags: int) -> Tuple[str, ...]:
    """The names of the set bits, in canonical order."""
    return tuple(name for bit, name in FLAGS if flags & bit)


class AsRelationships:
    """Declared inter-AS business relationships (Gao-Rexford model).

    ``hop(u, v)`` is the direction a route travels when AS ``u``
    exports it to AS ``v``: ``"up"`` (customer to provider), ``"down"``
    (provider to customer), ``"peer"``, or ``None`` for an adjacency
    that does not exist.  :meth:`edges` exports the map as a plain
    dict — the form the dependency-free verify oracle consumes, so the
    two sides provably evaluate the same topology.
    """

    __slots__ = ("_hops",)

    def __init__(self) -> None:
        self._hops: Dict[Tuple[int, int], str] = {}

    def add_provider(self, provider: int, customer: int) -> None:
        """Declare ``provider`` sells transit to ``customer``."""
        self._hops[(customer, provider)] = "up"
        self._hops[(provider, customer)] = "down"

    def add_peer(self, a: int, b: int) -> None:
        self._hops[(a, b)] = "peer"
        self._hops[(b, a)] = "peer"

    def hop(self, u: int, v: int) -> Optional[str]:
        return self._hops.get((u, v))

    def edges(self) -> Dict[Tuple[int, int], str]:
        """A plain ``{(u, v): "up"|"down"|"peer"}`` copy."""
        return dict(self._hops)

    def __len__(self) -> int:
        return len(self._hops)


def path_flags(path: Sequence[int], topology: Optional[AsRelationships]) -> int:
    """VALLEY_VIOLATION / FORGED_EDGE bits for one AS path.

    ``path`` is sender-first (``path[-1]`` is the origin); consecutive
    repeats (prepending) are collapsed before edges are derived.  The
    final export to the observer is a peering session, so it is
    appended as a forced ``"peer"`` hop — which makes the valley-free
    pattern ``up* peer? down*`` reject any path the sender learned from
    a provider or a peer.  A path with any undeclared adjacency is
    forged and is *not* valley-checked.
    """
    if topology is None or len(path) < 2:
        return 0
    dedup = [path[0]]
    for asn in path[1:]:
        if asn != dedup[-1]:
            dedup.append(asn)
    if len(dedup) < 2:
        return 0
    hops: List[str] = []
    for i in range(len(dedup) - 1, 0, -1):
        hop = topology.hop(dedup[i], dedup[i - 1])
        if hop is None:
            return FORGED_EDGE
        hops.append(hop)
    hops.append("peer")
    phase = 0  # 0 = climbing, 1 = peered, 2 = descending
    for hop in hops:
        if hop == "up":
            if phase != 0:
                return VALLEY_VIOLATION
        elif hop == "peer":
            if phase != 0:
                return VALLEY_VIOLATION
            phase = 1
        else:
            phase = 2
    return 0


# -- shared state helpers (pure dict manipulation, no detection logic) ------


def _drop_origin(
    origin_count: Dict[Tuple[int, int], Dict[int, int]],
    p: Tuple[int, int],
    origin: int,
) -> None:
    bucket = origin_count[p]
    n = bucket[origin] - 1
    if n:
        bucket[origin] = n
    else:
        del bucket[origin]
        if not bucket:
            del origin_count[p]


def _covering(
    origin_count: Dict[Tuple[int, int], Dict[int, int]], net: int, plen: int
) -> Optional[Tuple[int, int]]:
    """The longest currently-announced strict supernet of ``net/plen``."""
    for length in range(plen - 1, -1, -1):
        shift = 32 - length
        q = ((net >> shift) << shift, length)
        if q in origin_count:
            return q
    return None


def _state_digest(
    route_origin: Dict[Tuple[int, int, int], int],
    origin_count: Dict[Tuple[int, int], Dict[int, int]],
    last_origin: Dict[Tuple[int, int], int],
    events: Dict[Tuple[int, int], int],
    instability: Dict[Tuple[int, int], int],
    withdrawals: Dict[Tuple[int, int], int],
    moas_prefixes,
) -> str:
    state = (
        sorted(route_origin.items()),
        sorted((p, sorted(b.items())) for p, b in origin_count.items()),
        sorted(last_origin.items()),
        sorted(events.items()),
        sorted(instability.items()),
        sorted(withdrawals.items()),
        sorted(moas_prefixes),
    )
    return hashlib.sha256(repr(state).encode()).hexdigest()


_INSTABILITY_VALUES = frozenset(c.value for c in INSTABILITY_CATEGORIES)
_PLAIN_WITHDRAW_VALUE = UpdateCategory.PLAIN_WITHDRAW.value
_ANNOUNCE = int(UpdateKind.ANNOUNCE)

_INSTAB_LUT = np.zeros(16, dtype=bool)
for _value in sorted(_INSTABILITY_VALUES):
    _INSTAB_LUT[_value] = True
del _value


class StreamDetector:
    """Record-by-record detection (the streaming tier).

    Feed time-ordered ``(record, category)`` pairs — the category comes
    from the taxonomy classifier and drives the stability counters.
    State persists across calls, so a month can be fed day by day.
    """

    __slots__ = (
        "topology",
        "counts",
        "moas_prefixes",
        "_route_origin",
        "_origin_count",
        "_last_origin",
        "_events",
        "_instability",
        "_withdrawals",
        "_flag_cache",
    )

    def __init__(self, topology: Optional[AsRelationships] = None) -> None:
        self.topology = topology
        #: Cumulative per-flag totals, canonical order.
        self.counts: Dict[str, int] = {name: 0 for _, name in FLAGS}
        #: Every (net, plen) that ever raised a MOAS conflict.
        self.moas_prefixes = set()
        self._route_origin: Dict[Tuple[int, int, int], int] = {}
        self._origin_count: Dict[Tuple[int, int], Dict[int, int]] = {}
        self._last_origin: Dict[Tuple[int, int], int] = {}
        self._events: Dict[Tuple[int, int], int] = {}
        self._instability: Dict[Tuple[int, int], int] = {}
        self._withdrawals: Dict[Tuple[int, int], int] = {}
        self._flag_cache: Dict[tuple, int] = {}

    def feed(self, record: UpdateRecord, category: UpdateCategory) -> int:
        """Detection flags for one record; updates carried state."""
        prefix = record.prefix
        net, plen = prefix.network, prefix.length
        p = (net, plen)
        key = (record.peer_id, net, plen)
        flags = 0
        if record.kind is UpdateKind.ANNOUNCE:
            path = record.attributes.as_path
            origin = path[-1] if path else record.peer_asn
            flags = self._path_flags(path)
            old = self._route_origin.get(key)
            if old is not None:
                _drop_origin(self._origin_count, p, old)
            bucket = self._origin_count.get(p)
            if bucket and any(o != origin for o in bucket):
                flags |= MOAS_CONFLICT
                self.moas_prefixes.add(p)
            last = self._last_origin.get(p)
            if last is not None and last != origin:
                flags |= ORIGIN_CHANGE
            self._last_origin[p] = origin
            cover = _covering(self._origin_count, net, plen)
            if cover is not None:
                flags |= (
                    SUBPREFIX_DEAGG
                    if origin in self._origin_count[cover]
                    else SUBPREFIX_FOREIGN
                )
            if bucket is None:
                self._origin_count[p] = {origin: 1}
            else:
                bucket[origin] = bucket.get(origin, 0) + 1
            self._route_origin[key] = origin
        else:
            old = self._route_origin.pop(key, None)
            if old is not None:
                _drop_origin(self._origin_count, p, old)
        self._events[p] = self._events.get(p, 0) + 1
        if category in INSTABILITY_CATEGORIES:
            self._instability[p] = self._instability.get(p, 0) + 1
        elif category is UpdateCategory.PLAIN_WITHDRAW:
            self._withdrawals[p] = self._withdrawals.get(p, 0) + 1
        if flags:
            for bit, name in FLAGS:
                if flags & bit:
                    self.counts[name] += 1
        return flags

    def _path_flags(self, path) -> int:
        if self.topology is None:
            return 0
        try:
            return self._flag_cache[path]
        except KeyError:
            flags = path_flags(path, self.topology)
            self._flag_cache[path] = flags
            return flags

    def stability(self) -> Dict[Tuple[int, int], Tuple[int, int, int]]:
        """Per-prefix ``(events, instability, withdrawals)`` counters."""
        return {
            p: (
                self._events[p],
                self._instability.get(p, 0),
                self._withdrawals.get(p, 0),
            )
            for p in self._events
        }

    def state_digest(self) -> str:
        """Digest of all carried state — tier-comparable."""
        return _state_digest(
            self._route_origin,
            self._origin_count,
            self._last_origin,
            self._events,
            self._instability,
            self._withdrawals,
            self.moas_prefixes,
        )


class ColumnDetector:
    """Batched detection over :class:`RecordColumns` (vectorized tier).

    Per-attribute work — origin extraction and the valley/forgery path
    checks — is computed once per interned attribute id and gathered
    over the batch with array takes; the stability counters reduce with
    ``np.bincount`` per unique prefix.  The concurrent-origin multiset
    (MOAS / origin-change / sub-prefix state) is inherently sequential
    and runs as one scan over primitive lists.  Bit-identical to
    :class:`StreamDetector` including cross-batch carry (proven by the
    ``repro.verify`` differential harness).
    """

    __slots__ = (
        "topology",
        "counts",
        "moas_prefixes",
        "_route_origin",
        "_origin_count",
        "_last_origin",
        "_events",
        "_instability",
        "_withdrawals",
        "_table",
        "_attr_origin",
        "_attr_flags",
        "_origin_arr",
        "_flags_arr",
    )

    def __init__(self, topology: Optional[AsRelationships] = None) -> None:
        self.topology = topology
        self.counts: Dict[str, int] = {name: 0 for _, name in FLAGS}
        self.moas_prefixes = set()
        self._route_origin: Dict[Tuple[int, int, int], int] = {}
        self._origin_count: Dict[Tuple[int, int], Dict[int, int]] = {}
        self._last_origin: Dict[Tuple[int, int], int] = {}
        self._events: Dict[Tuple[int, int], int] = {}
        self._instability: Dict[Tuple[int, int], int] = {}
        self._withdrawals: Dict[Tuple[int, int], int] = {}
        self._table: Optional[AttributeTable] = None
        self._attr_origin: List[int] = []
        self._attr_flags: List[int] = []
        self._origin_arr = np.empty(0, dtype=np.int64)
        self._flags_arr = np.empty(0, dtype=np.uint8)

    def _sync_attr_cache(self, table: AttributeTable) -> None:
        """Extend the per-attribute origin/path-flag caches to cover
        every id in ``table`` (tables only grow; a new table object
        resets the cache)."""
        if self._table is not table:
            self._table = table
            self._attr_origin = []
            self._attr_flags = []
        known = len(self._attr_origin)
        total = len(table)
        if known == total:
            return
        topology = self.topology
        for attr_id in range(known, total):
            path = table[attr_id].as_path
            # AsPath forbids ASN 0, so 0 is a safe "empty path" mark
            # (resolved to the announcing peer's ASN per record).
            self._attr_origin.append(path[-1] if path else 0)
            self._attr_flags.append(
                path_flags(path, topology) if topology is not None else 0
            )
        self._origin_arr = np.asarray(self._attr_origin, dtype=np.int64)
        self._flags_arr = np.asarray(self._attr_flags, dtype=np.uint8)

    def detect(self, columns: RecordColumns, codes: np.ndarray) -> np.ndarray:
        """Flags for every row of ``columns`` (batch order).

        ``codes`` are the row-aligned taxonomy codes from
        :meth:`~repro.core.columns.ColumnClassifier.classify` — they
        drive the stability counters exactly as categories do in the
        streaming tier.
        """
        data = columns.data
        n = len(data)
        if n == 0:
            return np.zeros(0, dtype=np.uint8)
        self._sync_attr_cache(columns.attrs)

        ann = data["kind"] == _ANNOUNCE
        safe_ids = np.where(ann, data["attr_id"], 0).astype(np.int64)
        if len(self._origin_arr):
            origins = np.take(self._origin_arr, safe_ids)
            base_flags = np.where(ann, np.take(self._flags_arr, safe_ids), 0)
        else:
            # an all-withdraw batch before any attribute was interned
            origins = np.zeros(n, dtype=np.int64)
            base_flags = np.zeros(n, dtype=np.uint8)
        origins = np.where(origins == 0, data["peer_asn"].astype(np.int64), origins)

        # Stability counters: one bincount per counter per batch.
        pkey = (data["net"].astype(np.int64) << 6) | data["plen"]
        uniq, inverse = np.unique(pkey, return_inverse=True)
        ev = np.bincount(inverse, minlength=len(uniq))
        instab = np.bincount(
            inverse[np.take(_INSTAB_LUT, codes)], minlength=len(uniq)
        )
        plain = np.bincount(
            inverse[codes == _PLAIN_WITHDRAW_VALUE], minlength=len(uniq)
        )
        ev_list = ev.tolist()
        instab_list = instab.tolist()
        plain_list = plain.tolist()
        for j, packed in enumerate(uniq.tolist()):
            p = (packed >> 6, packed & 63)
            self._events[p] = self._events.get(p, 0) + ev_list[j]
            if instab_list[j]:
                self._instability[p] = (
                    self._instability.get(p, 0) + instab_list[j]
                )
            if plain_list[j]:
                self._withdrawals[p] = (
                    self._withdrawals.get(p, 0) + plain_list[j]
                )

        # The sequential multiset scan, over primitives.
        out = base_flags.tolist()
        ann_list = ann.tolist()
        peer_list = data["peer_id"].tolist()
        net_list = data["net"].tolist()
        plen_list = data["plen"].tolist()
        origin_list = origins.tolist()
        route_origin = self._route_origin
        origin_count = self._origin_count
        last_origin = self._last_origin
        moas = self.moas_prefixes
        for i in range(n):
            net = net_list[i]
            plen = plen_list[i]
            p = (net, plen)
            key = (peer_list[i], net, plen)
            if ann_list[i]:
                origin = origin_list[i]
                flags = out[i]
                old = route_origin.get(key)
                if old is not None:
                    _drop_origin(origin_count, p, old)
                bucket = origin_count.get(p)
                if bucket and any(o != origin for o in bucket):
                    flags |= MOAS_CONFLICT
                    moas.add(p)
                last = last_origin.get(p)
                if last is not None and last != origin:
                    flags |= ORIGIN_CHANGE
                last_origin[p] = origin
                cover = _covering(origin_count, net, plen)
                if cover is not None:
                    flags |= (
                        SUBPREFIX_DEAGG
                        if origin in origin_count[cover]
                        else SUBPREFIX_FOREIGN
                    )
                if bucket is None:
                    origin_count[p] = {origin: 1}
                else:
                    bucket[origin] = bucket.get(origin, 0) + 1
                route_origin[key] = origin
                out[i] = flags
            else:
                old = route_origin.pop(key, None)
                if old is not None:
                    _drop_origin(origin_count, p, old)

        result = np.asarray(out, dtype=np.uint8)
        for bit, name in FLAGS:
            hits = int(np.count_nonzero(result & bit))
            if hits:
                self.counts[name] += hits
        return result

    def stability(self) -> Dict[Tuple[int, int], Tuple[int, int, int]]:
        return {
            p: (
                self._events[p],
                self._instability.get(p, 0),
                self._withdrawals.get(p, 0),
            )
            for p in self._events
        }

    def state_digest(self) -> str:
        return _state_digest(
            self._route_origin,
            self._origin_count,
            self._last_origin,
            self._events,
            self._instability,
            self._withdrawals,
            self.moas_prefixes,
        )


class DetectionResult:
    """Flags + the detector that produced them (for state queries)."""

    __slots__ = ("flags", "detector")

    def __init__(self, flags: List[int], detector) -> None:
        self.flags = flags
        self.detector = detector

    @property
    def counts(self) -> Dict[str, int]:
        return self.detector.counts

    def digest(self, records: Sequence[UpdateRecord]) -> str:
        return detection_digest(records, self.flags)


def detect_records(
    records: Iterable[UpdateRecord],
    topology: Optional[AsRelationships] = None,
    detector: Optional[StreamDetector] = None,
    classifier: Optional[StreamClassifier] = None,
) -> DetectionResult:
    """Streaming-tier detection over a time-ordered record stream."""
    detector = detector if detector is not None else StreamDetector(topology)
    classifier = classifier if classifier is not None else StreamClassifier()
    flags = [
        detector.feed(record, classifier.feed(record).category)
        for record in records
    ]
    return DetectionResult(flags, detector)


def detect_records_columnar(
    records: Sequence[UpdateRecord],
    topology: Optional[AsRelationships] = None,
    boundaries: Sequence[int] = (),
) -> DetectionResult:
    """Columnar-tier detection, optionally cut into batches at
    ``boundaries`` (row indices) to exercise the cross-batch carry."""
    table = AttributeTable()
    classifier = ColumnClassifier()
    detector = ColumnDetector(topology)
    edges = [0] + sorted(set(boundaries)) + [len(records)]
    flags: List[int] = []
    for lo, hi in zip(edges, edges[1:]):
        if hi <= lo:
            continue
        batch = RecordColumns.from_records(records[lo:hi], table)
        codes, _ = classifier.classify(batch)
        flags.extend(int(f) for f in detector.detect(batch, codes))
    return DetectionResult(flags, detector)


def detection_digest(
    records: Sequence[UpdateRecord], flags: Sequence[int]
) -> str:
    """Canonical line digest over (record, flags) pairs — the common
    coin of all three detection tiers (the verify oracle re-implements
    this format without importing it)."""
    if len(records) != len(flags):
        raise ValueError("records and flags are not aligned")
    hasher = hashlib.sha256()
    for record, flag in zip(records, flags):
        prefix = record.prefix
        kind = "A" if record.kind is UpdateKind.ANNOUNCE else "W"
        line = (
            f"{record.time!r}|{record.peer_id}|{record.peer_asn}|"
            f"{prefix.network}/{prefix.length}|{kind}|{int(flag)}\n"
        )
        hasher.update(line.encode())
    return hasher.hexdigest()


def stability_scores(
    stability: Dict[Tuple[int, int], Tuple[int, int, int]],
) -> Dict[Tuple[int, int], float]:
    """Per-prefix stability score in ``[0, 1]``.

    Following the path-vector stability metrics (arXiv:1204.5641): the
    score is the fraction of a route's update activity that is *not*
    instability (AADiff/WADiff/WADup) and *not* a reachability loss
    (plain withdrawal).  A never-perturbed route scores 1.0; a route
    whose every event churns forwarding scores 0.0.  Scores are derived
    from the integer counters, so every tier computes identical floats.
    """
    return {
        p: 1.0 - (instability + withdrawals) / events
        for p, (events, instability, withdrawals) in stability.items()
    }
