"""Per-peer update contribution vs routing-table share (Figure 6).

Figure 6 scatters, for every peer and every day of a month, the peer's
share of the default-free routing table (x) against its share of that
day's updates in one category (y).  The findings: points do not
cluster on the diagonal (no correlation between table share and update
share), and no AS consistently dominates.

:func:`contribution_points` builds the scatter; :func:`correlation`
and :func:`consistent_dominators` compute the two checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.classifier import ClassifiedUpdate
from ..core.instability import counts_by_peer
from ..core.taxonomy import UpdateCategory

__all__ = [
    "ContributionPoint",
    "contribution_points",
    "correlation",
    "consistent_dominators",
]


@dataclass(frozen=True)
class ContributionPoint:
    """One scatter point: a peer on a day in one category."""

    day: int
    peer_asn: int
    table_share: float
    update_share: float


def contribution_points(
    daily_updates: Dict[int, Sequence[ClassifiedUpdate]],
    table_shares: Dict[int, float],
    category: UpdateCategory,
) -> List[ContributionPoint]:
    """Build Figure 6's scatter for one category.

    ``daily_updates`` maps day → that day's classified updates — or,
    on the columnar tier, day → ``(RecordColumns, codes)``;
    ``table_shares`` maps peer ASN → share of the routing table.
    """
    points: List[ContributionPoint] = []
    for day, updates in sorted(daily_updates.items()):
        if isinstance(updates, tuple):
            from ..core.instability import counts_by_peer_columns

            by_peer = counts_by_peer_columns(*updates)
        else:
            by_peer = counts_by_peer(updates)
        day_total = sum(
            counts[category] for counts in by_peer.values()
        )
        if day_total == 0:
            continue
        for asn, share in table_shares.items():
            count = by_peer[asn][category] if asn in by_peer else 0
            points.append(
                ContributionPoint(
                    day=day,
                    peer_asn=asn,
                    table_share=share,
                    update_share=count / day_total,
                )
            )
    return points


def correlation(points: Sequence[ContributionPoint]) -> float:
    """Pearson correlation between table share and update share.

    The paper's claim is the *absence* of correlation ("few days
    cluster about the line"); the Figure 6 experiment checks this
    stays small.
    """
    if len(points) < 2:
        return 0.0
    x = np.asarray([p.table_share for p in points])
    y = np.asarray([p.update_share for p in points])
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def consistent_dominators(
    points: Sequence[ContributionPoint],
    share_threshold: float = 0.3,
    day_fraction: float = 0.8,
) -> List[int]:
    """Peers contributing over ``share_threshold`` of updates on at
    least ``day_fraction`` of days — the "no single AS consistently
    dominates" check expects this empty (or nearly)."""
    by_peer_days: Dict[int, List[float]] = {}
    days = {p.day for p in points}
    for point in points:
        by_peer_days.setdefault(point.peer_asn, []).append(
            point.update_share
        )
    dominators: List[int] = []
    for asn, shares in by_peer_days.items():
        heavy_days = sum(1 for s in shares if s > share_threshold)
        if days and heavy_days / len(days) >= day_fraction:
            dominators.append(asn)
    return sorted(dominators)
