"""FFT-based spectral estimation (Figure 5's first method).

Figure 5a's correlogram: "a traditional fast Fourier transform (FFT)
of the autocorrelation function of the data" — the Blackman–Tukey /
correlogram power spectral density.  We implement that estimator plus
a plain periodogram and the peak-finding used to confirm the 24-hour
and 7-day lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "autocorrelation",
    "correlogram_psd",
    "periodogram",
    "dominant_periods",
    "SpectralPeak",
]


def autocorrelation(series: Sequence[float], max_lag: int = None) -> np.ndarray:
    """Biased sample autocorrelation up to ``max_lag`` (default n//2)."""
    x = np.asarray(series, dtype=float)
    n = x.size
    if n == 0:
        return np.zeros(0)
    if max_lag is None:
        max_lag = n // 2
    x = x - x.mean()
    denominator = float(np.dot(x, x))
    if denominator == 0.0:
        return np.zeros(max_lag + 1)
    result = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        result[lag] = np.dot(x[: n - lag], x[lag:]) / denominator
    return result


def correlogram_psd(
    series: Sequence[float],
    max_lag: int = None,
    n_freq: int = 512,
) -> Tuple[np.ndarray, np.ndarray]:
    """Blackman–Tukey PSD: FFT of the (Bartlett-windowed) ACF.

    Returns ``(frequencies, power)`` with frequency in cycles per
    sample (so hourly samples give cycles/hour, matching Figure 5a's
    1/hour axis).
    """
    acf = autocorrelation(series, max_lag)
    m = acf.size
    if m == 0:
        return np.zeros(0), np.zeros(0)
    window = 1.0 - np.arange(m) / m  # Bartlett taper on the ACF
    tapered = acf * window
    # Two-sided symmetric extension, evaluated at n_freq positive freqs.
    freqs = np.linspace(0.0, 0.5, n_freq)
    lags = np.arange(1, m)
    power = np.empty(n_freq)
    for i, f in enumerate(freqs):
        power[i] = tapered[0] + 2.0 * np.dot(
            tapered[1:], np.cos(2.0 * np.pi * f * lags)
        )
    return freqs, np.maximum(power, 0.0)


def periodogram(series: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Plain periodogram: |FFT|²/n at the positive Fourier frequencies."""
    x = np.asarray(series, dtype=float)
    n = x.size
    if n == 0:
        return np.zeros(0), np.zeros(0)
    x = x - x.mean()
    spectrum = np.fft.rfft(x)
    power = (spectrum.real**2 + spectrum.imag**2) / n
    freqs = np.fft.rfftfreq(n)
    return freqs, power


@dataclass(frozen=True)
class SpectralPeak:
    """One significant spectral line."""

    frequency: float   #: cycles per sample
    period: float      #: samples per cycle
    power: float


def dominant_periods(
    freqs: Sequence[float],
    power: Sequence[float],
    n_peaks: int = 5,
    min_frequency: float = 1e-4,
) -> List[SpectralPeak]:
    """The ``n_peaks`` largest *local maxima* of the spectrum.

    ``min_frequency`` excludes the DC/trend end.  Peaks are returned
    in descending power order.
    """
    f = np.asarray(freqs, dtype=float)
    p = np.asarray(power, dtype=float)
    peaks: List[SpectralPeak] = []
    for i in range(1, len(p) - 1):
        if f[i] < min_frequency:
            continue
        if p[i] >= p[i - 1] and p[i] >= p[i + 1]:
            peaks.append(
                SpectralPeak(
                    frequency=float(f[i]),
                    period=float(1.0 / f[i]),
                    power=float(p[i]),
                )
            )
    peaks.sort(key=lambda peak: peak.power, reverse=True)
    return peaks[:n_peaks]


def has_period(
    peaks: Sequence[SpectralPeak],
    period: float,
    tolerance: float = 0.15,
) -> bool:
    """True if some peak's period is within ``tolerance`` (relative)
    of ``period`` — the Figure 5 check for the 24 h and 168 h lines."""
    return any(
        abs(peak.period - period) / period <= tolerance for peak in peaks
    )
