"""Maximum-entropy (Burg) spectral estimation (Figure 5's second method).

Figure 5a overlays "maximum-entropy (MEM) spectral estimation" on the
FFT correlogram: "These two approaches differ in their estimation
methods, and provide a mechanism for validation of results."  This is
Burg's algorithm: fit an order-``p`` autoregressive model by
minimizing forward+backward prediction error, then evaluate the AR
model's spectrum

    P(f) = σ² / |1 + Σ a_k e^{-2πikf}|².
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["burg", "mem_psd"]


def burg(series: Sequence[float], order: int) -> Tuple[np.ndarray, float]:
    """Burg's method: AR coefficients ``a`` (length ``order``) and the
    white-noise variance σ².

    The model convention is ``x_t = -Σ a_k x_{t-k} + e_t`` (so the
    spectrum denominator is ``|1 + Σ a_k z^-k|²``).
    """
    x = np.asarray(series, dtype=float)
    n = x.size
    if order < 1:
        raise ValueError("order must be >= 1")
    if n <= order:
        raise ValueError(f"series length {n} too short for order {order}")
    x = x - x.mean()
    forward = x[1:].copy()
    backward = x[:-1].copy()
    a = np.zeros(order)
    error = float(np.dot(x, x)) / n
    for m in range(order):
        numerator = -2.0 * np.dot(forward, backward)
        denominator = np.dot(forward, forward) + np.dot(backward, backward)
        k = 0.0 if denominator == 0.0 else numerator / denominator
        # Levinson update of the AR coefficients.
        new_a = a.copy()
        new_a[m] = k
        for i in range(m):
            new_a[i] = a[i] + k * a[m - 1 - i]
        a = new_a
        error *= 1.0 - k * k
        if m < order - 1:
            new_forward = forward[1:] + k * backward[1:]
            new_backward = backward[:-1] + k * forward[:-1]
            forward, backward = new_forward, new_backward
    return a, max(error, 1e-300)


def mem_psd(
    series: Sequence[float],
    order: int = None,
    n_freq: int = 512,
) -> Tuple[np.ndarray, np.ndarray]:
    """Maximum-entropy PSD via Burg AR fitting.

    ``order`` defaults to ``min(n // 3, 40)`` — enough poles to resolve
    the daily and weekly lines in a two-month hourly series without
    splitting peaks.  Returns ``(frequencies, power)`` with frequency
    in cycles per sample, like :func:`repro.analysis.spectral.
    correlogram_psd`.
    """
    x = np.asarray(series, dtype=float)
    if order is None:
        order = max(2, min(x.size // 3, 40))
    a, variance = burg(x, order)
    freqs = np.linspace(0.0, 0.5, n_freq)
    k = np.arange(1, order + 1)
    # Denominator |1 + sum a_k exp(-2pi i f k)|^2 per frequency.
    phases = np.exp(-2j * np.pi * np.outer(freqs, k))
    denominator = np.abs(1.0 + phases @ a) ** 2
    power = variance / np.maximum(denominator, 1e-300)
    return freqs, power
