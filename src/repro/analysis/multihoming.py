"""Multi-homing analysis (Figure 10).

Two entry points:

- :func:`count_multihomed` — count prefixes reachable via multiple
  distinct paths in a routing table snapshot (what the paper counted
  in Mae-East's tables each day);
- :func:`series_summary` — the Figure 10 readings over a generated
  :class:`~repro.topology.multihoming.MultihomingSeries`: linear
  growth rate, the >25% fraction, the late-May spike, and the gap.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..bgp.rib import LocRib
from ..net.prefix import Prefix
from ..topology.multihoming import MultihomingSeries

__all__ = ["count_multihomed", "MultihomingSummary", "series_summary"]


def count_multihomed(rib: LocRib) -> int:
    """Prefixes with candidate routes through 2+ distinct origins or
    next hops in ``rib`` — the "advertised with one or more [extra]
    paths" count of Figure 10."""
    count = 0
    for prefix in rib.prefixes():
        candidates = rib.adj_in.candidates(prefix)
        paths = {
            (route.attributes.next_hop, tuple(route.attributes.as_path))
            for route in candidates
        }
        if len(paths) >= 2:
            count += 1
    return count


def multihomed_by_origin(
    announcements: Iterable[Tuple[Prefix, int]],
) -> int:
    """Count prefixes announced by 2+ distinct origin ASes (an
    alternative, origin-based multihoming measure)."""
    origins: Dict[Prefix, set] = defaultdict(set)
    for prefix, asn in announcements:
        origins[prefix].add(asn)
    return sum(1 for ases in origins.values() if len(ases) >= 2)


@dataclass
class MultihomingSummary:
    """Figure 10's shape readings."""

    growth_per_day: float
    start_count: int
    end_count: int
    peak_count: int
    peak_day: int
    has_gap: bool
    final_fraction: float

    @property
    def grew_linearly(self) -> bool:
        """True if start→end growth is consistent with the fitted
        daily rate (within 50%), i.e. no super-linear blow-up."""
        days = max(1, self.observed_days)
        implied = (self.end_count - self.start_count) / days
        if self.growth_per_day == 0:
            return implied == 0
        return 0.5 <= implied / self.growth_per_day <= 2.0

    observed_days: int = 0


def series_summary(
    series: MultihomingSeries,
    total_prefixes: int = 42000,
) -> MultihomingSummary:
    """Summarize a daily multi-homed-count series."""
    observed = series.observed()
    if not observed:
        raise ValueError("empty series")
    counts = [c for _, c in observed]
    peak_index = max(range(len(counts)), key=lambda i: counts[i])
    return MultihomingSummary(
        growth_per_day=series.growth_per_day(),
        start_count=counts[0],
        end_count=counts[-1],
        peak_count=counts[peak_index],
        peak_day=observed[peak_index][0],
        has_gap=any(c is None for c in series.counts),
        final_fraction=counts[-1] / total_prefixes,
        observed_days=observed[-1][0] - observed[0][0],
    )
