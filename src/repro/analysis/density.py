"""The instability density matrix (Figure 3).

Figure 3 renders seven months of instability as a day × time-of-day
grid of ten-minute aggregates: black above a threshold on the
log-detrended data, gray below, white where data is missing; weekends
are marked on the axis.  This module computes that matrix and the
summary statistics the experiment checks (diurnal contrast, weekend
contrast, the 10am maintenance line, incident days).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .timeseries import log_detrend, threshold_above_mean

__all__ = ["DensityCell", "DensityMatrix", "build_density_matrix"]

BINS_PER_DAY = 144


class DensityCell:
    """Cell states of the Figure 3 grid."""

    MISSING = 0   #: white — no data collected
    LOW = 1       #: light gray — below threshold
    HIGH = 2      #: black — above threshold


@dataclass
class DensityMatrix:
    """The computed Figure 3 grid plus its inputs.

    ``cells[day][bin]`` holds a :class:`DensityCell` state;
    ``raw[day][bin]`` the raw counts (-1 for missing); ``threshold``
    the detrended-log threshold actually applied.
    """

    cells: np.ndarray
    raw: np.ndarray
    detrended: np.ndarray
    threshold: float
    days: List[int]

    # -- summary statistics -------------------------------------------------

    def high_fraction_by_bin(self) -> np.ndarray:
        """Share of days each time-of-day bin is black (columns of the
        visual pattern: afternoons dark, nights light)."""
        present = self.cells != DensityCell.MISSING
        high = self.cells == DensityCell.HIGH
        with np.errstate(invalid="ignore"):
            return np.where(
                present.sum(axis=0) > 0,
                high.sum(axis=0) / np.maximum(present.sum(axis=0), 1),
                0.0,
            )

    def high_fraction_for_days(self, days: Sequence[int]) -> float:
        """Black-cell share over a subset of days (weekends, say)."""
        rows = [i for i, day in enumerate(self.days) if day in set(days)]
        if not rows:
            return 0.0
        sub = self.cells[rows]
        present = (sub != DensityCell.MISSING).sum()
        if present == 0:
            return 0.0
        return float((sub == DensityCell.HIGH).sum() / present)

    def hour_band_fraction(self, start_hour: float, end_hour: float) -> float:
        """Black share within a daily hour band across all days."""
        start_bin = int(start_hour * 6)
        end_bin = int(end_hour * 6)
        sub = self.cells[:, start_bin:end_bin]
        present = (sub != DensityCell.MISSING).sum()
        if present == 0:
            return 0.0
        return float((sub == DensityCell.HIGH).sum() / present)

    def missing_fraction(self) -> float:
        return float((self.cells == DensityCell.MISSING).mean())

    def render_ascii(
        self, max_width: int = 72, max_height: int = 36
    ) -> str:
        """Render the Figure 3 grid as ASCII art.

        Columns are days (left→right through the campaign), rows are
        time-of-day (midnight at the bottom, like the paper's figure);
        ``#`` = above threshold, ``.`` = below, space = missing data.
        The grid is majority-downsampled to fit the given box.
        """
        n_days, n_bins = self.cells.shape
        day_step = max(1, -(-n_days // max_width))
        bin_step = max(1, -(-n_bins // max_height))
        rows: List[str] = []
        for bin_start in range(n_bins - bin_step, -1, -bin_step):
            row_chars = []
            for day_start in range(0, n_days, day_step):
                block = self.cells[
                    day_start:day_start + day_step,
                    bin_start:bin_start + bin_step,
                ]
                high = int((block == DensityCell.HIGH).sum())
                low = int((block == DensityCell.LOW).sum())
                missing = int((block == DensityCell.MISSING).sum())
                if missing >= high + low:
                    row_chars.append(" ")
                elif high >= low:
                    row_chars.append("#")
                else:
                    row_chars.append(".")
            hour = (bin_start // 6) % 24
            label = f"{hour:02d}:00" if bin_start % (6 * bin_step) == 0 else "     "
            rows.append(f"{label} |" + "".join(row_chars))
        rows.append("      +" + "-" * ((n_days + day_step - 1) // day_step))
        return "\n".join(rows)

    def raw_threshold_equivalent(self, day_index: int) -> float:
        """The raw 10-minute count the threshold corresponds to on a
        given day — the paper's "345 updates ... in March to 770 ...
        in September" statement (the threshold is constant in
        detrended-log space, so it grows with the trend in raw space).
        """
        logged = np.log(np.maximum(self.raw[day_index], 1.0))
        detrended_day = self.detrended[day_index]
        # raw = exp(detrended + trend): recover the day's trend level
        # from any present bin, then map the threshold back.
        present = self.raw[day_index] >= 0
        if not present.any():
            return float("nan")
        trend = logged[present] - detrended_day[present]
        return float(np.exp(self.threshold + np.median(trend)))


def build_density_matrix(
    day_bins: Dict[int, Sequence[int]],
    lost_bins: Optional[Dict[int, Set[int]]] = None,
    threshold_offset_std: float = 0.5,
) -> DensityMatrix:
    """Build the Figure 3 matrix from per-day 10-minute counts.

    ``day_bins`` maps day index → 144 instability counts; ``lost_bins``
    marks collection outages (rendered white).  The threshold is
    computed on the concatenated log-detrended series, exactly as the
    paper describes.
    """
    days = sorted(day_bins)
    raw = np.full((len(days), BINS_PER_DAY), -1.0)
    for row, day in enumerate(days):
        counts = np.asarray(day_bins[day], dtype=float)
        if counts.size != BINS_PER_DAY:
            raise ValueError(
                f"day {day}: expected {BINS_PER_DAY} bins, got {counts.size}"
            )
        raw[row] = counts
        for lost in (lost_bins or {}).get(day, ()):
            raw[row][lost] = -1.0
    flat = raw.reshape(-1)
    present_mask = flat >= 0
    detrended_flat = np.zeros_like(flat)
    detrended_flat[present_mask] = log_detrend(flat[present_mask])
    threshold = threshold_above_mean(
        detrended_flat[present_mask], threshold_offset_std
    )
    cells = np.full(raw.shape, DensityCell.MISSING, dtype=int)
    detrended = detrended_flat.reshape(raw.shape)
    present = raw >= 0
    cells[present & (detrended > threshold)] = DensityCell.HIGH
    cells[present & (detrended <= threshold)] = DensityCell.LOW
    return DensityMatrix(
        cells=cells,
        raw=raw,
        detrended=detrended,
        threshold=threshold,
        days=days,
    )
