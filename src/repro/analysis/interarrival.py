"""Inter-arrival time histograms (Figure 8).

Figure 8 bins the inter-arrival times of Prefix+AS events into
log-spaced bins from one second to 24 hours, per category, and draws a
modified box plot per bin over the days of a month: "the black dot
represents the median proportion for all the days for each event bin;
the vertical line below the dot contains the first quartile... and the
line above the dot represents the fourth quartile."

The headline result: "the predominant frequencies in each of the
graphs are captured by the thirty second and one minute bins... these
frequencies account for half of the measured statistics."
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..collector.record import PrefixAs
from ..core.classifier import ClassifiedUpdate
from ..core.taxonomy import UpdateCategory

__all__ = [
    "FIGURE8_BINS",
    "bin_label",
    "interarrival_times",
    "interarrival_columns",
    "histogram_counts",
    "histogram_proportions",
    "proportions_from_counts",
    "BinBox",
    "daily_boxes",
    "timer_bin_mass",
]

#: Figure 8's bin edges (seconds): 1s 5s 30s 1m 5m 10m 30m 1h 2h 4h 8h 24h.
#: Each labelled bin b holds gaps in (previous_edge, b].
FIGURE8_BINS: Tuple[float, ...] = (
    1.0, 5.0, 30.0, 60.0, 300.0, 600.0, 1800.0,
    3600.0, 7200.0, 14400.0, 28800.0, 86400.0,
)

_LABELS = (
    "1s", "5s", "30s", "1m", "5m", "10m", "30m", "1h", "2h", "4h", "8h", "24h",
)


def bin_label(index: int) -> str:
    """The paper's label for bin ``index``."""
    return _LABELS[index]


def bin_index(gap: float) -> Optional[int]:
    """The Figure 8 bin holding ``gap`` seconds (None if > 24h)."""
    for i, edge in enumerate(FIGURE8_BINS):
        if gap <= edge:
            return i
    return None


def interarrival_times(
    updates: Iterable[ClassifiedUpdate],
    category: Optional[UpdateCategory] = None,
) -> List[float]:
    """Gaps between consecutive events of each Prefix+AS pair.

    Restricted to one category when given (Figure 8 plots each of the
    four fine-grained categories separately).  ``updates`` may also be
    a ``(RecordColumns, codes)`` pair from the columnar tier, which is
    dispatched to :func:`interarrival_columns`.
    """
    if isinstance(updates, tuple):
        columns, codes = updates
        return interarrival_columns(columns, codes, category)
    by_pair: Dict[PrefixAs, List[float]] = defaultdict(list)
    for update in updates:
        if category is None or update.category is category:
            by_pair[update.prefix_as].append(update.time)
    gaps: List[float] = []
    for times in by_pair.values():
        times.sort()
        gaps.extend(b - a for a, b in zip(times, times[1:]))
    return gaps


def interarrival_columns(
    columns,
    codes: Optional[np.ndarray] = None,
    category: Optional[UpdateCategory] = None,
) -> np.ndarray:
    """Columnar :func:`interarrival_times`: per-pair gaps computed by
    one lexsort over (Prefix+AS, time) and a masked diff.

    Returns the same multiset of gaps as the streaming version (the
    ordering differs — gaps are grouped per pair in key order)."""
    data = columns.data
    if category is not None:
        data = data[np.asarray(codes) == category.value]
    if len(data) < 2:
        return np.empty(0, dtype=float)
    order = np.lexsort(
        (data["time"], data["plen"], data["net"], data["peer_asn"])
    )
    s = data[order]
    same_pair = (
        (s["peer_asn"][1:] == s["peer_asn"][:-1])
        & (s["net"][1:] == s["net"][:-1])
        & (s["plen"][1:] == s["plen"][:-1])
    )
    return np.diff(s["time"])[same_pair]


def histogram_counts(gaps: Sequence[float]) -> np.ndarray:
    """Raw per-bin gap counts (gaps above 24h are dropped).

    The mergeable form of the Figure 8 histogram: partial counts from
    independent shards sum with ``+`` (associative, commutative, zero
    array as identity) and :func:`proportions_from_counts` turns the
    merged total into the paper's proportions.
    """
    if not isinstance(gaps, np.ndarray):
        gaps = np.asarray(list(gaps), dtype=float)
    # Bin b holds gaps in (edge[b-1], edge[b]].
    indices = np.searchsorted(FIGURE8_BINS, gaps, side="left")
    indices = indices[indices < len(FIGURE8_BINS)]  # drop > 24h
    return np.bincount(indices, minlength=len(FIGURE8_BINS)).astype(np.int64)


def proportions_from_counts(counts: Sequence[int]) -> List[float]:
    """Per-bin proportions from raw counts (all zeros if empty)."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return [0.0] * len(FIGURE8_BINS)
    return (counts / total).tolist()


def histogram_proportions(gaps: Sequence[float]) -> List[float]:
    """The proportion of ``gaps`` in each Figure 8 bin."""
    if isinstance(gaps, np.ndarray):
        return proportions_from_counts(histogram_counts(gaps))
    counts = [0] * len(FIGURE8_BINS)
    total = 0
    for gap in gaps:
        index = bin_index(gap)
        if index is not None:
            counts[index] += 1
            total += 1
    if total == 0:
        return [0.0] * len(FIGURE8_BINS)
    return [c / total for c in counts]


@dataclass(frozen=True)
class BinBox:
    """Figure 8's modified box for one bin: median and quartiles of
    the daily proportions."""

    label: str
    median: float
    q1: float
    q3: float


def daily_boxes(
    daily_updates: Sequence[Sequence[ClassifiedUpdate]],
    category: UpdateCategory,
) -> List[BinBox]:
    """Box statistics over days for one category (one Figure 8 panel).

    ``daily_updates`` is one classified-update sequence per day — or,
    on the columnar tier, one ``(RecordColumns, codes)`` pair per day.
    """
    per_day: List[List[float]] = []
    for updates in daily_updates:
        gaps = interarrival_times(updates, category)
        per_day.append(histogram_proportions(gaps))
    boxes: List[BinBox] = []
    for i in range(len(FIGURE8_BINS)):
        values = [day[i] for day in per_day if sum(day) > 0]
        if not values:
            boxes.append(BinBox(bin_label(i), 0.0, 0.0, 0.0))
            continue
        arr = np.asarray(values)
        boxes.append(
            BinBox(
                label=bin_label(i),
                median=float(np.median(arr)),
                q1=float(np.percentile(arr, 25)),
                q3=float(np.percentile(arr, 75)),
            )
        )
    return boxes


def timer_bin_mass(proportions: Sequence[float]) -> float:
    """The combined mass of the 30-second and 1-minute bins — the
    paper's "account for half of the measured statistics" check."""
    index_30s = _LABELS.index("30s")
    index_1m = _LABELS.index("1m")
    return proportions[index_30s] + proportions[index_1m]
