"""Proportion of routes affected by updates per day (Figure 9).

Figure 9 plots, per day, the fraction of Prefix+AS tuples touched by
each category of routing update.  The paper's readings:

- 3–10% of routes see ≥1 WADiff per day;
- 5–20% see ≥1 AADiff per day;
- 35–100% (median 50%) are involved in at least one category;
- hence most (~80%) of routes are stable on a typical day;
- only days with ≥80% collection coverage are shown.

The computation needs only *which pairs had events*, so it can run
either on classified records or directly on generator day plans (the
unscaled allocation) — both entry points are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.classifier import ClassifiedUpdate
from ..core.taxonomy import UpdateCategory

__all__ = ["DayAffected", "affected_from_updates", "affected_series_stats"]


@dataclass(frozen=True)
class DayAffected:
    """Per-day affected-route fractions."""

    day: int
    fractions: Dict[UpdateCategory, float]
    any_fraction: float
    coverage: float = 1.0

    def stable_fraction(self) -> float:
        """Routes untouched by any update that day."""
        return 1.0 - self.any_fraction


def affected_from_updates(
    updates: Iterable[ClassifiedUpdate],
    total_pairs: int,
    day: int = 0,
    coverage: float = 1.0,
    categories: Sequence[UpdateCategory] = tuple(UpdateCategory),
) -> DayAffected:
    """Compute one day's affected fractions from classified updates."""
    seen: Dict[UpdateCategory, Set] = {c: set() for c in categories}
    seen_any: Set = set()
    for update in updates:
        if update.category in seen:
            seen[update.category].add(update.prefix_as)
        seen_any.add(update.prefix_as)
    fractions = {
        category: len(pairs) / total_pairs if total_pairs else 0.0
        for category, pairs in seen.items()
    }
    return DayAffected(
        day=day,
        fractions=fractions,
        any_fraction=len(seen_any) / total_pairs if total_pairs else 0.0,
        coverage=coverage,
    )


@dataclass
class AffectedSeriesStats:
    """Summary over a campaign of :class:`DayAffected` values."""

    wadiff_range: Tuple[float, float]
    aadiff_range: Tuple[float, float]
    any_range: Tuple[float, float]
    any_median: float
    stable_median: float
    n_days: int


def affected_series_stats(
    days: Sequence[DayAffected],
    min_coverage: float = 0.8,
) -> AffectedSeriesStats:
    """Figure 9's summary, filtered to well-covered days (paper: "Days
    shown have at least 80 percent of the date's data collected")."""
    kept = [d for d in days if d.coverage >= min_coverage]
    if not kept:
        raise ValueError("no days meet the coverage requirement")

    def range_of(category: UpdateCategory) -> Tuple[float, float]:
        values = [d.fractions.get(category, 0.0) for d in kept]
        return (min(values), max(values))

    any_values = sorted(d.any_fraction for d in kept)
    return AffectedSeriesStats(
        wadiff_range=range_of(UpdateCategory.WADIFF),
        aadiff_range=range_of(UpdateCategory.AADIFF),
        any_range=(any_values[0], any_values[-1]),
        any_median=float(np.median(any_values)),
        stable_median=1.0 - float(np.median(any_values)),
        n_days=len(kept),
    )
