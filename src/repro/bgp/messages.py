"""BGP message types (RFC 4271 §4).

Four message types flow over a BGP session: OPEN (capabilities/identity
exchange at session start), UPDATE (route announcements and withdrawals
— the messages the paper measures), KEEPALIVE (liveness), and
NOTIFICATION (fatal error + session teardown).

These are plain immutable dataclasses; the wire codec lives in
:mod:`repro.bgp.wire` and the session logic in :mod:`repro.bgp.session`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Tuple

from ..net.prefix import Prefix
from .attributes import PathAttributes

__all__ = [
    "MessageType",
    "NotificationCode",
    "OpenMessage",
    "UpdateMessage",
    "KeepAliveMessage",
    "NotificationMessage",
    "DEFAULT_HOLD_TIME",
]

#: Default hold time in seconds; keepalives are sent at a third of this,
#: the conventional operational setting the paper's flap-storm dynamics
#: hinge on (delayed keepalives breach the hold timer).
DEFAULT_HOLD_TIME = 90.0


class MessageType(IntEnum):
    """Wire-format message type codes."""

    OPEN = 1
    UPDATE = 2
    NOTIFICATION = 3
    KEEPALIVE = 4


class NotificationCode(IntEnum):
    """Top-level NOTIFICATION error codes (RFC 4271 §4.5)."""

    MESSAGE_HEADER_ERROR = 1
    OPEN_MESSAGE_ERROR = 2
    UPDATE_MESSAGE_ERROR = 3
    HOLD_TIMER_EXPIRED = 4
    FSM_ERROR = 5
    CEASE = 6


@dataclass(frozen=True)
class OpenMessage:
    """OPEN: announces the speaker's AS, hold time, and identifier."""

    asn: int
    hold_time: float = DEFAULT_HOLD_TIME
    bgp_identifier: int = 0
    version: int = 4

    @property
    def type(self) -> MessageType:
        return MessageType.OPEN


@dataclass(frozen=True)
class UpdateMessage:
    """UPDATE: zero or more withdrawals plus zero or more announcements.

    A single UPDATE carries one attribute set shared by every announced
    prefix (``announced``) and an independent list of withdrawn prefixes
    — exactly the RFC 4271 structure.  The paper's per-prefix counting
    flattens each UPDATE into ``len(withdrawn)`` withdrawal events and
    ``len(announced)`` announcement events.
    """

    withdrawn: Tuple[Prefix, ...] = ()
    announced: Tuple[Prefix, ...] = ()
    attributes: PathAttributes = field(default_factory=PathAttributes)

    def __post_init__(self) -> None:
        object.__setattr__(self, "withdrawn", tuple(self.withdrawn))
        object.__setattr__(self, "announced", tuple(self.announced))

    @property
    def type(self) -> MessageType:
        return MessageType.UPDATE

    @property
    def prefix_update_count(self) -> int:
        """Total per-prefix events this UPDATE contributes (paper's unit)."""
        return len(self.withdrawn) + len(self.announced)

    @property
    def is_empty(self) -> bool:
        return not self.withdrawn and not self.announced


@dataclass(frozen=True)
class KeepAliveMessage:
    """KEEPALIVE: resets the peer's hold timer; carries no data."""

    @property
    def type(self) -> MessageType:
        return MessageType.KEEPALIVE


@dataclass(frozen=True)
class NotificationMessage:
    """NOTIFICATION: reports a fatal error; the session closes after it."""

    code: NotificationCode
    subcode: int = 0
    data: bytes = b""

    @property
    def type(self) -> MessageType:
        return MessageType.NOTIFICATION
