"""AS-path regular expressions (router-style as-path access lists).

The paper notes routing policies "have been growing in size and
complexity" since the NSFNet; the workhorse of that complexity on real
routers is the *as-path access list*: a regular expression over AS
numbers.  This module implements the classic dialect:

=========  =========================================================
token      meaning
=========  =========================================================
``1239``   matches the AS number 1239
``.``      matches any single AS
``_``      matches a boundary (start, end, or between two ASes) —
           so ``_701_`` means "701 appears anywhere on the path"
``^`` /    anchors at the start / end of the path
``$``
``*`` /    zero-or-more / one-or-more / zero-or-one of the previous
``+`` /    element
``?``
``[ ]``    an AS-number set, e.g. ``[701 1239 3561]``
``( )``    grouping
``|``      alternation (between groups or elements)
=========  =========================================================

Implementation: the pattern compiles to an NFA evaluated with the
standard simultaneous-state-set algorithm (linear in path length, no
exponential backtracking), so hostile patterns cannot blow up the
simulated router CPU beyond the modelled policy cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .attributes import AsPath

__all__ = ["AsPathRegexError", "AsPathRegex", "compile_regex"]


class AsPathRegexError(ValueError):
    """Raised for malformed patterns."""


# -- tokens -------------------------------------------------------------------

_BOUNDARY = "_"


def _tokenize(pattern: str) -> List[str]:
    tokens: List[str] = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if ch.isspace():
            i += 1
        elif ch.isdigit():
            j = i
            while j < len(pattern) and pattern[j].isdigit():
                j += 1
            tokens.append(pattern[i:j])
            i = j
        elif ch in ".^$*+?()|[]_":
            tokens.append(ch)
            i += 1
        else:
            raise AsPathRegexError(
                f"unexpected character {ch!r} in pattern {pattern!r}"
            )
    return tokens


# -- NFA construction (Thompson-style) ------------------------------------------
#
# States are integers; transitions are (state, matcher, next_state)
# where matcher is one of:
#   ("as", frozenset) — consume one AS in the set (empty set = any)
#   ("any",)          — consume any one AS
#   ("bound",)        — zero-width boundary assertion
#   ("eps",)          — epsilon


@dataclass
class _Fragment:
    start: int
    accepts: List[int]


class _Builder:
    def __init__(self) -> None:
        self.transitions: List[Tuple[int, tuple, int]] = []
        self._next_state = 0

    def new_state(self) -> int:
        state = self._next_state
        self._next_state += 1
        return state

    def add(self, src: int, matcher: tuple, dst: int) -> None:
        self.transitions.append((src, matcher, dst))


class _Parser:
    """Recursive-descent pattern parser producing an NFA fragment."""

    def __init__(self, tokens: List[str], builder: _Builder) -> None:
        self.tokens = tokens
        self.pos = 0
        self.nfa = builder

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise AsPathRegexError("unexpected end of pattern")
        self.pos += 1
        return token

    # alternation := concat ('|' concat)*
    def parse_alternation(self) -> _Fragment:
        fragments = [self.parse_concat()]
        while self.peek() == "|":
            self.take()
            fragments.append(self.parse_concat())
        if len(fragments) == 1:
            return fragments[0]
        start = self.nfa.new_state()
        accepts: List[int] = []
        for fragment in fragments:
            self.nfa.add(start, ("eps",), fragment.start)
            accepts.extend(fragment.accepts)
        return _Fragment(start, accepts)

    # concat := repeated+
    def parse_concat(self) -> _Fragment:
        fragments: List[_Fragment] = []
        while self.peek() is not None and self.peek() not in ("|", ")"):
            fragments.append(self.parse_repeated())
        if not fragments:
            # empty branch: match the empty path
            state = self.nfa.new_state()
            return _Fragment(state, [state])
        current = fragments[0]
        for nxt in fragments[1:]:
            for accept in current.accepts:
                self.nfa.add(accept, ("eps",), nxt.start)
            current = _Fragment(current.start, nxt.accepts)
        return current

    # repeated := atom ('*' | '+' | '?')?
    def parse_repeated(self) -> _Fragment:
        fragment = self.parse_atom()
        suffix = self.peek()
        if suffix not in ("*", "+", "?"):
            return fragment
        self.take()
        start = self.nfa.new_state()
        end = self.nfa.new_state()
        self.nfa.add(start, ("eps",), fragment.start)
        for accept in fragment.accepts:
            self.nfa.add(accept, ("eps",), end)
            if suffix in ("*", "+"):
                self.nfa.add(accept, ("eps",), fragment.start)  # loop
        if suffix in ("*", "?"):
            self.nfa.add(start, ("eps",), end)  # skip
        return _Fragment(start, [end])

    # atom := ASN | '.' | '_' | '[' set ']' | '(' alternation ')'
    def parse_atom(self) -> _Fragment:
        token = self.take()
        if token.isdigit():
            return self._single(("as", frozenset({int(token)})))
        if token == ".":
            return self._single(("any",))
        if token == _BOUNDARY:
            return self._single(("bound",))
        if token == "[":
            members: Set[int] = set()
            while True:
                inner = self.take()
                if inner == "]":
                    break
                if not inner.isdigit():
                    raise AsPathRegexError(
                        f"AS set may only contain AS numbers, got {inner!r}"
                    )
                members.add(int(inner))
            if not members:
                raise AsPathRegexError("empty AS set")
            return self._single(("as", frozenset(members)))
        if token == "(":
            fragment = self.parse_alternation()
            closing = self.take()
            if closing != ")":
                raise AsPathRegexError("unbalanced parenthesis")
            return fragment
        raise AsPathRegexError(f"unexpected token {token!r}")

    def _single(self, matcher: tuple) -> _Fragment:
        start = self.nfa.new_state()
        end = self.nfa.new_state()
        self.nfa.add(start, matcher, end)
        return _Fragment(start, [end])


class AsPathRegex:
    """A compiled AS-path regular expression.

    Use :func:`compile_regex` (or ``AsPathRegex(pattern)``) and call
    :meth:`search` for the router-style unanchored match or
    :meth:`match_full` for a fully anchored one.
    """

    def __init__(self, pattern: str) -> None:
        self.pattern = pattern.strip()
        anchored_start = self.pattern.startswith("^")
        anchored_end = self.pattern.endswith("$") and not self.pattern.endswith("\\$")
        body = self.pattern
        if anchored_start:
            body = body[1:]
        if anchored_end:
            body = body[:-1]
        self.anchored_start = anchored_start
        self.anchored_end = anchored_end
        builder = _Builder()
        parser = _Parser(_tokenize(body), builder)
        fragment = parser.parse_alternation()
        if parser.peek() is not None:
            raise AsPathRegexError(
                f"trailing tokens at {parser.pos} in {pattern!r}"
            )
        self._start = fragment.start
        self._accepts = set(fragment.accepts)
        # Index transitions by source state.
        self._by_state: dict = {}
        for src, matcher, dst in builder.transitions:
            self._by_state.setdefault(src, []).append((matcher, dst))

    # -- evaluation ---------------------------------------------------------

    def _epsilon_closure(self, states: Set[int], at_boundary: bool) -> Set[int]:
        stack = list(states)
        closure = set(states)
        while stack:
            state = stack.pop()
            for matcher, dst in self._by_state.get(state, ()):
                if matcher[0] == "eps" or (
                    matcher[0] == "bound" and at_boundary
                ):
                    if dst not in closure:
                        closure.add(dst)
                        stack.append(dst)
        return closure

    def _run(self, path: Sequence[int], start_index: int) -> bool:
        """True if the NFA accepts some substring starting at
        ``start_index`` (ending anywhere unless end-anchored)."""
        n = len(path)
        states = self._epsilon_closure({self._start}, at_boundary=True)
        index = start_index
        while True:
            if states & self._accepts:
                if not self.anchored_end or index == n:
                    return True
            if index >= n:
                return False
            symbol = path[index]
            next_states: Set[int] = set()
            for state in states:
                for matcher, dst in self._by_state.get(state, ()):
                    kind = matcher[0]
                    if kind == "any":
                        next_states.add(dst)
                    elif kind == "as" and symbol in matcher[1]:
                        next_states.add(dst)
            index += 1
            if not next_states:
                return False
            states = self._epsilon_closure(
                next_states, at_boundary=True
            )

    def search(self, path: Iterable[int]) -> bool:
        """Router semantics: unanchored unless ^/$ are present."""
        sequence = tuple(path)
        if self.anchored_start:
            return self._run(sequence, 0)
        for start in range(len(sequence) + 1):
            if self._run(sequence, start):
                return True
        return False

    def match_full(self, path: Iterable[int]) -> bool:
        """Anchored at both ends regardless of ^/$."""
        sequence = tuple(path)
        saved = self.anchored_end
        self.anchored_end = True
        try:
            return self._run(sequence, 0)
        finally:
            self.anchored_end = saved

    def __repr__(self) -> str:
        return f"AsPathRegex({self.pattern!r})"


def compile_regex(pattern: str) -> AsPathRegex:
    """Compile a router-style AS-path regular expression."""
    return AsPathRegex(pattern)
