"""A BGP peering session: hold/keepalive timing over the FSM.

:class:`PeeringSession` is one endpoint's view of a session with one
peer.  It owns the :class:`~repro.bgp.fsm.BgpStateMachine`, the hold
timer deadline, and the keepalive schedule.  It is *engine-agnostic*:
every method takes the current simulated time, and instead of
scheduling callbacks it reports what is due via :meth:`poll`.  The
simulator's router calls ``poll`` whenever it processes the session.

The timing model matters for the reproduction: the paper's route-flap
storms happen because a busy router *fails to send keepalives on time*
(its CPU is busy with updates), so the peer's hold timer expires even
though the link is healthy.  The router model therefore sends
keepalives through the same CPU-work queue as updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .fsm import BgpStateMachine, FsmEvent, SessionState
from .messages import (
    DEFAULT_HOLD_TIME,
    KeepAliveMessage,
    NotificationCode,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)

__all__ = ["PeeringSession", "SessionAction", "ActionKind"]


from enum import Enum, auto


class ActionKind(Enum):
    """What the session asks its owner to do."""

    SEND_OPEN = auto()
    SEND_KEEPALIVE = auto()
    SEND_NOTIFICATION = auto()
    SESSION_UP = auto()        #: entered Established — send the table dump
    SESSION_DOWN = auto()      #: left Established — withdraw peer's routes
    RESTART = auto()           #: caller should re-initiate the connection


@dataclass(frozen=True)
class SessionAction:
    """An instruction emitted by the session to its owning router."""

    kind: ActionKind
    time: float
    message: object = None


class PeeringSession:
    """One endpoint of a BGP session.

    Parameters
    ----------
    local_asn, peer_asn:
        AS numbers of the two ends.
    hold_time:
        Negotiated hold time; keepalives go out every ``hold_time / 3``.
    local_id:
        32-bit identifier used in our OPEN.
    """

    def __init__(
        self,
        local_asn: int,
        peer_asn: int,
        hold_time: float = DEFAULT_HOLD_TIME,
        local_id: int = 0,
    ) -> None:
        self.local_asn = local_asn
        self.peer_asn = peer_asn
        self.hold_time = hold_time
        self.local_id = local_id
        self.fsm = BgpStateMachine()
        self.keepalive_interval = hold_time / 3.0
        self._hold_deadline: Optional[float] = None
        self._next_keepalive: Optional[float] = None
        #: message counters (per direction), used by bench/diagnostics
        self.sent_updates = 0
        self.received_updates = 0
        self.sent_keepalives = 0
        self.received_keepalives = 0

    # -- lifecycle --------------------------------------------------------

    def start(self, now: float) -> List[SessionAction]:
        """Begin session establishment (ManualStart + TCP up)."""
        self.fsm.handle(FsmEvent.MANUAL_START, now)
        self.fsm.handle(FsmEvent.TCP_ESTABLISHED, now)
        self._hold_deadline = now + self.hold_time
        return [
            SessionAction(
                ActionKind.SEND_OPEN,
                now,
                OpenMessage(
                    asn=self.local_asn,
                    hold_time=self.hold_time,
                    bgp_identifier=self.local_id,
                ),
            )
        ]

    def stop(self, now: float) -> List[SessionAction]:
        """Administratively stop the session (Cease)."""
        was_established = self.fsm.is_established
        self.fsm.handle(FsmEvent.MANUAL_STOP, now)
        self._hold_deadline = None
        self._next_keepalive = None
        actions = [
            SessionAction(
                ActionKind.SEND_NOTIFICATION,
                now,
                NotificationMessage(NotificationCode.CEASE),
            )
        ]
        if was_established:
            actions.append(SessionAction(ActionKind.SESSION_DOWN, now))
        return actions

    # -- inbound messages ---------------------------------------------------

    def on_open(self, now: float, msg: OpenMessage) -> List[SessionAction]:
        """Handle a received OPEN: negotiate hold time, confirm."""
        self.fsm.handle(FsmEvent.OPEN_RECEIVED, now)
        # RFC 4271: the session uses the smaller of the two hold times.
        self.hold_time = min(self.hold_time, msg.hold_time)
        self.keepalive_interval = self.hold_time / 3.0
        self._hold_deadline = now + self.hold_time
        return [
            SessionAction(ActionKind.SEND_KEEPALIVE, now, KeepAliveMessage())
        ]

    def on_keepalive(self, now: float) -> List[SessionAction]:
        """Handle a received KEEPALIVE: refresh hold timer, maybe go up."""
        before = self.fsm.state
        self.fsm.handle(FsmEvent.KEEPALIVE_RECEIVED, now)
        self.received_keepalives += 1
        self._hold_deadline = now + self.hold_time
        actions: List[SessionAction] = []
        if (
            before is SessionState.OPEN_CONFIRM
            and self.fsm.is_established
        ):
            self._next_keepalive = now + self.keepalive_interval
            actions.append(SessionAction(ActionKind.SESSION_UP, now))
        return actions

    def on_update(self, now: float, msg: UpdateMessage) -> List[SessionAction]:
        """Handle a received UPDATE: refreshes the hold timer too."""
        self.fsm.handle(FsmEvent.UPDATE_RECEIVED, now)
        self.received_updates += 1
        self._hold_deadline = now + self.hold_time
        return []

    def on_transport_failure(self, now: float) -> List[SessionAction]:
        """The underlying transport (link) failed: the session is gone.

        No RESTART is requested — reconnection waits for the owner to
        observe the link recover.
        """
        was_established = self.fsm.is_established
        self.fsm.handle(FsmEvent.TCP_FAILED, now)
        self._hold_deadline = None
        self._next_keepalive = None
        if was_established:
            return [SessionAction(ActionKind.SESSION_DOWN, now)]
        return []

    def on_notification(
        self, now: float, msg: NotificationMessage
    ) -> List[SessionAction]:
        """Handle a received NOTIFICATION: the session is dead."""
        was_established = self.fsm.is_established
        self.fsm.handle(FsmEvent.NOTIFICATION_RECEIVED, now)
        self._hold_deadline = None
        self._next_keepalive = None
        actions: List[SessionAction] = []
        if was_established:
            actions.append(SessionAction(ActionKind.SESSION_DOWN, now))
        actions.append(SessionAction(ActionKind.RESTART, now))
        return actions

    # -- timer polling -----------------------------------------------------------

    def poll(self, now: float) -> List[SessionAction]:
        """Check timers; returns any due actions.

        - Hold timer expiry tears the session down (and asks for a
          restart — the re-peering that amplifies flap storms).
        - Keepalive timer emits the next keepalive.  The keepalive is
          *requested* here; if the owning router's CPU is saturated it
          may transmit late — which is precisely how storms ignite.
        """
        actions: List[SessionAction] = []
        if (
            self._hold_deadline is not None
            and now >= self._hold_deadline
            and self.fsm.state is not SessionState.IDLE
        ):
            was_established = self.fsm.is_established
            self.fsm.handle(FsmEvent.HOLD_TIMER_EXPIRED, now)
            self._hold_deadline = None
            self._next_keepalive = None
            actions.append(
                SessionAction(
                    ActionKind.SEND_NOTIFICATION,
                    now,
                    NotificationMessage(NotificationCode.HOLD_TIMER_EXPIRED),
                )
            )
            if was_established:
                actions.append(SessionAction(ActionKind.SESSION_DOWN, now))
            actions.append(SessionAction(ActionKind.RESTART, now))
            return actions
        if (
            self.fsm.is_established
            and self._next_keepalive is not None
            and now >= self._next_keepalive
        ):
            self._next_keepalive = now + self.keepalive_interval
            self.sent_keepalives += 1
            actions.append(
                SessionAction(ActionKind.SEND_KEEPALIVE, now, KeepAliveMessage())
            )
        return actions

    # -- introspection ---------------------------------------------------------

    @property
    def is_established(self) -> bool:
        return self.fsm.is_established

    @property
    def hold_deadline(self) -> Optional[float]:
        return self._hold_deadline

    @property
    def next_keepalive_due(self) -> Optional[float]:
        return self._next_keepalive

    def next_deadline(self) -> Optional[float]:
        """The soonest time :meth:`poll` could have something to do."""
        deadlines = [
            d
            for d in (self._hold_deadline, self._next_keepalive)
            if d is not None
        ]
        return min(deadlines) if deadlines else None
