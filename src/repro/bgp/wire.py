"""BGP-4 wire-format codec (RFC 4271 / RFC 1997 subset).

The Routing Arbiter's collectors logged raw BGP packets; the paper's
toolchain decoded them offline.  To exercise the same code path, our
collector can log updates in actual BGP wire format, and this module is
the codec: a faithful RFC 4271 encoding of the OPEN / UPDATE /
KEEPALIVE / NOTIFICATION messages used by the simulator, including the
classic two-byte-AS AS_PATH encoding and the RFC 1997 COMMUNITIES
attribute.

Only the features the reproduction exercises are implemented; anything
else (multiprotocol NLRI, 4-byte ASes, AS_SETs) raises
:class:`WireError` rather than silently decoding wrong.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from ..net.prefix import Prefix
from .attributes import AsPath, Origin, PathAttributes, interned
from .messages import (
    KeepAliveMessage,
    MessageType,
    NotificationCode,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)

__all__ = [
    "WireError",
    "encode_message",
    "decode_message",
    "encode_message_cached",
    "decode_message_cached",
    "HEADER_SIZE",
]


class WireError(ValueError):
    """Raised for malformed or unsupported wire data."""


HEADER_SIZE = 19
_MARKER = b"\xff" * 16
_MAX_MESSAGE = 4096

# Path attribute type codes.
_ATTR_ORIGIN = 1
_ATTR_AS_PATH = 2
_ATTR_NEXT_HOP = 3
_ATTR_MED = 4
_ATTR_LOCAL_PREF = 5
_ATTR_ATOMIC_AGGREGATE = 6
_ATTR_AGGREGATOR = 7
_ATTR_COMMUNITIES = 8

# Attribute flag bits.
_FLAG_OPTIONAL = 0x80
_FLAG_TRANSITIVE = 0x40
_FLAG_EXTENDED_LENGTH = 0x10

_AS_SEQUENCE = 2


# ---------------------------------------------------------------------------
# prefix (NLRI) encoding
# ---------------------------------------------------------------------------

def _encode_nlri(prefix: Prefix) -> bytes:
    """Encode one prefix as ``length, ceil(length/8) address bytes``."""
    nbytes = (prefix.length + 7) // 8
    addr = struct.pack(">I", prefix.network)[:nbytes]
    return bytes([prefix.length]) + addr


def _decode_nlri(data: bytes, offset: int) -> Tuple[Prefix, int]:
    """Decode one prefix at ``offset``; returns (prefix, next offset)."""
    if offset >= len(data):
        raise WireError("truncated NLRI")
    length = data[offset]
    if length > 32:
        raise WireError(f"NLRI length {length} > 32")
    nbytes = (length + 7) // 8
    end = offset + 1 + nbytes
    if end > len(data):
        raise WireError("truncated NLRI address bytes")
    addr_bytes = data[offset + 1:end] + b"\x00" * (4 - nbytes)
    network = struct.unpack(">I", addr_bytes)[0]
    mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
    if network & ~mask:
        raise WireError("NLRI host bits set")
    return Prefix(network, length), end


# ---------------------------------------------------------------------------
# path attribute encoding
# ---------------------------------------------------------------------------

def _encode_attribute(flags: int, type_code: int, value: bytes) -> bytes:
    if len(value) > 255:
        flags |= _FLAG_EXTENDED_LENGTH
        header = struct.pack(">BBH", flags, type_code, len(value))
    else:
        header = struct.pack(">BBB", flags, type_code, len(value))
    return header + value


def _encode_attributes(attrs: PathAttributes) -> bytes:
    chunks: List[bytes] = []
    chunks.append(
        _encode_attribute(
            _FLAG_TRANSITIVE, _ATTR_ORIGIN, bytes([int(attrs.origin)])
        )
    )
    path_value = b""
    if attrs.as_path:
        for asn in attrs.as_path:
            if asn >= 1 << 16:
                raise WireError("4-byte AS numbers not supported")
        path_value = (
            bytes([_AS_SEQUENCE, len(attrs.as_path)])
            + b"".join(struct.pack(">H", asn) for asn in attrs.as_path)
        )
    chunks.append(
        _encode_attribute(_FLAG_TRANSITIVE, _ATTR_AS_PATH, path_value)
    )
    chunks.append(
        _encode_attribute(
            _FLAG_TRANSITIVE, _ATTR_NEXT_HOP, struct.pack(">I", attrs.next_hop)
        )
    )
    if attrs.med is not None:
        chunks.append(
            _encode_attribute(
                _FLAG_OPTIONAL, _ATTR_MED, struct.pack(">I", attrs.med)
            )
        )
    if attrs.local_pref is not None:
        chunks.append(
            _encode_attribute(
                _FLAG_TRANSITIVE,
                _ATTR_LOCAL_PREF,
                struct.pack(">I", attrs.local_pref),
            )
        )
    if attrs.atomic_aggregate:
        chunks.append(
            _encode_attribute(_FLAG_TRANSITIVE, _ATTR_ATOMIC_AGGREGATE, b"")
        )
    if attrs.aggregator is not None:
        asn, router_id = attrs.aggregator
        chunks.append(
            _encode_attribute(
                _FLAG_OPTIONAL | _FLAG_TRANSITIVE,
                _ATTR_AGGREGATOR,
                struct.pack(">HI", asn, router_id),
            )
        )
    if attrs.communities:
        chunks.append(
            _encode_attribute(
                _FLAG_OPTIONAL | _FLAG_TRANSITIVE,
                _ATTR_COMMUNITIES,
                b"".join(
                    struct.pack(">I", c) for c in sorted(attrs.communities)
                ),
            )
        )
    return b"".join(chunks)


def _decode_attributes(data: bytes) -> PathAttributes:
    offset = 0
    origin = Origin.IGP
    as_path = AsPath()
    next_hop = 0
    med = None
    local_pref = None
    atomic = False
    aggregator = None
    communities: frozenset = frozenset()
    while offset < len(data):
        if offset + 2 > len(data):
            raise WireError("truncated attribute header")
        flags, type_code = data[offset], data[offset + 1]
        offset += 2
        if flags & _FLAG_EXTENDED_LENGTH:
            if offset + 2 > len(data):
                raise WireError("truncated extended length")
            (length,) = struct.unpack_from(">H", data, offset)
            offset += 2
        else:
            if offset + 1 > len(data):
                raise WireError("truncated attribute length")
            length = data[offset]
            offset += 1
        value = data[offset:offset + length]
        if len(value) != length:
            raise WireError("truncated attribute value")
        offset += length
        if type_code == _ATTR_ORIGIN:
            if length != 1 or value[0] > 2:
                raise WireError("bad ORIGIN")
            origin = Origin(value[0])
        elif type_code == _ATTR_AS_PATH:
            as_path = _decode_as_path(value)
        elif type_code == _ATTR_NEXT_HOP:
            if length != 4:
                raise WireError("bad NEXT_HOP length")
            (next_hop,) = struct.unpack(">I", value)
        elif type_code == _ATTR_MED:
            if length != 4:
                raise WireError("bad MED length")
            (med,) = struct.unpack(">I", value)
        elif type_code == _ATTR_LOCAL_PREF:
            if length != 4:
                raise WireError("bad LOCAL_PREF length")
            (local_pref,) = struct.unpack(">I", value)
        elif type_code == _ATTR_ATOMIC_AGGREGATE:
            if length:
                raise WireError("ATOMIC_AGGREGATE carries no data")
            atomic = True
        elif type_code == _ATTR_AGGREGATOR:
            if length != 6:
                raise WireError("bad AGGREGATOR length")
            aggregator = struct.unpack(">HI", value)
        elif type_code == _ATTR_COMMUNITIES:
            if length % 4:
                raise WireError("bad COMMUNITIES length")
            communities = frozenset(
                struct.unpack(">I", value[i:i + 4])[0]
                for i in range(0, length, 4)
            )
        else:
            raise WireError(f"unsupported attribute type {type_code}")
    return interned(
        PathAttributes(
            as_path=as_path,
            next_hop=next_hop,
            origin=origin,
            med=med,
            local_pref=local_pref,
            communities=communities,
            atomic_aggregate=atomic,
            aggregator=aggregator,
        )
    )


def _decode_as_path(value: bytes) -> AsPath:
    asns: List[int] = []
    offset = 0
    while offset < len(value):
        if offset + 2 > len(value):
            raise WireError("truncated AS_PATH segment header")
        seg_type, count = value[offset], value[offset + 1]
        offset += 2
        if seg_type != _AS_SEQUENCE:
            raise WireError(f"unsupported AS_PATH segment type {seg_type}")
        end = offset + 2 * count
        if end > len(value):
            raise WireError("truncated AS_PATH segment")
        asns.extend(
            struct.unpack(">H", value[i:i + 2])[0]
            for i in range(offset, end, 2)
        )
        offset = end
    return AsPath(asns)


# ---------------------------------------------------------------------------
# message bodies
# ---------------------------------------------------------------------------

def _encode_open(msg: OpenMessage) -> bytes:
    hold = int(round(msg.hold_time))
    if not 0 <= hold <= 0xFFFF:
        raise WireError(f"hold time {msg.hold_time} out of range")
    if not 0 < msg.asn < 1 << 16:
        raise WireError(f"AS number {msg.asn} out of range")
    return struct.pack(
        ">BHHIB", msg.version, msg.asn, hold, msg.bgp_identifier, 0
    )


def _decode_open(body: bytes) -> OpenMessage:
    if len(body) < 10:
        raise WireError("truncated OPEN")
    version, asn, hold, identifier, opt_len = struct.unpack_from(
        ">BHHIB", body
    )
    if version != 4:
        raise WireError(f"unsupported BGP version {version}")
    if len(body) != 10 + opt_len:
        raise WireError("OPEN optional parameter length mismatch")
    return OpenMessage(
        asn=asn,
        hold_time=float(hold),
        bgp_identifier=identifier,
        version=version,
    )


def _encode_update(msg: UpdateMessage) -> bytes:
    withdrawn = b"".join(_encode_nlri(p) for p in msg.withdrawn)
    if msg.announced:
        attrs = _encode_attributes(msg.attributes)
        nlri = b"".join(_encode_nlri(p) for p in msg.announced)
    else:
        attrs = b""
        nlri = b""
    return (
        struct.pack(">H", len(withdrawn))
        + withdrawn
        + struct.pack(">H", len(attrs))
        + attrs
        + nlri
    )


def _decode_update(body: bytes) -> UpdateMessage:
    if len(body) < 4:
        raise WireError("truncated UPDATE")
    (withdrawn_len,) = struct.unpack_from(">H", body, 0)
    offset = 2
    withdrawn_end = offset + withdrawn_len
    if withdrawn_end + 2 > len(body):
        raise WireError("UPDATE withdrawn length overruns message")
    withdrawn: List[Prefix] = []
    while offset < withdrawn_end:
        prefix, offset = _decode_nlri(body, offset)
        withdrawn.append(prefix)
    if offset != withdrawn_end:
        raise WireError("withdrawn routes length mismatch")
    (attrs_len,) = struct.unpack_from(">H", body, offset)
    offset += 2
    attrs_end = offset + attrs_len
    if attrs_end > len(body):
        raise WireError("UPDATE attribute length overruns message")
    attributes = (
        _decode_attributes(body[offset:attrs_end])
        if attrs_len
        else PathAttributes()
    )
    offset = attrs_end
    announced: List[Prefix] = []
    while offset < len(body):
        prefix, offset = _decode_nlri(body, offset)
        announced.append(prefix)
    return UpdateMessage(
        withdrawn=tuple(withdrawn),
        announced=tuple(announced),
        attributes=attributes,
    )


def _encode_notification(msg: NotificationMessage) -> bytes:
    return bytes([int(msg.code), msg.subcode]) + msg.data


def _decode_notification(body: bytes) -> NotificationMessage:
    if len(body) < 2:
        raise WireError("truncated NOTIFICATION")
    try:
        code = NotificationCode(body[0])
    except ValueError as exc:
        raise WireError(f"unknown notification code {body[0]}") from exc
    return NotificationMessage(code=code, subcode=body[1], data=bytes(body[2:]))


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------

def encode_message(message) -> bytes:
    """Encode any BGP message object to its RFC 4271 wire form."""
    if isinstance(message, OpenMessage):
        body = _encode_open(message)
    elif isinstance(message, UpdateMessage):
        body = _encode_update(message)
    elif isinstance(message, KeepAliveMessage):
        body = b""
    elif isinstance(message, NotificationMessage):
        body = _encode_notification(message)
    else:
        raise WireError(f"cannot encode {type(message).__name__}")
    total = HEADER_SIZE + len(body)
    if total > _MAX_MESSAGE:
        raise WireError(f"message size {total} exceeds {_MAX_MESSAGE}")
    header = _MARKER + struct.pack(">HB", total, int(message.type))
    return header + body


def decode_message(data: bytes):
    """Decode one wire message; returns ``(message, bytes_consumed)``.

    Raises :class:`WireError` on malformed input.  ``data`` may contain
    trailing bytes (the start of the next message on the stream).
    """
    if len(data) < HEADER_SIZE:
        raise WireError("truncated header")
    if data[:16] != _MARKER:
        raise WireError("bad marker")
    total, type_code = struct.unpack_from(">HB", data, 16)
    if total < HEADER_SIZE or total > _MAX_MESSAGE:
        raise WireError(f"bad message length {total}")
    if len(data) < total:
        raise WireError("truncated message body")
    body = data[HEADER_SIZE:total]
    if type_code == MessageType.OPEN:
        return _decode_open(body), total
    if type_code == MessageType.UPDATE:
        return _decode_update(body), total
    if type_code == MessageType.KEEPALIVE:
        if body:
            raise WireError("KEEPALIVE carries no body")
        return KeepAliveMessage(), total
    if type_code == MessageType.NOTIFICATION:
        return _decode_notification(body), total
    raise WireError(f"unknown message type {type_code}")


# ---------------------------------------------------------------------------
# memoized codec
# ---------------------------------------------------------------------------
#
# Table dumps and flap storms send the *same* UPDATE to many peers and
# re-send it every flap cycle; every message type is a frozen dataclass
# (hashable, immutable), so encode results can be memoized on the
# message and decode results on the exact wire bytes.  Sharing the
# decoded message object across deliveries is safe for the same reason
# interning PathAttributes is: consumers only ever read them.  Both
# caches are bounded and cleared wholesale at the limit so adversarial
# traffic (fuzzing) cannot grow them without bound.

_CODEC_CACHE_LIMIT = 4096

_encode_cache: dict = {}
_decode_cache: dict = {}


def encode_message_cached(message) -> bytes:
    """Memoizing :func:`encode_message` for repeated identical messages."""
    cached = _encode_cache.get(message)
    if cached is None:
        cached = encode_message(message)
        if len(_encode_cache) >= _CODEC_CACHE_LIMIT:
            _encode_cache.clear()
        _encode_cache[message] = cached
    return cached


def decode_message_cached(data: bytes):
    """Memoizing :func:`decode_message`; same ``(message, consumed)``
    contract, keyed on the exact wire bytes."""
    cached = _decode_cache.get(data)
    if cached is None:
        cached = decode_message(data)
        if len(_decode_cache) >= _CODEC_CACHE_LIMIT:
            _decode_cache.clear()
        _decode_cache[data] = cached
    return cached
