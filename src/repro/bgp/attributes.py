"""BGP path attributes.

The paper's classification taxonomy keys on the ``(Prefix, NextHop,
ASPATH)`` tuple: changes there are *forwarding* instability, while
changes confined to the remaining attributes (MED, LOCAL_PREF,
communities, ...) are *policy fluctuation*.  This module defines the
attribute model both the simulator's routers and the classifier share.

:class:`AsPath` is an immutable sequence of AS numbers with the loop
check BGP performs on every received update; :class:`PathAttributes`
bundles a route's full attribute set and exposes the paper's
``forwarding_key`` / full-tuple distinction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import IntEnum
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

__all__ = [
    "AsPath",
    "Origin",
    "PathAttributes",
    "WELL_KNOWN_COMMUNITIES",
    "interned",
]


class Origin(IntEnum):
    """BGP ORIGIN attribute codes (RFC 4271 §4.3)."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


class AsPath(tuple):
    """An immutable ASPATH: the sequence of ASes a route traversed.

    The leftmost element is the most recent AS (the neighbor that sent the
    route); the rightmost is the origin AS.  Only AS_SEQUENCE segments are
    modelled — AS_SET aggregation segments are beyond what the paper's
    analysis needs, and every simulated update carries a plain sequence.

    Examples
    --------
    >>> path = AsPath((701, 1239, 3561))
    >>> path.origin_as
    3561
    >>> path.prepend(174)
    AsPath(174 701 1239 3561)
    >>> path.contains_loop(1239)
    True
    """

    __slots__ = ()

    def __new__(cls, asns: Iterable[int] = ()) -> "AsPath":
        asns = tuple(asns)
        for asn in asns:
            if not isinstance(asn, int) or not 0 < asn < 65536:
                raise ValueError(f"invalid AS number {asn!r}")
        return tuple.__new__(cls, asns)

    @property
    def origin_as(self) -> Optional[int]:
        """The AS that originated the route (rightmost), or None if empty."""
        return self[-1] if self else None

    @property
    def neighbor_as(self) -> Optional[int]:
        """The AS the route was most recently received from (leftmost)."""
        return self[0] if self else None

    def prepend(self, asn: int, count: int = 1) -> "AsPath":
        """A new path with ``asn`` prepended ``count`` times.

        This is what a border router does before exporting a route to an
        external peer; ``count > 1`` models ASPATH-prepending traffic
        engineering.
        """
        if count < 1:
            raise ValueError("prepend count must be >= 1")
        return AsPath((asn,) * count + tuple(self))

    def contains_loop(self, asn: int) -> bool:
        """True if ``asn`` already appears — the BGP loop-detection test.

        Every BGP router applies this to incoming updates; the paper
        notes the check is defeated when ASPATH is lost across an
        IGP redistribution boundary (§4.2).
        """
        return asn in self

    @property
    def hop_count(self) -> int:
        """Path length counting repeated (prepended) ASes."""
        return len(self)

    @property
    def unique_ases(self) -> FrozenSet[int]:
        """The distinct ASes on the path."""
        return frozenset(self)

    def __repr__(self) -> str:
        return f"AsPath({' '.join(str(a) for a in self)})"

    def __str__(self) -> str:
        return " ".join(str(a) for a in self)

    @classmethod
    def parse(cls, text: str) -> "AsPath":
        """Parse a space-separated ASPATH string like ``"701 1239 3561"``."""
        text = text.strip()
        if not text:
            return cls()
        return cls(int(tok) for tok in text.split())


#: Well-known community values (RFC 1997).
WELL_KNOWN_COMMUNITIES = {
    "NO_EXPORT": 0xFFFFFF01,
    "NO_ADVERTISE": 0xFFFFFF02,
    "NO_EXPORT_SUBCONFED": 0xFFFFFF03,
}


@dataclass(frozen=True, slots=True)
class PathAttributes:
    """The attribute set accompanying one route announcement.

    ``next_hop`` is the 32-bit address of the border router to forward
    through.  ``med`` and ``local_pref`` are optional metrics;
    ``communities`` is a frozenset of 32-bit community values.

    The paper's key analytical move is splitting this bundle in two:

    - :attr:`forwarding_key` — ``(next_hop, as_path)``; together with the
      prefix this is the tuple whose change constitutes *forwarding
      instability*.
    - everything else — changes only here are *policy fluctuation*.
    """

    as_path: AsPath = field(default_factory=AsPath)
    next_hop: int = 0
    origin: Origin = Origin.IGP
    med: Optional[int] = None
    local_pref: Optional[int] = None
    communities: FrozenSet[int] = frozenset()
    atomic_aggregate: bool = False
    aggregator: Optional[Tuple[int, int]] = None  # (asn, router-id)

    def __post_init__(self) -> None:
        if not isinstance(self.as_path, AsPath):
            object.__setattr__(self, "as_path", AsPath(self.as_path))
        if not isinstance(self.communities, frozenset):
            object.__setattr__(
                self, "communities", frozenset(self.communities)
            )

    @property
    def forwarding_key(self) -> Tuple[int, AsPath]:
        """The (NextHop, ASPATH) part of the paper's forwarding tuple."""
        return (self.next_hop, self.as_path)

    def same_forwarding(self, other: "PathAttributes") -> bool:
        """True if ``other`` would forward traffic identically.

        This is the equality the classifier uses to tell AADup (identical
        forwarding tuple → pathological duplicate) from AADiff (changed
        tuple → forwarding instability).
        """
        return self.forwarding_key == other.forwarding_key

    def with_next_hop(self, next_hop: int) -> "PathAttributes":
        """Copy with a replaced NEXT_HOP (set at each eBGP export)."""
        return replace(self, next_hop=next_hop)

    def exported_by(self, asn: int, next_hop: int, prepend: int = 1) -> "PathAttributes":
        """The attributes a border router of ``asn`` sends an external peer.

        Prepends the local AS, rewrites NEXT_HOP, and strips the
        non-transitive LOCAL_PREF — the standard eBGP export transform.
        """
        return replace(
            self,
            as_path=self.as_path.prepend(asn, prepend),
            next_hop=next_hop,
            local_pref=None,
        )

    def with_communities(self, *communities: int) -> "PathAttributes":
        """Copy with additional community values attached."""
        return replace(
            self, communities=self.communities | frozenset(communities)
        )

    def describe(self) -> str:
        """One-line human-readable rendering (used by example scripts)."""
        parts = [f"aspath=[{self.as_path}]", f"nexthop={self.next_hop:#010x}"]
        if self.med is not None:
            parts.append(f"med={self.med}")
        if self.local_pref is not None:
            parts.append(f"localpref={self.local_pref}")
        if self.communities:
            parts.append(
                "communities={" + ",".join(
                    f"{c:#x}" for c in sorted(self.communities)
                ) + "}"
            )
        return " ".join(parts)


#: Cap on the interning pool; cleared wholesale when hit so pathological
#: attribute churn (fuzzing) cannot grow it without bound.
_INTERN_LIMIT = 65536

_intern_pool: Dict[PathAttributes, PathAttributes] = {}


def interned(attrs: PathAttributes) -> PathAttributes:
    """The canonical shared instance equal to ``attrs``.

    A table holds one :class:`PathAttributes` per *distinct* path; the
    RIBs and routers intern on ingest so AdjRibIn/LocRib/AdjRibOut
    entries for the same path share one object instead of one per
    (peer, prefix).  Safe because the class is frozen: interning changes
    identity only, never equality or ordering.
    """
    cached = _intern_pool.get(attrs)
    if cached is not None:
        return cached
    if len(_intern_pool) >= _INTERN_LIMIT:
        _intern_pool.clear()
    _intern_pool[attrs] = attrs
    return attrs
