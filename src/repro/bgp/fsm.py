"""The BGP session finite-state machine (RFC 4271 §8, simplified).

The flap-storm dynamics the paper describes are FSM dynamics: an
overloaded router's keepalives are delayed, its peers' hold timers
expire, sessions fall out of Established, routes are withdrawn, and the
subsequent re-establishment triggers full table dumps.  This module
models the state machine those transitions run through.

States: Idle → Connect → OpenSent → OpenConfirm → Established, with
any error collapsing back to Idle.  (Active is folded into Connect; the
TCP-level distinction between them does not affect any behaviour the
reproduction measures.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import List, Optional

__all__ = ["SessionState", "FsmEvent", "BgpStateMachine", "Transition"]


class SessionState(Enum):
    """BGP FSM states."""

    IDLE = auto()
    CONNECT = auto()
    OPEN_SENT = auto()
    OPEN_CONFIRM = auto()
    ESTABLISHED = auto()


class FsmEvent(Enum):
    """Inputs to the FSM (RFC 4271 event numbers noted where standard)."""

    MANUAL_START = auto()          # event 1
    MANUAL_STOP = auto()           # event 2
    TCP_ESTABLISHED = auto()       # event 16
    TCP_FAILED = auto()            # event 18
    OPEN_RECEIVED = auto()         # event 19
    KEEPALIVE_RECEIVED = auto()    # event 26
    UPDATE_RECEIVED = auto()       # event 27
    HOLD_TIMER_EXPIRED = auto()    # event 10
    NOTIFICATION_RECEIVED = auto()  # event 24/25


@dataclass(frozen=True)
class Transition:
    """A record of one state change (for tests and storm diagnostics)."""

    time: float
    event: FsmEvent
    before: SessionState
    after: SessionState


class FsmError(RuntimeError):
    """Raised when an event is illegal in the current state."""


class BgpStateMachine:
    """One side of a BGP peering session.

    The machine is deliberately pure: :meth:`handle` consumes an event
    and returns the new state, recording a :class:`Transition`.  All
    timer scheduling lives with the caller (the simulator's router),
    which feeds HOLD_TIMER_EXPIRED / TCP_* events in.
    """

    #: (state, event) -> next state.  Events not listed for a state are
    #: either ignored (returns current state) or fatal per _FATAL below.
    _TABLE = {
        (SessionState.IDLE, FsmEvent.MANUAL_START): SessionState.CONNECT,
        (SessionState.CONNECT, FsmEvent.TCP_ESTABLISHED): SessionState.OPEN_SENT,
        (SessionState.CONNECT, FsmEvent.TCP_FAILED): SessionState.IDLE,
        (SessionState.OPEN_SENT, FsmEvent.OPEN_RECEIVED): SessionState.OPEN_CONFIRM,
        (SessionState.OPEN_SENT, FsmEvent.TCP_FAILED): SessionState.IDLE,
        (SessionState.OPEN_CONFIRM, FsmEvent.KEEPALIVE_RECEIVED): SessionState.ESTABLISHED,
        (SessionState.OPEN_CONFIRM, FsmEvent.TCP_FAILED): SessionState.IDLE,
        (SessionState.ESTABLISHED, FsmEvent.KEEPALIVE_RECEIVED): SessionState.ESTABLISHED,
        (SessionState.ESTABLISHED, FsmEvent.UPDATE_RECEIVED): SessionState.ESTABLISHED,
        (SessionState.ESTABLISHED, FsmEvent.TCP_FAILED): SessionState.IDLE,
    }

    #: Events that drop any non-idle session back to IDLE.
    _FATAL = frozenset(
        {
            FsmEvent.MANUAL_STOP,
            FsmEvent.HOLD_TIMER_EXPIRED,
            FsmEvent.NOTIFICATION_RECEIVED,
        }
    )

    #: (state, event) pairs that are protocol violations.
    _ILLEGAL = frozenset(
        {
            (SessionState.IDLE, FsmEvent.UPDATE_RECEIVED),
            (SessionState.IDLE, FsmEvent.KEEPALIVE_RECEIVED),
            (SessionState.IDLE, FsmEvent.OPEN_RECEIVED),
            (SessionState.CONNECT, FsmEvent.UPDATE_RECEIVED),
            (SessionState.OPEN_SENT, FsmEvent.UPDATE_RECEIVED),
            (SessionState.OPEN_CONFIRM, FsmEvent.UPDATE_RECEIVED),
        }
    )

    def __init__(self) -> None:
        self.state = SessionState.IDLE
        self.history: List[Transition] = []
        self.established_count = 0
        self.drop_count = 0

    def handle(self, event: FsmEvent, now: float = 0.0) -> SessionState:
        """Apply ``event``; returns the (possibly unchanged) new state.

        Raises :class:`FsmError` for protocol violations (e.g. an UPDATE
        before the session is Established).
        """
        before = self.state
        if (before, event) in self._ILLEGAL:
            raise FsmError(f"{event.name} illegal in {before.name}")
        if event in self._FATAL:
            after = SessionState.IDLE
        else:
            after = self._TABLE.get((before, event), before)
        if after is not before:
            self.history.append(Transition(now, event, before, after))
            if after is SessionState.ESTABLISHED:
                self.established_count += 1
            if (
                before is SessionState.ESTABLISHED
                and after is not SessionState.ESTABLISHED
            ):
                self.drop_count += 1
        self.state = after
        return after

    @property
    def is_established(self) -> bool:
        return self.state is SessionState.ESTABLISHED

    def reset(self) -> None:
        """Return to IDLE without recording a transition (test helper)."""
        self.state = SessionState.IDLE
