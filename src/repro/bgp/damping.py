"""Route-flap damping (Villamizar/Chandra/Govindan draft → RFC 2439).

The paper discusses damping as the deployed countermeasure to
instability: routers "hold down, or refuse to believe, updates about
routes that exceed certain parameters of instability" — and warns that
damping "can introduce artificial connectivity problems, as legitimate
announcements about a new network may be delayed due to earlier
dampened instability."

This module implements the standard exponential-decay penalty model:

- each flap (withdrawal, or attribute change) adds a penalty;
- the penalty decays exponentially with a configured half-life;
- when the penalty crosses ``suppress_threshold`` the route is
  suppressed (updates for it are withheld);
- it is reused once the penalty decays below ``reuse_threshold``;
- the penalty is capped so a route cannot be suppressed for more than
  ``max_suppress_time``.

The damping ablation benchmark uses this to show the trade-off the
paper describes: update-volume reduction vs delayed legitimate
reachability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..net.prefix import Prefix

__all__ = ["DampingParameters", "DampingState", "RouteFlapDamper"]


@dataclass(frozen=True)
class DampingParameters:
    """The knobs of the RFC 2439 algorithm (defaults are the classic
    Cisco values: half-life 15 min, suppress at 2000, reuse at 750)."""

    withdrawal_penalty: float = 1000.0
    attribute_change_penalty: float = 500.0
    readvertisement_penalty: float = 0.0
    suppress_threshold: float = 2000.0
    reuse_threshold: float = 750.0
    half_life: float = 15 * 60.0
    max_suppress_time: float = 60 * 60.0

    def __post_init__(self) -> None:
        if self.reuse_threshold >= self.suppress_threshold:
            raise ValueError("reuse threshold must be below suppress threshold")
        if self.half_life <= 0:
            raise ValueError("half-life must be positive")

    @property
    def decay_rate(self) -> float:
        """The continuous decay constant λ with penalty ∝ exp(-λt)."""
        return math.log(2.0) / self.half_life

    @property
    def penalty_ceiling(self) -> float:
        """The maximum penalty: the value that takes exactly
        ``max_suppress_time`` to decay to the reuse threshold."""
        return self.reuse_threshold * math.exp(
            self.decay_rate * self.max_suppress_time
        )


@dataclass
class DampingState:
    """Per-(prefix, peer) damping bookkeeping."""

    penalty: float = 0.0
    last_update: float = 0.0
    suppressed: bool = False
    flap_count: int = 0

    def decayed_penalty(self, now: float, rate: float) -> float:
        """The penalty decayed from ``last_update`` to ``now``."""
        dt = max(0.0, now - self.last_update)
        return self.penalty * math.exp(-rate * dt)


class RouteFlapDamper:
    """Tracks per-route flap penalties and suppression decisions.

    Usage: on every received flap event call :meth:`on_withdrawal`,
    :meth:`on_attribute_change`, or :meth:`on_readvertisement` with the
    current time; each returns True when the route is (still)
    suppressed, i.e. the update should be withheld.  Call
    :meth:`reusable` periodically to learn which suppressed routes have
    decayed below the reuse threshold.
    """

    def __init__(self, params: Optional[DampingParameters] = None) -> None:
        self.params = params or DampingParameters()
        self._states: Dict[Tuple[Prefix, int], DampingState] = {}
        self.suppressed_updates = 0
        self.total_flaps = 0

    # -- internals ---------------------------------------------------------

    def _state(self, prefix: Prefix, peer: int) -> DampingState:
        return self._states.setdefault((prefix, peer), DampingState())

    def _apply_penalty(
        self, prefix: Prefix, peer: int, now: float, penalty: float
    ) -> bool:
        params = self.params
        state = self._state(prefix, peer)
        decayed = state.decayed_penalty(now, params.decay_rate)
        state.penalty = min(decayed + penalty, params.penalty_ceiling)
        state.last_update = now
        if penalty > 0:
            state.flap_count += 1
            self.total_flaps += 1
        if state.suppressed:
            if state.penalty < params.reuse_threshold:
                state.suppressed = False
        elif state.penalty >= params.suppress_threshold:
            state.suppressed = True
        if state.suppressed:
            self.suppressed_updates += 1
        return state.suppressed

    # -- event entry points ---------------------------------------------------

    def on_withdrawal(self, prefix: Prefix, peer: int, now: float) -> bool:
        """Record a withdrawal flap; True if the route is suppressed."""
        return self._apply_penalty(
            prefix, peer, now, self.params.withdrawal_penalty
        )

    def on_attribute_change(self, prefix: Prefix, peer: int, now: float) -> bool:
        """Record an attribute-change flap (implicit withdrawal)."""
        return self._apply_penalty(
            prefix, peer, now, self.params.attribute_change_penalty
        )

    def on_readvertisement(self, prefix: Prefix, peer: int, now: float) -> bool:
        """Record a re-announcement; True if still suppressed.

        This is the case the paper warns about: a legitimate
        re-announcement arriving while the penalty is above the reuse
        threshold stays invisible to the rest of the network.
        """
        return self._apply_penalty(
            prefix, peer, now, self.params.readvertisement_penalty
        )

    # -- queries ---------------------------------------------------------------

    def is_suppressed(self, prefix: Prefix, peer: int, now: float) -> bool:
        """Non-mutating check with decay applied."""
        state = self._states.get((prefix, peer))
        if state is None or not state.suppressed:
            return False
        return (
            state.decayed_penalty(now, self.params.decay_rate)
            >= self.params.reuse_threshold
        )

    def penalty(self, prefix: Prefix, peer: int, now: float) -> float:
        """The current (decayed) penalty for a route."""
        state = self._states.get((prefix, peer))
        if state is None:
            return 0.0
        return state.decayed_penalty(now, self.params.decay_rate)

    def reusable(self, now: float) -> List[Tuple[Prefix, int]]:
        """Suppressed routes whose penalty has decayed below reuse;
        marks them unsuppressed and returns them."""
        released: List[Tuple[Prefix, int]] = []
        rate = self.params.decay_rate
        for key, state in self._states.items():
            if state.suppressed and (
                state.decayed_penalty(now, rate) < self.params.reuse_threshold
            ):
                state.suppressed = False
                state.penalty = state.decayed_penalty(now, rate)
                state.last_update = now
                released.append(key)
        return released

    def time_until_reuse(self, prefix: Prefix, peer: int, now: float) -> float:
        """Seconds until a suppressed route decays to the reuse
        threshold (0.0 if not suppressed) — the 'artificial
        connectivity delay' metric of the damping ablation."""
        state = self._states.get((prefix, peer))
        if state is None or not state.suppressed:
            return 0.0
        current = state.decayed_penalty(now, self.params.decay_rate)
        if current < self.params.reuse_threshold:
            return 0.0
        return (
            math.log(current / self.params.reuse_threshold)
            / self.params.decay_rate
        )

    def suppressed_count(self, now: float) -> int:
        """How many routes are currently suppressed."""
        return sum(
            1
            for (prefix, peer) in self._states
            if self.is_suppressed(prefix, peer, now)
        )
