"""BGP protocol substrate: attributes, messages, wire codec, FSM, RIBs,
policy, and route-flap damping."""

from .attributes import AsPath, Origin, PathAttributes, WELL_KNOWN_COMMUNITIES
from .messages import (
    DEFAULT_HOLD_TIME,
    KeepAliveMessage,
    MessageType,
    NotificationCode,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)
from .wire import WireError, decode_message, encode_message
from .fsm import BgpStateMachine, FsmEvent, SessionState
from .session import ActionKind, PeeringSession, SessionAction
from .rib import (
    AdjRibIn,
    AdjRibOut,
    ChangeKind,
    DEFAULT_LOCAL_PREF,
    LocRib,
    RibChange,
    Route,
    best_route,
)
from .policy import (
    Action,
    DENY_ALL,
    MatchCondition,
    PERMIT_ALL,
    PolicyTerm,
    PrefixLengthFilter,
    RouteMap,
)
from .damping import DampingParameters, DampingState, RouteFlapDamper
from .aspath_regex import AsPathRegex, AsPathRegexError, compile_regex

__all__ = [
    "AsPath",
    "Origin",
    "PathAttributes",
    "WELL_KNOWN_COMMUNITIES",
    "DEFAULT_HOLD_TIME",
    "KeepAliveMessage",
    "MessageType",
    "NotificationCode",
    "NotificationMessage",
    "OpenMessage",
    "UpdateMessage",
    "WireError",
    "decode_message",
    "encode_message",
    "BgpStateMachine",
    "FsmEvent",
    "SessionState",
    "ActionKind",
    "PeeringSession",
    "SessionAction",
    "AdjRibIn",
    "AdjRibOut",
    "ChangeKind",
    "DEFAULT_LOCAL_PREF",
    "LocRib",
    "RibChange",
    "Route",
    "best_route",
    "Action",
    "DENY_ALL",
    "MatchCondition",
    "PERMIT_ALL",
    "PolicyTerm",
    "PrefixLengthFilter",
    "RouteMap",
    "DampingParameters",
    "DampingState",
    "RouteFlapDamper",
    "AsPathRegex",
    "AsPathRegexError",
    "compile_regex",
]
