"""Routing policy: filters and attribute manipulation.

The paper defines *policy fluctuation* as updates that change only
non-forwarding attributes, and notes that "routing policies on an
autonomous system's border routers may result in different update
information being transmitted to each external peer."  This module
models the policy machinery that produces those differences: ordered
route-maps of match/action terms applied at import or export time.

A :class:`RouteMap` is an ordered list of :class:`PolicyTerm`; the first
matching term decides.  Terms match on prefix lists (with optional
length ranges), ASPATH membership, origin AS, and communities, and
either deny the route or permit it with attribute rewrites (the classic
set local-pref / set MED / add community / prepend actions).

Also here: :class:`PrefixLengthFilter`, the "draconian" stability
enforcement the paper mentions — ISPs dropping all announcements longer
than a cutoff prefix length.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Sequence, Tuple

from ..net.prefix import Prefix
from .attributes import PathAttributes

__all__ = [
    "MatchCondition",
    "Action",
    "PolicyTerm",
    "RouteMap",
    "PrefixLengthFilter",
    "PERMIT_ALL",
    "DENY_ALL",
]


@dataclass(frozen=True)
class MatchCondition:
    """The match half of a policy term.  Empty fields match anything.

    ``prefixes`` matches when the candidate prefix is covered by any
    listed prefix and its length lies in ``ge``..``le`` (router-style
    ``ge``/``le`` prefix-list semantics).  ``as_path_regex`` is a
    router-style as-path access-list pattern (see
    :mod:`repro.bgp.aspath_regex`), compiled lazily and cached.
    """

    prefixes: Tuple[Prefix, ...] = ()
    ge: int = 0
    le: int = 32
    as_on_path: Optional[int] = None
    origin_as: Optional[int] = None
    community: Optional[int] = None
    as_path_regex: Optional[str] = None

    def _compiled_regex(self):
        cached = _REGEX_CACHE.get(self.as_path_regex)
        if cached is None:
            from .aspath_regex import compile_regex

            cached = compile_regex(self.as_path_regex)
            _REGEX_CACHE[self.as_path_regex] = cached
        return cached

    def matches(self, prefix: Prefix, attrs: PathAttributes) -> bool:
        """True if this condition matches the candidate route."""
        if self.prefixes:
            if not any(listed.covers(prefix) for listed in self.prefixes):
                return False
            if not (self.ge <= prefix.length <= self.le):
                return False
        if self.as_on_path is not None:
            if not attrs.as_path.contains_loop(self.as_on_path):
                return False
        if self.origin_as is not None:
            if attrs.as_path.origin_as != self.origin_as:
                return False
        if self.community is not None:
            if self.community not in attrs.communities:
                return False
        if self.as_path_regex is not None:
            if not self._compiled_regex().search(attrs.as_path):
                return False
        return True


#: Compiled-pattern cache shared by all conditions (patterns are few
#: and immutable; MatchCondition itself stays a frozen dataclass).
_REGEX_CACHE: dict = {}


@dataclass(frozen=True)
class Action:
    """The action half of a permit term: attribute rewrites."""

    set_local_pref: Optional[int] = None
    set_med: Optional[int] = None
    add_communities: Tuple[int, ...] = ()
    strip_communities: bool = False
    prepend: int = 0          #: extra copies of ``prepend_asn`` to add
    prepend_asn: Optional[int] = None

    def apply(self, attrs: PathAttributes) -> PathAttributes:
        """Rewrite ``attrs`` per this action."""
        result = attrs
        if self.set_local_pref is not None:
            result = replace(result, local_pref=self.set_local_pref)
        if self.set_med is not None:
            result = replace(result, med=self.set_med)
        if self.strip_communities:
            result = replace(result, communities=frozenset())
        if self.add_communities:
            result = result.with_communities(*self.add_communities)
        if self.prepend and self.prepend_asn is not None:
            result = replace(
                result,
                as_path=result.as_path.prepend(self.prepend_asn, self.prepend),
            )
        return result


@dataclass(frozen=True)
class PolicyTerm:
    """One route-map entry: a match, a permit/deny verdict, an action."""

    match: MatchCondition = field(default_factory=MatchCondition)
    permit: bool = True
    action: Action = field(default_factory=Action)
    name: str = ""


class RouteMap:
    """An ordered route-map; the first matching term wins.

    A route matching no term is denied (router default).  The
    evaluation cost — every route tested against a potentially long
    term list — is exactly the per-update policy cost the paper calls
    out as a router CPU burden; :attr:`evaluations` counts terms tested
    so the router CPU model can charge for it.
    """

    def __init__(self, terms: Iterable[PolicyTerm] = (), name: str = "") -> None:
        self.terms: List[PolicyTerm] = list(terms)
        self.name = name
        self.evaluations = 0

    def evaluate(
        self, prefix: Prefix, attrs: PathAttributes
    ) -> Optional[PathAttributes]:
        """Apply the map: the rewritten attributes, or None if denied."""
        for term in self.terms:
            self.evaluations += 1
            if term.match.matches(prefix, attrs):
                if not term.permit:
                    return None
                return term.action.apply(attrs)
        return None

    def append(self, term: PolicyTerm) -> "RouteMap":
        self.terms.append(term)
        return self

    def __len__(self) -> int:
        return len(self.terms)


#: A map that permits everything unchanged.
PERMIT_ALL = RouteMap([PolicyTerm()], name="permit-all")

#: A map that denies everything.
DENY_ALL = RouteMap([], name="deny-all")


class PrefixLengthFilter:
    """Drop announcements longer than ``max_length``.

    The paper (§3): "A number of ISPs have implemented a more draconian
    version of enforcing stability by filtering all route announcements
    longer than a given prefix length."
    """

    def __init__(self, max_length: int = 24) -> None:
        if not 0 <= max_length <= 32:
            raise ValueError(f"bad max_length {max_length}")
        self.max_length = max_length
        self.dropped = 0
        self.passed = 0

    def allows(self, prefix: Prefix) -> bool:
        """True if the prefix passes; updates drop/pass counters."""
        if prefix.length > self.max_length:
            self.dropped += 1
            return False
        self.passed += 1
        return True

    def filter(self, prefixes: Sequence[Prefix]) -> List[Prefix]:
        """The subset of ``prefixes`` that pass."""
        return [p for p in prefixes if self.allows(p)]
