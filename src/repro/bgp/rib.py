"""Routing Information Bases and the BGP decision process.

A BGP speaker keeps, per RFC 4271 §3.2:

- **Adj-RIB-In** — the routes each peer advertised, post input policy;
- **Loc-RIB** — the single best route per prefix after the decision
  process;
- **Adj-RIB-Out** — what was advertised to each peer (a *stateful*
  implementation keeps this; the paper's problem vendor did not — see
  :class:`repro.sim.router.Router`).

The decision process implemented in :func:`best_route` is the standard
rank: highest LOCAL_PREF, then shortest ASPATH, then lowest ORIGIN, then
lowest MED among routes from the same neighbor AS, then lowest peer
address as the deterministic tiebreak.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Dict, Iterable, List, Optional, Tuple

from ..net.prefix import Prefix
from .attributes import PathAttributes, interned

__all__ = [
    "Route",
    "RibChange",
    "ChangeKind",
    "AdjRibIn",
    "AdjRibOut",
    "LocRib",
    "DEFAULT_LOCAL_PREF",
    "best_route",
]

#: LOCAL_PREF assumed when a route carries none (Cisco/IOS convention).
DEFAULT_LOCAL_PREF = 100


@dataclass(frozen=True, slots=True)
class Route:
    """One candidate path: a prefix, its attributes, and the peer it
    came from (``peer`` is the peer's 32-bit address / identifier)."""

    prefix: Prefix
    attributes: PathAttributes
    peer: int

    @property
    def forwarding_tuple(self) -> Tuple[Prefix, int, tuple]:
        """The paper's (Prefix, NextHop, ASPATH) identity tuple."""
        return (
            self.prefix,
            self.attributes.next_hop,
            tuple(self.attributes.as_path),
        )


class ChangeKind(Enum):
    """What a RIB update did to the best route for a prefix."""

    NONE = auto()          #: best route unchanged
    ANNOUNCE = auto()      #: new or changed best route
    WITHDRAW = auto()      #: prefix no longer reachable


@dataclass(frozen=True, slots=True)
class RibChange:
    """The outcome of applying one announcement/withdrawal to the RIB."""

    kind: ChangeKind
    prefix: Prefix
    best: Optional[Route] = None       #: new best (for ANNOUNCE)
    previous: Optional[Route] = None   #: previous best, if any


def _rank(route: Route) -> Tuple:
    """Sort key: *lower* is better (so ``min`` picks the winner).

    The tail terms after the peer address make the key a *total*
    order over distinct routes, so selection can never depend on
    announcement order (a peer cannot hold two routes for one prefix
    in a RIB, but :func:`best_route` is a public function and must be
    deterministic for arbitrary inputs).
    """
    attrs = route.attributes
    local_pref = (
        attrs.local_pref if attrs.local_pref is not None else DEFAULT_LOCAL_PREF
    )
    return (
        -local_pref,
        attrs.as_path.hop_count,
        int(attrs.origin),
        route.peer,
        attrs.next_hop,
        tuple(attrs.as_path),
        -1 if attrs.med is None else attrs.med,
        # Raw optional/policy attributes: routes that tie on every
        # criterion above can still be distinct objects (local_pref
        # None vs. the explicit default, differing communities), and
        # a stable sort would then hand the win to whichever arrived
        # first — announcement-order dependence.
        -1 if attrs.local_pref is None else attrs.local_pref,
        tuple(sorted(attrs.communities)),
        attrs.atomic_aggregate,
        (-1, -1) if attrs.aggregator is None else attrs.aggregator,
    )


def best_route(candidates: Iterable[Route]) -> Optional[Route]:
    """Run the decision process over ``candidates``; None if empty.

    MED comparison applies only between routes whose ASPATHs start at
    the same neighbor AS, per the RFC; it is applied as a refinement
    after the primary ranking.
    """
    routes = list(candidates)
    if not routes:
        return None
    routes.sort(key=_rank)
    top = routes[0]
    # MED refinement: among routes tied with ``top`` on the primary
    # criteria (local-pref/path-length/origin) AND sharing the neighbor
    # AS, prefer the lowest MED.
    primary = _rank(top)[:3]
    contenders = [
        r
        for r in routes
        if _rank(r)[:3] == primary
        and r.attributes.as_path.neighbor_as == top.attributes.as_path.neighbor_as
    ]
    if len(contenders) > 1:
        def med_key(route: Route) -> Tuple:
            med = route.attributes.med
            return (med if med is not None else 0, _rank(route))

        return min(contenders, key=med_key)
    return top


class AdjRibIn:
    """Routes received from peers, keyed by (peer, prefix).

    Attributes are interned on ingest (:func:`interned`): many peers
    announcing the same path share one :class:`PathAttributes` object
    instead of one per (peer, prefix) entry.
    """

    __slots__ = ("_by_peer",)

    def __init__(self) -> None:
        self._by_peer: Dict[int, Dict[Prefix, PathAttributes]] = {}

    def update(self, peer: int, prefix: Prefix, attrs: PathAttributes) -> None:
        """Record an announcement from ``peer``."""
        self._by_peer.setdefault(peer, {})[prefix] = interned(attrs)

    def withdraw(self, peer: int, prefix: Prefix) -> bool:
        """Remove ``peer``'s route for ``prefix``; True if one existed."""
        table = self._by_peer.get(peer)
        if table is None:
            return False
        return table.pop(prefix, None) is not None

    def drop_peer(self, peer: int) -> List[Prefix]:
        """Remove everything learned from ``peer`` (session loss);
        returns the affected prefixes."""
        table = self._by_peer.pop(peer, None)
        return list(table) if table else []

    def candidates(self, prefix: Prefix) -> List[Route]:
        """All candidate routes for ``prefix`` across peers."""
        return [
            Route(prefix, attrs, peer)
            for peer, table in self._by_peer.items()
            if (attrs := table.get(prefix)) is not None
        ]

    def routes_from(self, peer: int) -> Dict[Prefix, PathAttributes]:
        """The full Adj-RIB-In for one peer (a copy)."""
        return dict(self._by_peer.get(peer, {}))

    def peers(self) -> List[int]:
        return list(self._by_peer)

    def __len__(self) -> int:
        return sum(len(t) for t in self._by_peer.values())


class AdjRibOut:
    """What was advertised to each peer.

    This is the state the paper's "stateless BGP" vendor chose not to
    keep; with it, a router can suppress withdrawals for prefixes it
    never advertised to a given peer (avoiding WWDups) and duplicate
    re-announcements (avoiding some AADups).
    """

    __slots__ = ("_by_peer",)

    def __init__(self) -> None:
        self._by_peer: Dict[int, Dict[Prefix, PathAttributes]] = {}

    def advertised(self, peer: int, prefix: Prefix) -> Optional[PathAttributes]:
        """What we last sent ``peer`` for ``prefix``, if anything."""
        return self._by_peer.get(peer, {}).get(prefix)

    def record_announce(
        self, peer: int, prefix: Prefix, attrs: PathAttributes
    ) -> None:
        self._by_peer.setdefault(peer, {})[prefix] = interned(attrs)

    def record_withdraw(self, peer: int, prefix: Prefix) -> bool:
        """Forget the advertisement to ``peer``; True if one existed."""
        table = self._by_peer.get(peer)
        if table is None:
            return False
        return table.pop(prefix, None) is not None

    def drop_peer(self, peer: int) -> None:
        self._by_peer.pop(peer, None)

    def prefixes_to(self, peer: int) -> List[Prefix]:
        return list(self._by_peer.get(peer, {}))

    def __len__(self) -> int:
        return sum(len(t) for t in self._by_peer.values())


class LocRib:
    """The local best-route table, maintained incrementally.

    :meth:`apply_announce` / :meth:`apply_withdraw` mutate the Adj-RIB-In
    and return a :class:`RibChange` describing what happened to the best
    route — the signal a border router turns into outbound updates.
    """

    __slots__ = ("adj_in", "_best")

    def __init__(self) -> None:
        self.adj_in = AdjRibIn()
        self._best: Dict[Prefix, Route] = {}

    # -- queries -------------------------------------------------------------

    def best(self, prefix: Prefix) -> Optional[Route]:
        return self._best.get(prefix)

    def prefixes(self) -> List[Prefix]:
        return list(self._best)

    def routes(self) -> List[Route]:
        return list(self._best.values())

    def __len__(self) -> int:
        return len(self._best)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._best

    # -- mutations ------------------------------------------------------------

    def apply_announce(
        self, peer: int, prefix: Prefix, attrs: PathAttributes
    ) -> RibChange:
        """Apply an announcement from ``peer`` and recompute the best."""
        self.adj_in.update(peer, prefix, attrs)
        return self._reselect(prefix)

    def apply_withdraw(self, peer: int, prefix: Prefix) -> RibChange:
        """Apply a withdrawal from ``peer`` and recompute the best."""
        had_route = self.adj_in.withdraw(peer, prefix)
        if not had_route:
            # The peer withdrew something it never announced — exactly the
            # pathological WWDup precondition the paper observed.  The RIB
            # is untouched.
            return RibChange(ChangeKind.NONE, prefix, self._best.get(prefix))
        return self._reselect(prefix)

    def drop_peer(self, peer: int) -> List[RibChange]:
        """Remove a peer entirely (session loss); returns the changes."""
        affected = self.adj_in.drop_peer(peer)
        return [self._reselect(prefix) for prefix in affected]

    def _reselect(self, prefix: Prefix) -> RibChange:
        previous = self._best.get(prefix)
        new_best = best_route(self.adj_in.candidates(prefix))
        if new_best is None:
            if previous is None:
                return RibChange(ChangeKind.NONE, prefix)
            del self._best[prefix]
            return RibChange(ChangeKind.WITHDRAW, prefix, previous=previous)
        if previous is not None and previous == new_best:
            return RibChange(ChangeKind.NONE, prefix, new_best, previous)
        self._best[prefix] = new_best
        return RibChange(
            ChangeKind.ANNOUNCE, prefix, new_best, previous
        )
