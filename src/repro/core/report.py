"""Rendering experiment results as the paper's rows and series.

The benchmark harness must "print the same rows/series the paper
reports".  This module holds the small formatting toolkit the
experiment runners share: fixed-width tables, labelled series, and a
standard experiment-result container that EXPERIMENTS.md entries are
generated from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

__all__ = ["Table", "Series", "ExperimentResult", "format_number"]

Number = Union[int, float]


def format_number(value: Number) -> str:
    """Human-friendly numeric formatting for table cells."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if value != value:  # NaN
        return "nan"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:.2f}"
    return f"{value:.4f}"


@dataclass(slots=True)
class Table:
    """A fixed-width text table with a title (one paper table/figure)."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Union[str, Number]]] = field(default_factory=list)

    def add_row(self, *cells: Union[str, Number]) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append(cells)

    def render(self) -> str:
        rendered_rows = [
            [
                cell if isinstance(cell, str) else format_number(cell)
                for cell in row
            ]
            for row in self.rows
        ]
        widths = [
            max(
                len(str(self.columns[i])),
                *(len(row[i]) for row in rendered_rows),
            )
            if rendered_rows
            else len(str(self.columns[i]))
            for i in range(len(self.columns))
        ]
        lines = [self.title]
        header = "  ".join(
            str(col).ljust(widths[i]) for i, col in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in rendered_rows:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)


@dataclass(slots=True)
class Series:
    """A labelled numeric series (one curve of a paper figure)."""

    label: str
    x: List[Number] = field(default_factory=list)
    y: List[Number] = field(default_factory=list)

    def add(self, x: Number, y: Number) -> None:
        self.x.append(x)
        self.y.append(y)

    def render(self, max_points: int = 12) -> str:
        """Compact textual rendering: label plus sampled points."""
        n = len(self.x)
        if n == 0:
            return f"{self.label}: (empty)"
        step = max(1, n // max_points)
        points = ", ".join(
            f"({format_number(self.x[i])}, {format_number(self.y[i])})"
            for i in range(0, n, step)
        )
        return f"{self.label} [{n} points]: {points}"


@dataclass(slots=True)
class ExperimentResult:
    """The standardized output of one experiment runner.

    ``measurements`` maps named quantities to values; ``expectations``
    maps the same names to the paper's reported value or range
    ``(low, high)``.  :meth:`check` verifies shape agreement and is what
    the benchmark assertions call.
    """

    experiment_id: str
    description: str
    tables: List[Table] = field(default_factory=list)
    series: List[Series] = field(default_factory=list)
    measurements: Dict[str, Number] = field(default_factory=dict)
    expectations: Dict[str, Union[Number, tuple]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def record(
        self,
        name: str,
        value: Number,
        expect: Optional[Union[Number, tuple]] = None,
    ) -> None:
        self.measurements[name] = value
        if expect is not None:
            self.expectations[name] = expect

    def check(self, name: str) -> bool:
        """True if measurement ``name`` falls within its expectation.

        A tuple expectation is an inclusive range; a scalar expectation
        demands agreement within 25% (shape, not absolute, fidelity).
        """
        value = self.measurements[name]
        expected = self.expectations[name]
        if isinstance(expected, tuple):
            low, high = expected
            return low <= value <= high
        if expected == 0:
            return value == 0
        return abs(value - expected) / abs(expected) <= 0.25

    def all_checks(self) -> Dict[str, bool]:
        return {name: self.check(name) for name in self.expectations}

    def render(self) -> str:
        """Full textual report (what the bench harness prints)."""
        lines = [f"=== {self.experiment_id}: {self.description} ==="]
        for table in self.tables:
            lines.append("")
            lines.append(table.render())
        for series in self.series:
            lines.append("")
            lines.append(series.render())
        if self.measurements:
            lines.append("")
            lines.append("Measurements (measured vs paper):")
            for name, value in self.measurements.items():
                expected = self.expectations.get(name)
                if expected is None:
                    lines.append(f"  {name}: {format_number(value)}")
                else:
                    status = "OK" if self.check(name) else "MISMATCH"
                    if isinstance(expected, tuple):
                        expect_text = (
                            f"[{format_number(expected[0])}"
                            f"..{format_number(expected[1])}]"
                        )
                    else:
                        expect_text = format_number(expected)
                    lines.append(
                        f"  {name}: {format_number(value)}"
                        f"  (paper: {expect_text})  {status}"
                    )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)
