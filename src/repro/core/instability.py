"""Instability metrics over classified update streams.

Aggregations the paper's analyses and the benchmark harness share:

- :class:`CategoryCounts` — per-category tallies with the paper's
  instability / pathological / uncategorized roll-ups;
- :func:`counts_by_peer`, :func:`counts_by_prefix_as` — the groupings
  behind Figures 6 and 7;
- :func:`detect_incidents` — the paper's "pathological routing
  incident": a period where aggregate instability exceeds the normal
  level by an order of magnitude or more;
- :func:`persistence` — how long a route's information keeps
  fluctuating before stabilizing (the paper: "the persistence of most
  pathological BGP behaviors is under five minutes").
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..collector.record import PrefixAs
from .classifier import ClassifiedUpdate
from .taxonomy import (
    INSTABILITY_CATEGORIES,
    PATHOLOGICAL_CATEGORIES,
    UpdateCategory,
)

__all__ = [
    "CategoryCounts",
    "counts_by_peer",
    "counts_by_prefix_as",
    "detect_incidents",
    "persistence",
    "Incident",
]


@dataclass
class CategoryCounts:
    """Tallies of classified updates, per category."""

    counts: Counter = field(default_factory=Counter)
    policy_changes: int = 0

    def add(self, update: ClassifiedUpdate) -> None:
        self.counts[update.category] += 1
        if update.policy_change:
            self.policy_changes += 1

    def extend(self, updates: Iterable[ClassifiedUpdate]) -> None:
        for update in updates:
            self.add(update)

    def __getitem__(self, category: UpdateCategory) -> int:
        return self.counts.get(category, 0)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def instability(self) -> int:
        """AADiff + WADiff + WADup (the paper's instability measure)."""
        return sum(
            self.counts.get(c, 0) for c in INSTABILITY_CATEGORIES
        )

    @property
    def pathological(self) -> int:
        """AADup + WWDup."""
        return sum(
            self.counts.get(c, 0) for c in PATHOLOGICAL_CATEGORIES
        )

    @property
    def uncategorized(self) -> int:
        return (
            self.counts.get(UpdateCategory.NEW_ANNOUNCE, 0)
            + self.counts.get(UpdateCategory.PLAIN_WITHDRAW, 0)
        )

    @property
    def pathological_fraction(self) -> float:
        """Share of all updates that are pathological (paper: ~99% once
        WWDup storms are included)."""
        return self.pathological / self.total if self.total else 0.0

    def merged(self, other: "CategoryCounts") -> "CategoryCounts":
        result = CategoryCounts()
        result.counts = self.counts + other.counts
        result.policy_changes = self.policy_changes + other.policy_changes
        return result

    def as_dict(self) -> Dict[str, int]:
        """Plain dict keyed by category name (for reports/JSON)."""
        return {cat.name: self.counts.get(cat, 0) for cat in UpdateCategory}


def counts_by_peer(
    updates: Iterable[ClassifiedUpdate],
) -> Dict[int, CategoryCounts]:
    """Per-peer-AS category counts (Figure 6's per-peer points)."""
    result: Dict[int, CategoryCounts] = defaultdict(CategoryCounts)
    for update in updates:
        result[update.peer_asn].add(update)
    return dict(result)


def counts_by_prefix_as(
    updates: Iterable[ClassifiedUpdate],
    category: Optional[UpdateCategory] = None,
) -> Dict[PrefixAs, int]:
    """Events per Prefix+AS pair, optionally restricted to one category
    (Figure 7's histogram input)."""
    result: Counter = Counter()
    for update in updates:
        if category is None or update.category is category:
            result[update.prefix_as] += 1
    return dict(result)


def counts_by_prefix(
    updates: Iterable[ClassifiedUpdate],
    category: Optional[UpdateCategory] = None,
) -> Dict:
    """Events per bare prefix (AS dimension collapsed).

    The paper: "An investigation of instability aggregated on prefix
    alone generated results similar to those shown in this section and
    have been omitted" — this is that aggregation, so the claim can be
    verified rather than taken on faith.
    """
    result: Counter = Counter()
    for update in updates:
        if category is None or update.category is category:
            result[update.prefix] += 1
    return dict(result)


@dataclass(frozen=True)
class Incident:
    """A pathological routing incident: a bin whose update level
    exceeds the baseline by ``magnitude`` orders of magnitude."""

    start: float
    end: float
    updates: int
    baseline: float
    magnitude: float


def detect_incidents(
    bin_counts: Sequence[int],
    bin_width: float,
    threshold_orders: float = 1.0,
) -> List[Incident]:
    """Find pathological routing incidents in binned update counts.

    The paper defines an incident as "a time when the aggregate level
    of routing instability seen at an exchange point exceeds the normal
    level of instability by one or more orders of magnitude."  The
    *normal level* here is the median of the non-zero bins; a bin
    qualifies when ``count >= baseline * 10**threshold_orders``.
    Adjacent qualifying bins merge into one incident.
    """
    import math

    nonzero = sorted(c for c in bin_counts if c > 0)
    if not nonzero:
        return []
    baseline = float(nonzero[len(nonzero) // 2])
    cutoff = baseline * (10.0 ** threshold_orders)
    incidents: List[Incident] = []
    run_start: Optional[int] = None
    run_total = 0
    for index, count in enumerate(bin_counts):
        if count >= cutoff:
            if run_start is None:
                run_start = index
                run_total = 0
            run_total += count
        elif run_start is not None:
            incidents.append(
                _make_incident(run_start, index, run_total, baseline, bin_width)
            )
            run_start = None
    if run_start is not None:
        incidents.append(
            _make_incident(
                run_start, len(bin_counts), run_total, baseline, bin_width
            )
        )
    return incidents


def _make_incident(
    start_bin: int, end_bin: int, total: int, baseline: float, width: float
) -> Incident:
    import math

    peak_ratio = total / max(baseline * (end_bin - start_bin), 1e-12)
    return Incident(
        start=start_bin * width,
        end=end_bin * width,
        updates=total,
        baseline=baseline,
        magnitude=math.log10(max(peak_ratio, 1e-12)),
    )


def persistence(
    updates: Iterable[ClassifiedUpdate],
    quiet_gap: float = 300.0,
) -> Dict[PrefixAs, List[float]]:
    """Fluctuation-episode durations per Prefix+AS pair.

    Consecutive events for a pair belong to one episode while their
    spacing stays under ``quiet_gap`` (default five minutes — the
    paper's observed upper bound on pathological persistence); the
    episode's persistence is last-event time minus first-event time.
    Single-event episodes have persistence 0.
    """
    by_pair: Dict[PrefixAs, List[float]] = defaultdict(list)
    for update in updates:
        by_pair[update.prefix_as].append(update.time)
    episodes: Dict[PrefixAs, List[float]] = {}
    for pair, times in by_pair.items():
        times.sort()
        durations: List[float] = []
        episode_start = times[0]
        last = times[0]
        for time in times[1:]:
            if time - last > quiet_gap:
                durations.append(last - episode_start)
                episode_start = time
            last = time
        durations.append(last - episode_start)
        episodes[pair] = durations
    return episodes
