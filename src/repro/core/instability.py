"""Instability metrics over classified update streams.

Aggregations the paper's analyses and the benchmark harness share:

- :class:`CategoryCounts` — per-category tallies with the paper's
  instability / pathological / uncategorized roll-ups;
- :func:`counts_by_peer`, :func:`counts_by_prefix_as` — the groupings
  behind Figures 6 and 7;
- :func:`detect_incidents` — the paper's "pathological routing
  incident": a period where aggregate instability exceeds the normal
  level by an order of magnitude or more;
- :func:`persistence` — how long a route's information keeps
  fluctuating before stabilizing (the paper: "the persistence of most
  pathological BGP behaviors is under five minutes").
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..collector.record import PrefixAs
from ..net.prefix import Prefix
from .classifier import ClassifiedUpdate
from .taxonomy import (
    INSTABILITY_CATEGORIES,
    PATHOLOGICAL_CATEGORIES,
    UpdateCategory,
)

__all__ = [
    "CategoryCounts",
    "counts_by_peer",
    "counts_by_peer_columns",
    "counts_by_prefix_as",
    "counts_by_prefix_as_columns",
    "detect_incidents",
    "persistence",
    "Incident",
]


@dataclass(slots=True)
class CategoryCounts:
    """Tallies of classified updates, per category."""

    counts: Counter = field(default_factory=Counter)
    policy_changes: int = 0

    def add(self, update: ClassifiedUpdate) -> None:
        self.counts[update.category] += 1
        if update.policy_change:
            self.policy_changes += 1

    def extend(self, updates: Iterable[ClassifiedUpdate]) -> None:
        for update in updates:
            self.add(update)

    @classmethod
    def from_codes(
        cls,
        codes: "np.ndarray",
        policy: Optional["np.ndarray"] = None,
    ) -> "CategoryCounts":
        """Tallies from a columnar classification (category-code and
        policy arrays, as produced by
        :func:`~repro.core.columns.classify_columns`)."""
        result = cls()
        totals = np.bincount(
            np.asarray(codes), minlength=len(UpdateCategory) + 1
        )
        for category in UpdateCategory:
            count = int(totals[category.value])
            if count:
                result.counts[category] = count
        if policy is not None:
            result.policy_changes = int(np.count_nonzero(policy))
        return result

    def __getitem__(self, category: UpdateCategory) -> int:
        return self.counts.get(category, 0)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def instability(self) -> int:
        """AADiff + WADiff + WADup (the paper's instability measure)."""
        return sum(
            self.counts.get(c, 0) for c in INSTABILITY_CATEGORIES
        )

    @property
    def pathological(self) -> int:
        """AADup + WWDup."""
        return sum(
            self.counts.get(c, 0) for c in PATHOLOGICAL_CATEGORIES
        )

    @property
    def uncategorized(self) -> int:
        return (
            self.counts.get(UpdateCategory.NEW_ANNOUNCE, 0)
            + self.counts.get(UpdateCategory.PLAIN_WITHDRAW, 0)
        )

    @property
    def pathological_fraction(self) -> float:
        """Share of all updates that are pathological (paper: ~99% once
        WWDup storms are included)."""
        return self.pathological / self.total if self.total else 0.0

    def merged(self, other: "CategoryCounts") -> "CategoryCounts":
        """A new tally combining both (associative; the empty
        :class:`CategoryCounts` is the identity) — the campaign
        layer's shard-merge operation, also spelled ``+``."""
        result = CategoryCounts()
        result.counts = self.counts + other.counts
        result.policy_changes = self.policy_changes + other.policy_changes
        return result

    def __add__(self, other: object) -> "CategoryCounts":
        if isinstance(other, int) and other == 0:  # sum() start value
            return self
        if not isinstance(other, CategoryCounts):
            return NotImplemented
        return self.merged(other)

    __radd__ = __add__

    def as_dict(self) -> Dict[str, int]:
        """Plain dict keyed by category name (for reports/JSON)."""
        return {cat.name: self.counts.get(cat, 0) for cat in UpdateCategory}

    def nonzero_dict(self) -> Dict[str, int]:
        """Like :meth:`as_dict` but only categories that occurred —
        the canonical serialized form (zero entries would make equal
        tallies serialize differently)."""
        return {
            cat.name: self.counts[cat]
            for cat in UpdateCategory
            if self.counts.get(cat, 0)
        }

    @classmethod
    def from_dict(
        cls, payload: Dict[str, int], policy_changes: int = 0
    ) -> "CategoryCounts":
        """Rebuild a tally from :meth:`as_dict`/:meth:`nonzero_dict`
        output (zero entries are dropped, so the round trip is
        canonical)."""
        result = cls(policy_changes=policy_changes)
        for name, value in payload.items():
            if value:
                result.counts[UpdateCategory[name]] = value
        return result


def counts_by_peer(
    updates: Iterable[ClassifiedUpdate],
) -> Dict[int, CategoryCounts]:
    """Per-peer-AS category counts (Figure 6's per-peer points)."""
    result: Dict[int, CategoryCounts] = defaultdict(CategoryCounts)
    for update in updates:
        result[update.peer_asn].add(update)
    return dict(result)


def counts_by_prefix_as(
    updates: Iterable[ClassifiedUpdate],
    category: Optional[UpdateCategory] = None,
) -> Dict[PrefixAs, int]:
    """Events per Prefix+AS pair, optionally restricted to one category
    (Figure 7's histogram input)."""
    result: Counter = Counter()
    for update in updates:
        if category is None or update.category is category:
            result[update.prefix_as] += 1
    return dict(result)


def counts_by_peer_columns(
    columns,
    codes: "np.ndarray",
    policy: Optional["np.ndarray"] = None,
) -> Dict[int, "CategoryCounts"]:
    """Columnar :func:`counts_by_peer`: per-peer-AS category counts
    from a classified :class:`~repro.core.columns.RecordColumns`
    batch, via one ``np.unique`` over (peer ASN, code) keys."""
    codes = np.asarray(codes)
    key = columns.peer_asn.astype(np.uint64) * 16 + codes
    unique, totals = np.unique(key, return_counts=True)
    result: Dict[int, CategoryCounts] = {}
    for combined, count in zip(unique.tolist(), totals.tolist()):
        asn, code = divmod(combined, 16)
        counts = result.get(asn)
        if counts is None:
            counts = result[asn] = CategoryCounts()
        counts.counts[UpdateCategory(code)] = count
    if policy is not None:
        asns, flips = np.unique(
            columns.peer_asn[np.asarray(policy)], return_counts=True
        )
        for asn, count in zip(asns.tolist(), flips.tolist()):
            if asn in result:
                result[asn].policy_changes = count
    return result


def _pair_group_counts(columns, codes, category, keys):
    """Group rows of ``columns`` by the given key columns (optionally
    restricted to one category); returns ``(sorted_rows, group_starts,
    group_counts)``."""
    data = columns.data
    if category is not None:
        data = data[np.asarray(codes) == category.value]
    if len(data) == 0:
        empty = np.empty(0, dtype=np.int64)
        return data, empty, empty
    order = np.lexsort(tuple(data[k] for k in reversed(keys)))
    s = data[order]
    n = len(s)
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    changed = np.zeros(n - 1, dtype=bool)
    for k in keys:
        changed |= s[k][1:] != s[k][:-1]
    new_group[1:] = changed
    starts = np.flatnonzero(new_group)
    counts = np.diff(np.append(starts, n))
    return s, starts, counts


def counts_by_prefix_as_columns(
    columns,
    codes: Optional["np.ndarray"] = None,
    category: Optional[UpdateCategory] = None,
) -> Dict[PrefixAs, int]:
    """Columnar :func:`counts_by_prefix_as`: events per Prefix+AS pair
    (Figure 7's histogram input) from a
    :class:`~repro.core.columns.RecordColumns` batch."""
    s, starts, counts = _pair_group_counts(
        columns, codes, category, ("peer_asn", "net", "plen")
    )
    result: Dict[PrefixAs, int] = {}
    nets = s["net"][starts].tolist()
    plens = s["plen"][starts].tolist()
    asns = s["peer_asn"][starts].tolist()
    for net, plen, asn, count in zip(nets, plens, asns, counts.tolist()):
        result[(Prefix(net, plen), asn)] = count
    return result


def counts_by_prefix_columns(
    columns,
    codes: Optional["np.ndarray"] = None,
    category: Optional[UpdateCategory] = None,
) -> Dict[Prefix, int]:
    """Columnar :func:`counts_by_prefix` (AS dimension collapsed)."""
    s, starts, counts = _pair_group_counts(
        columns, codes, category, ("net", "plen")
    )
    result: Dict[Prefix, int] = {}
    nets = s["net"][starts].tolist()
    plens = s["plen"][starts].tolist()
    for net, plen, count in zip(nets, plens, counts.tolist()):
        result[Prefix(net, plen)] = count
    return result


def counts_by_prefix(
    updates: Iterable[ClassifiedUpdate],
    category: Optional[UpdateCategory] = None,
) -> Dict:
    """Events per bare prefix (AS dimension collapsed).

    The paper: "An investigation of instability aggregated on prefix
    alone generated results similar to those shown in this section and
    have been omitted" — this is that aggregation, so the claim can be
    verified rather than taken on faith.
    """
    result: Counter = Counter()
    for update in updates:
        if category is None or update.category is category:
            result[update.prefix] += 1
    return dict(result)


@dataclass(frozen=True, slots=True)
class Incident:
    """A pathological routing incident: a bin whose update level
    exceeds the baseline by ``magnitude`` orders of magnitude."""

    start: float
    end: float
    updates: int
    baseline: float
    magnitude: float


def detect_incidents(
    bin_counts: Sequence[int],
    bin_width: float,
    threshold_orders: float = 1.0,
) -> List[Incident]:
    """Find pathological routing incidents in binned update counts.

    The paper defines an incident as "a time when the aggregate level
    of routing instability seen at an exchange point exceeds the normal
    level of instability by one or more orders of magnitude."  The
    *normal level* here is the median of the non-zero bins; a bin
    qualifies when ``count >= baseline * 10**threshold_orders``.
    Adjacent qualifying bins merge into one incident.
    """
    nonzero = sorted(c for c in bin_counts if c > 0)
    if not nonzero:
        return []
    baseline = float(nonzero[len(nonzero) // 2])
    cutoff = baseline * (10.0 ** threshold_orders)
    incidents: List[Incident] = []
    run_start: Optional[int] = None
    run_total = 0
    for index, count in enumerate(bin_counts):
        if count >= cutoff:
            if run_start is None:
                run_start = index
                run_total = 0
            run_total += count
        elif run_start is not None:
            incidents.append(
                _make_incident(run_start, index, run_total, baseline, bin_width)
            )
            run_start = None
    if run_start is not None:
        incidents.append(
            _make_incident(
                run_start, len(bin_counts), run_total, baseline, bin_width
            )
        )
    return incidents


def _make_incident(
    start_bin: int, end_bin: int, total: int, baseline: float, width: float
) -> Incident:
    peak_ratio = total / max(baseline * (end_bin - start_bin), 1e-12)
    return Incident(
        start=start_bin * width,
        end=end_bin * width,
        updates=total,
        baseline=baseline,
        magnitude=math.log10(max(peak_ratio, 1e-12)),
    )


def persistence(
    updates: Iterable[ClassifiedUpdate],
    quiet_gap: float = 300.0,
) -> Dict[PrefixAs, List[float]]:
    """Fluctuation-episode durations per Prefix+AS pair.

    Consecutive events for a pair belong to one episode while their
    spacing stays under ``quiet_gap`` (default five minutes — the
    paper's observed upper bound on pathological persistence); the
    episode's persistence is last-event time minus first-event time.
    Single-event episodes have persistence 0.
    """
    by_pair: Dict[PrefixAs, List[float]] = defaultdict(list)
    for update in updates:
        by_pair[update.prefix_as].append(update.time)
    episodes: Dict[PrefixAs, List[float]] = {}
    for pair, times in by_pair.items():
        times.sort()
        durations: List[float] = []
        episode_start = times[0]
        last = times[0]
        for time in times[1:]:
            if time - last > quiet_gap:
                durations.append(last - episode_start)
                episode_start = time
            last = time
        durations.append(last - episode_start)
        episodes[pair] = durations
    return episodes
