"""Memory-mappable columnar spill chunks: the out-of-core tier.

The paper's measurement horizon is nine months of 3-6 million
updates/day — far past what a campaign can hold in RAM.  This module
defines the on-disk unit that makes long horizons a flat-memory
workload: one *spill chunk* per generated day, holding a
:class:`~repro.core.columns.RecordColumns` batch as a raw
:data:`~repro.core.columns.RECORD_DTYPE` segment that ``np.memmap``
can address directly, plus a small JSON footer.

File layout (single file, written atomically via ``os.replace``)::

    offset 0      8-byte magic "RCOLSPL1"
    offset 8      rows * RECORD_DTYPE.itemsize raw record bytes
    then          JSON footer: schema, dtype descr, row count,
                  attribute table, caller metadata, sha256
    last 16 bytes footer length (little-endian u64) + end magic

Readers seek the trailer, parse the footer, and map the data segment
in place — :class:`~repro.core.columns.RecordColumns` wraps the memmap
without copying, so streaming a 270-day campaign touches one day of
pages at a time.  The digest covers the data bytes *and* the footer
metadata, so truncation, bit flips, or a stale footer all surface as
:class:`ChunkCorrupt` instead of silently corrupt aggregates.

The attribute table serializes through an explicit
:class:`~repro.bgp.attributes.PathAttributes` codec
(:func:`attributes_payload` / :func:`attributes_from_payload`) — no
pickle anywhere, so chunks are inspectable and stable across Python
versions.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..bgp.attributes import AsPath, Origin, PathAttributes
from .columns import NO_ATTR, RECORD_DTYPE, AttributeTable, RecordColumns

__all__ = [
    "CHUNK_MAGIC",
    "CHUNK_SCHEMA",
    "ChunkCorrupt",
    "ChunkInfo",
    "SpillChunk",
    "attribute_payload",
    "attribute_from_payload",
    "attributes_payload",
    "attributes_from_payload",
    "write_chunk",
    "read_chunk",
    "verify_chunk",
]

CHUNK_MAGIC = b"RCOLSPL1"
CHUNK_END_MAGIC = b"1LPSLOCR"
CHUNK_SCHEMA = 1
#: Trailer: little-endian u64 footer length + 8-byte end magic.
_TRAILER_SIZE = 16
#: Streaming-hash block size for digest verification.
_HASH_BLOCK = 1 << 22


class ChunkCorrupt(RuntimeError):
    """A spill chunk failed structural or digest verification.

    Raised for truncation, bit flips, bad magic, schema or dtype
    mismatches, and unparseable footers — any state where the chunk
    cannot be trusted and the day must be regenerated.
    """


class ChunkInfo:
    """Lightweight descriptor of a chunk on disk (what a manifest or a
    worker handoff carries instead of the data itself)."""

    __slots__ = ("rows", "sha256")

    def __init__(self, rows: int, sha256: str) -> None:
        self.rows = rows
        self.sha256 = sha256


class SpillChunk:
    """A verified chunk read back from disk: the (memory-mapped)
    columns, the caller metadata stored with them, and the descriptor."""

    __slots__ = ("columns", "extra", "info")

    def __init__(
        self, columns: RecordColumns, extra: dict, info: ChunkInfo
    ) -> None:
        self.columns = columns
        self.extra = extra
        self.info = info


# -- PathAttributes codec ---------------------------------------------------


def attribute_payload(attrs: PathAttributes) -> dict:
    """One attribute bundle as canonical plain data (sorted, total)."""
    return {
        "as_path": list(attrs.as_path),
        "next_hop": attrs.next_hop,
        "origin": int(attrs.origin),
        "med": attrs.med,
        "local_pref": attrs.local_pref,
        "communities": sorted(attrs.communities),
        "atomic_aggregate": attrs.atomic_aggregate,
        "aggregator": (
            None if attrs.aggregator is None else list(attrs.aggregator)
        ),
    }


def attribute_from_payload(payload: dict) -> PathAttributes:
    return PathAttributes(
        as_path=AsPath(int(a) for a in payload["as_path"]),
        next_hop=int(payload["next_hop"]),
        origin=Origin(int(payload["origin"])),
        med=None if payload["med"] is None else int(payload["med"]),
        local_pref=(
            None
            if payload["local_pref"] is None
            else int(payload["local_pref"])
        ),
        communities=frozenset(int(c) for c in payload["communities"]),
        atomic_aggregate=bool(payload["atomic_aggregate"]),
        aggregator=(
            None
            if payload["aggregator"] is None
            else (
                int(payload["aggregator"][0]),
                int(payload["aggregator"][1]),
            )
        ),
    )


def attributes_payload(table: AttributeTable) -> List[dict]:
    """The whole intern table, id order preserved."""
    return [attribute_payload(table[i]) for i in range(len(table))]


def attributes_from_payload(entries: List[dict]) -> AttributeTable:
    table = AttributeTable()
    for i, entry in enumerate(entries):
        if table.intern(attribute_from_payload(entry)) != i:
            raise ChunkCorrupt(
                "attribute table has duplicate entries; ids would remap"
            )
    return table


# -- write ------------------------------------------------------------------


def _canonical(payload) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _chunk_digest(data_bytes: bytes, meta: dict) -> str:
    digest = hashlib.sha256(data_bytes)
    digest.update(_canonical(meta))
    return digest.hexdigest()


def write_chunk(
    path: Union[str, Path],
    columns: RecordColumns,
    extra: Optional[dict] = None,
) -> ChunkInfo:
    """Persist ``columns`` as one spill chunk; atomic via a temp file.

    ``extra`` is caller metadata stored verbatim in the footer (the
    campaign puts the day number, config fingerprint, and generator
    state checkpoint there); it must be canonical-JSON-safe plain data.
    """
    path = Path(path)
    data = np.ascontiguousarray(columns.data, dtype=RECORD_DTYPE)
    data_bytes = data.tobytes()
    meta = {
        "schema": CHUNK_SCHEMA,
        "dtype": [list(f) for f in RECORD_DTYPE.descr],
        "rows": len(data),
        "attrs": attributes_payload(columns.attrs),
        "extra": extra if extra is not None else {},
    }
    sha256 = _chunk_digest(data_bytes, meta)
    footer = _canonical(dict(meta, sha256=sha256))
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(CHUNK_MAGIC)
        fh.write(data_bytes)
        fh.write(footer)
        fh.write(len(footer).to_bytes(8, "little"))
        fh.write(CHUNK_END_MAGIC)
    os.replace(tmp, path)
    return ChunkInfo(rows=len(data), sha256=sha256)


# -- read -------------------------------------------------------------------


def _read_footer(path: Path) -> dict:
    """Parse and structurally validate the footer; raises ChunkCorrupt."""
    try:
        size = os.stat(path).st_size
    except OSError as exc:
        raise ChunkCorrupt(f"{path}: {exc}") from exc
    if size < len(CHUNK_MAGIC) + _TRAILER_SIZE:
        raise ChunkCorrupt(f"{path}: too short to be a spill chunk")
    try:
        with open(path, "rb") as fh:
            if fh.read(len(CHUNK_MAGIC)) != CHUNK_MAGIC:
                raise ChunkCorrupt(f"{path}: bad magic")
            fh.seek(size - _TRAILER_SIZE)
            trailer = fh.read(_TRAILER_SIZE)
            footer_len = int.from_bytes(trailer[:8], "little")
            if trailer[8:] != CHUNK_END_MAGIC:
                raise ChunkCorrupt(f"{path}: bad end magic (truncated?)")
            footer_off = size - _TRAILER_SIZE - footer_len
            if footer_off < len(CHUNK_MAGIC):
                raise ChunkCorrupt(f"{path}: footer length out of bounds")
            fh.seek(footer_off)
            footer_bytes = fh.read(footer_len)
    except OSError as exc:
        raise ChunkCorrupt(f"{path}: {exc}") from exc
    try:
        footer = json.loads(footer_bytes)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ChunkCorrupt(f"{path}: unparseable footer") from exc
    if not isinstance(footer, dict):
        raise ChunkCorrupt(f"{path}: footer is not an object")
    if footer.get("schema") != CHUNK_SCHEMA:
        raise ChunkCorrupt(
            f"{path}: schema {footer.get('schema')!r} != {CHUNK_SCHEMA}"
        )
    if footer.get("dtype") != [list(f) for f in RECORD_DTYPE.descr]:
        raise ChunkCorrupt(f"{path}: dtype does not match RECORD_DTYPE")
    rows = footer.get("rows")
    if not isinstance(rows, int) or rows < 0:
        raise ChunkCorrupt(f"{path}: bad row count {rows!r}")
    if footer_off - len(CHUNK_MAGIC) != rows * RECORD_DTYPE.itemsize:
        raise ChunkCorrupt(
            f"{path}: data segment is not exactly {rows} records"
        )
    if not isinstance(footer.get("attrs"), list):
        raise ChunkCorrupt(f"{path}: missing attribute table")
    if not isinstance(footer.get("extra"), dict):
        raise ChunkCorrupt(f"{path}: missing extra metadata")
    if not isinstance(footer.get("sha256"), str):
        raise ChunkCorrupt(f"{path}: missing digest")
    return footer


def _verify_digest(path: Path, footer: dict) -> None:
    """Recompute the chunk digest by streaming the data segment."""
    digest = hashlib.sha256()
    remaining = footer["rows"] * RECORD_DTYPE.itemsize
    with open(path, "rb") as fh:
        fh.seek(len(CHUNK_MAGIC))
        while remaining:
            block = fh.read(min(remaining, _HASH_BLOCK))
            if not block:
                raise ChunkCorrupt(f"{path}: data segment truncated")
            digest.update(block)
            remaining -= len(block)
    meta = {k: v for k, v in footer.items() if k != "sha256"}
    digest.update(_canonical(meta))
    if digest.hexdigest() != footer["sha256"]:
        raise ChunkCorrupt(f"{path}: digest mismatch")


def verify_chunk(path: Union[str, Path]) -> ChunkInfo:
    """Full integrity check without materializing the data; raises
    :class:`ChunkCorrupt` on any problem."""
    path = Path(path)
    footer = _read_footer(path)
    _verify_digest(path, footer)
    return ChunkInfo(rows=footer["rows"], sha256=footer["sha256"])


def read_chunk(
    path: Union[str, Path], verify: bool = True
) -> SpillChunk:
    """Open a chunk for streaming: the data segment is memory-mapped
    (read-only, zero-copy into :class:`RecordColumns`), the attribute
    table rebuilt from the footer.  ``verify=True`` (the default)
    recomputes the digest first — resume paths must never trust a
    chunk that a crash or fault could have damaged."""
    path = Path(path)
    footer = _read_footer(path)
    if verify:
        _verify_digest(path, footer)
    rows = footer["rows"]
    table = attributes_from_payload(footer["attrs"])
    if rows:
        data = np.memmap(
            path,
            dtype=RECORD_DTYPE,
            mode="r",
            offset=len(CHUNK_MAGIC),
            shape=(rows,),
        )
        announced = data["attr_id"][data["attr_id"] != NO_ATTR]
        if len(announced) and int(announced.max()) >= len(table):
            raise ChunkCorrupt(
                f"{path}: attr_id exceeds attribute table"
            )
    else:
        data = np.empty(0, dtype=RECORD_DTYPE)
    return SpillChunk(
        RecordColumns(data, table),
        footer["extra"],
        ChunkInfo(rows=rows, sha256=footer["sha256"]),
    )
