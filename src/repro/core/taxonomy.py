"""The paper's BGP update taxonomy.

Section 4 of the paper defines five sequence categories over the stream
of updates for one (prefix, peer) pair, keyed on the *forwarding tuple*
``(Prefix, NextHop, ASPATH)``:

==========  ============================================================
Category    Definition
==========  ============================================================
``WADIFF``  A route is explicitly withdrawn and later replaced by a
            *different* route — forwarding instability.
``AADIFF``  A route is implicitly withdrawn (replaced in place) by a
            *different* route — forwarding instability.
``WADUP``   A route is explicitly withdrawn and then re-announced
            *unchanged* — transient failure or pathological oscillation.
``AADUP``   A route is implicitly replaced by a *duplicate* of itself —
            pathological (or policy fluctuation when non-forwarding
            attributes changed).
``WWDUP``   Repeated withdrawal of an already-unreachable prefix —
            pathological.
==========  ============================================================

Two further labels cover sequence starts, which the paper leaves out of
its named categories (the "Uncategorized" slice of Figure 2):
``NEW_ANNOUNCE`` (first announcement ever seen for the pair) and
``PLAIN_WITHDRAW`` (the legitimate withdrawal of a currently-reachable
route — it only *becomes* part of a WADiff/WADup once the follow-up
announcement arrives, so the withdrawal itself stays uncategorized).

The module also defines the paper's two super-classes:
*instability* = {WADIFF, AADIFF, WADUP} and *pathological* =
{AADUP, WWDUP}.
"""

from __future__ import annotations

from enum import Enum, auto
from typing import FrozenSet

__all__ = [
    "UpdateCategory",
    "INSTABILITY_CATEGORIES",
    "PATHOLOGICAL_CATEGORIES",
    "FIGURE2_CATEGORIES",
    "FINE_GRAINED_CATEGORIES",
]


class UpdateCategory(Enum):
    """Classification of one update within its (prefix, peer) stream."""

    AADIFF = auto()
    WADIFF = auto()
    WADUP = auto()
    AADUP = auto()
    WWDUP = auto()
    NEW_ANNOUNCE = auto()
    PLAIN_WITHDRAW = auto()

    @property
    def is_instability(self) -> bool:
        """Forwarding instability or policy fluctuation (paper's
        definition of *instability*)."""
        return self in INSTABILITY_CATEGORIES

    @property
    def is_pathological(self) -> bool:
        """Redundant information reflecting no topology/policy change."""
        return self in PATHOLOGICAL_CATEGORIES

    @property
    def is_uncategorized(self) -> bool:
        """Sequence starts the paper's taxonomy does not name."""
        return self in (
            UpdateCategory.NEW_ANNOUNCE,
            UpdateCategory.PLAIN_WITHDRAW,
        )

    @property
    def label(self) -> str:
        """The paper's display label (e.g. ``"AA Duplicate"``)."""
        return _LABELS[self]


_LABELS = {
    UpdateCategory.AADIFF: "AA Different",
    UpdateCategory.WADIFF: "WA Different",
    UpdateCategory.WADUP: "WA Duplicate",
    UpdateCategory.AADUP: "AA Duplicate",
    UpdateCategory.WWDUP: "WW Duplicate",
    UpdateCategory.NEW_ANNOUNCE: "Uncategorized",
    UpdateCategory.PLAIN_WITHDRAW: "Uncategorized",
}

#: The paper: "we will refer to AADiff, WADiff and WADup as instability."
INSTABILITY_CATEGORIES: FrozenSet[UpdateCategory] = frozenset(
    {
        UpdateCategory.AADIFF,
        UpdateCategory.WADIFF,
        UpdateCategory.WADUP,
    }
)

#: "We will refer to AADup and WWDup as pathological instability."
PATHOLOGICAL_CATEGORIES: FrozenSet[UpdateCategory] = frozenset(
    {
        UpdateCategory.AADUP,
        UpdateCategory.WWDUP,
    }
)

#: The categories plotted in Figure 2 (WWDup is excluded "so as not to
#: obscure the salient features of the other data").
FIGURE2_CATEGORIES = (
    UpdateCategory.AADIFF,
    UpdateCategory.WADIFF,
    UpdateCategory.WADUP,
    UpdateCategory.AADUP,
)

#: The four categories of Figures 6, 7 and 8.
FINE_GRAINED_CATEGORIES = (
    UpdateCategory.AADIFF,
    UpdateCategory.WADIFF,
    UpdateCategory.AADUP,
    UpdateCategory.WADUP,
)
