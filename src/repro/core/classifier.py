"""Streaming classification of update records into the paper's taxonomy.

The classifier consumes a time-ordered stream of
:class:`~repro.collector.record.UpdateRecord` and labels each record
with an :class:`~repro.core.taxonomy.UpdateCategory` by tracking, for
every ``(peer_id, prefix)`` pair:

- whether the route is currently *reachable* via that peer, and
- the last announced attributes (kept even across withdrawals, so a
  re-announcement can be recognized as a WADup vs a WADiff).

A duplicate is "the receipt of two or more updates with identical
(Prefix, NextHop, ASPATH) tuple information" (§4.1); announcements that
repeat the forwarding tuple but alter other attributes are flagged
``policy_change`` — the paper's *policy fluctuation*.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..bgp.attributes import PathAttributes
from ..collector.record import UpdateKind, UpdateRecord
from ..net.prefix import Prefix
from .taxonomy import UpdateCategory

__all__ = [
    "ClassifiedUpdate",
    "StreamClassifier",
    "classify",
    "route_state_digest",
]


def route_state_digest(
    entries: Iterable[
        Tuple[Tuple[int, int, int], bool, bool, Optional[PathAttributes]]
    ],
) -> str:
    """SHA-256 over normalized per-route classifier state.

    ``entries`` are ``((peer_id, network, length), reachable,
    ever_announced, last_attributes)`` tuples; order does not matter
    (entries are sorted by key here).  Both classifier tiers render
    their state through this one function, so equal states — however
    they are keyed internally — produce equal digests.  The verify
    layer compares these digests to prove the tiers agree not just on
    emitted labels but on the state they would carry forward.
    """
    digest = hashlib.sha256()
    for key, reachable, ever_announced, attrs in sorted(
        entries, key=lambda entry: entry[0]
    ):
        if attrs is None:
            rendered = "-"
        else:
            rendered = repr(
                (
                    attrs.next_hop,
                    tuple(attrs.as_path),
                    int(attrs.origin),
                    attrs.med,
                    attrs.local_pref,
                    tuple(sorted(attrs.communities)),
                    attrs.atomic_aggregate,
                    attrs.aggregator,
                )
            )
        line = (
            f"{key[0]}|{key[1]}|{key[2]}"
            f"|{int(reachable)}|{int(ever_announced)}|{rendered}\n"
        )
        digest.update(line.encode("ascii"))
    return digest.hexdigest()


@dataclass(frozen=True, slots=True)
class ClassifiedUpdate:
    """A record plus its taxonomy label.

    ``policy_change`` is True for AADUP events whose non-forwarding
    attributes (MED, communities, ...) changed — policy fluctuation
    rather than a pure pathological duplicate.
    """

    record: UpdateRecord
    category: UpdateCategory
    policy_change: bool = False

    # Convenience pass-throughs used heavily by the analyses.
    @property
    def time(self) -> float:
        return self.record.time

    @property
    def prefix(self) -> Prefix:
        return self.record.prefix

    @property
    def peer_asn(self) -> int:
        return self.record.peer_asn

    @property
    def peer_id(self) -> int:
        return self.record.peer_id

    @property
    def prefix_as(self) -> Tuple[Prefix, int]:
        return self.record.prefix_as


class _RouteState:
    """Classifier memory for one (peer, prefix) pair."""

    __slots__ = ("reachable", "last_attributes", "ever_announced")

    def __init__(self) -> None:
        self.reachable = False
        self.last_attributes: Optional[PathAttributes] = None
        self.ever_announced = False


class StreamClassifier:
    """Stateful classifier over a time-ordered update stream.

    Use :meth:`feed` record-by-record (the simulator does) or
    :func:`classify` over a whole iterable (the analyses do).  State
    persists across calls, so a month can be fed day by day.
    """

    __slots__ = ("_states",)

    def __init__(self) -> None:
        self._states: Dict[Tuple[int, Prefix], _RouteState] = {}

    def feed(self, record: UpdateRecord) -> ClassifiedUpdate:
        """Classify one record and update per-route state."""
        key = (record.peer_id, record.prefix)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _RouteState()
        if record.kind is UpdateKind.ANNOUNCE:
            result = self._classify_announce(record, state)
        else:
            result = self._classify_withdraw(record, state)
        return result

    def _classify_announce(
        self, record: UpdateRecord, state: _RouteState
    ) -> ClassifiedUpdate:
        attrs = record.attributes
        assert attrs is not None  # enforced by UpdateRecord
        previous = state.last_attributes
        if not state.ever_announced:
            category = UpdateCategory.NEW_ANNOUNCE
            policy = False
        elif state.reachable:
            # Implicit withdrawal: the announcement replaces the route.
            assert previous is not None
            if attrs.same_forwarding(previous):
                category = UpdateCategory.AADUP
                policy = attrs != previous
            else:
                category = UpdateCategory.AADIFF
                policy = False
        else:
            # Re-announcement after an explicit withdrawal.
            assert previous is not None
            if attrs.same_forwarding(previous):
                category = UpdateCategory.WADUP
            else:
                category = UpdateCategory.WADIFF
            policy = False
        state.reachable = True
        state.ever_announced = True
        state.last_attributes = attrs
        return ClassifiedUpdate(record, category, policy)

    def _classify_withdraw(
        self, record: UpdateRecord, state: _RouteState
    ) -> ClassifiedUpdate:
        if state.reachable:
            state.reachable = False
            return ClassifiedUpdate(record, UpdateCategory.PLAIN_WITHDRAW)
        # Withdrawal of an already-unreachable (or never-announced)
        # prefix: the paper's dominant pathology.  "Most of these WWDup
        # withdrawals are transmitted by routers belonging to autonomous
        # systems that never previously announced reachability for the
        # withdrawn prefixes."
        return ClassifiedUpdate(record, UpdateCategory.WWDUP)

    # -- introspection ------------------------------------------------------

    def is_reachable(self, peer_id: int, prefix: Prefix) -> bool:
        state = self._states.get((peer_id, prefix))
        return state.reachable if state else False

    def tracked_routes(self) -> int:
        """Number of (peer, prefix) pairs with state."""
        return len(self._states)

    def state_digest(self) -> str:
        """Digest of all per-route state (see
        :func:`route_state_digest`); comparable across tiers."""
        return route_state_digest(
            (
                (peer_id, prefix.network, prefix.length),
                state.reachable,
                state.ever_announced,
                state.last_attributes,
            )
            for (peer_id, prefix), state in self._states.items()
        )

    def reset(self) -> None:
        self._states.clear()


def classify(
    records: Iterable[UpdateRecord],
    classifier: Optional[StreamClassifier] = None,
) -> Iterator[ClassifiedUpdate]:
    """Classify a whole record stream (assumed time-ordered).

    Pass an existing ``classifier`` to continue from prior state — e.g.
    when iterating a :class:`~repro.collector.store.DayStore` day by day
    so cross-midnight sequences classify correctly.
    """
    classifier = classifier or StreamClassifier()
    for record in records:
        yield classifier.feed(record)
