"""The paper's primary contribution: the update taxonomy, the streaming
classifier, instability metrics, and result reporting."""

from .taxonomy import (
    FIGURE2_CATEGORIES,
    FINE_GRAINED_CATEGORIES,
    INSTABILITY_CATEGORIES,
    PATHOLOGICAL_CATEGORIES,
    UpdateCategory,
)
from .classifier import ClassifiedUpdate, StreamClassifier, classify
from .columns import (
    AttributeTable,
    ColumnClassifier,
    RecordColumns,
    classify_columns,
    decode_categories,
)
from .instability import (
    CategoryCounts,
    Incident,
    counts_by_peer,
    counts_by_peer_columns,
    counts_by_prefix_as,
    counts_by_prefix_as_columns,
    detect_incidents,
    persistence,
)
from .report import ExperimentResult, Series, Table, format_number

__all__ = [
    "FIGURE2_CATEGORIES",
    "FINE_GRAINED_CATEGORIES",
    "INSTABILITY_CATEGORIES",
    "PATHOLOGICAL_CATEGORIES",
    "UpdateCategory",
    "ClassifiedUpdate",
    "StreamClassifier",
    "classify",
    "AttributeTable",
    "ColumnClassifier",
    "RecordColumns",
    "classify_columns",
    "decode_categories",
    "CategoryCounts",
    "Incident",
    "counts_by_peer",
    "counts_by_peer_columns",
    "counts_by_prefix_as",
    "counts_by_prefix_as_columns",
    "detect_incidents",
    "persistence",
    "ExperimentResult",
    "Series",
    "Table",
    "format_number",
]
