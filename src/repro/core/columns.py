"""Columnar execution tier: vectorized record batches.

The streaming tier processes one Python object per update — at the
paper's scale (3–6 million updates/day for nine months) a full replay
is CPU-bound on object churn.  This module defines the columnar
counterpart: a :class:`RecordColumns` batch holds an entire day (or
month) of updates as NumPy structured arrays

    ``time:f8, peer_id:u4, peer_asn:u4, net:u4, plen:u1, kind:u1,
    attr_id:u4``

plus an :class:`AttributeTable` interning the distinct
:class:`~repro.bgp.attributes.PathAttributes` bundles (real update
streams repeat a tiny attribute vocabulary millions of times — the
paper's logs carry ~1,500 unique ASPATHs against millions of updates).

On top of the layout, :func:`classify_columns` reproduces the
streaming :class:`~repro.core.classifier.StreamClassifier` taxonomy
bit-for-bit with array operations: records are grouped per
``(peer_id, prefix)`` by a stable lexsort, per-group predecessor state
(reachable / ever-announced / last-announced attributes) is derived
with cumulative array ops, and the taxonomy transition table is
applied to whole masks at once.  :class:`ColumnClassifier` carries the
per-route state across batches, so a month can be classified day by
day exactly like the streaming tier.

Conversions to and from :class:`~repro.collector.record.UpdateRecord`
streams are lossless; the streaming tier remains the reference
implementation (and the equivalence is asserted record-for-record in
``tests/test_columns.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..bgp.attributes import PathAttributes
from ..collector.record import UpdateKind, UpdateRecord
from ..net.prefix import Prefix
from .classifier import route_state_digest
from .taxonomy import UpdateCategory

__all__ = [
    "RECORD_DTYPE",
    "NO_ATTR",
    "CATEGORY_OF_CODE",
    "AttributeTable",
    "RecordColumns",
    "ColumnClassifier",
    "classify_columns",
    "decode_categories",
]

#: The columnar record layout.  ``net``/``plen`` unpack a prefix;
#: ``attr_id`` indexes the batch's :class:`AttributeTable` (``NO_ATTR``
#: for withdrawals, which carry no attributes).
RECORD_DTYPE = np.dtype(
    [
        ("time", "f8"),
        ("peer_id", "u4"),
        ("peer_asn", "u4"),
        ("net", "u4"),
        ("plen", "u1"),
        ("kind", "u1"),
        ("attr_id", "u4"),
    ]
)

#: Sentinel attr_id for withdrawals.
NO_ATTR = np.uint32(0xFFFFFFFF)

_ANNOUNCE = int(UpdateKind.ANNOUNCE)
_WITHDRAW = int(UpdateKind.WITHDRAW)

#: Category lookup by numeric code (``UpdateCategory.value``); index 0
#: is unused so codes match the enum values exactly.
CATEGORY_OF_CODE: Tuple[Optional[UpdateCategory], ...] = (None,) + tuple(
    sorted(UpdateCategory, key=lambda c: c.value)
)


def decode_categories(codes: np.ndarray) -> List[UpdateCategory]:
    """Numeric category codes → :class:`UpdateCategory` objects."""
    return [CATEGORY_OF_CODE[int(code)] for code in codes]


class AttributeTable:
    """Interning table: ``attr_id`` → :class:`PathAttributes`.

    Equal attribute bundles intern to the same id, so full-equality
    tests reduce to integer comparison.  The table additionally interns
    each bundle's *forwarding key* ``(next_hop, as_path)`` — the tuple
    whose change constitutes forwarding instability — so
    ``same_forwarding`` reduces to comparing :attr:`fwd_ids` entries.
    """

    __slots__ = ("_attrs", "_ids", "_fwd", "_fwd_ids", "_fwd_array")

    def __init__(self) -> None:
        self._attrs: List[PathAttributes] = []
        self._ids: Dict[PathAttributes, int] = {}
        self._fwd: Dict[Tuple[int, tuple], int] = {}
        self._fwd_ids: List[int] = []
        self._fwd_array: Optional[np.ndarray] = None

    def intern(self, attrs: PathAttributes) -> int:
        """The id of ``attrs``, adding it to the table if new."""
        attr_id = self._ids.get(attrs)
        if attr_id is None:
            attr_id = len(self._attrs)
            self._ids[attrs] = attr_id
            self._attrs.append(attrs)
            key = attrs.forwarding_key
            fwd_id = self._fwd.setdefault(key, len(self._fwd))
            self._fwd_ids.append(fwd_id)
            self._fwd_array = None
        return attr_id

    def __getitem__(self, attr_id: int) -> PathAttributes:
        return self._attrs[attr_id]

    def __len__(self) -> int:
        return len(self._attrs)

    @property
    def fwd_ids(self) -> np.ndarray:
        """``fwd_ids[attr_id]`` — the interned forwarding-key id."""
        if self._fwd_array is None or len(self._fwd_array) != len(self._fwd_ids):
            self._fwd_array = np.asarray(self._fwd_ids, dtype=np.uint32)
        return self._fwd_array


class RecordColumns:
    """A batch of update records in columnar form.

    ``data`` is a :data:`RECORD_DTYPE` structured array; ``attrs`` the
    attribute intern table its ``attr_id`` column indexes.  Batches
    built against the same table can be concatenated without remapping.
    """

    __slots__ = ("data", "attrs")

    def __init__(
        self, data: np.ndarray, attrs: Optional[AttributeTable] = None
    ) -> None:
        self.data = np.ascontiguousarray(data, dtype=RECORD_DTYPE)
        self.attrs = attrs if attrs is not None else AttributeTable()

    # -- construction -------------------------------------------------------

    @classmethod
    def empty(cls, attrs: Optional[AttributeTable] = None) -> "RecordColumns":
        return cls(np.empty(0, dtype=RECORD_DTYPE), attrs)

    @classmethod
    def from_records(
        cls,
        records: Iterable[UpdateRecord],
        attrs: Optional[AttributeTable] = None,
    ) -> "RecordColumns":
        """Columnarize a record stream (order preserved, lossless)."""
        table = attrs if attrs is not None else AttributeTable()
        rows = []
        intern = table.intern
        no_attr = int(NO_ATTR)
        for r in records:
            attr_id = no_attr if r.attributes is None else intern(r.attributes)
            rows.append(
                (
                    r.time,
                    r.peer_id,
                    r.peer_asn,
                    r.prefix.network,
                    r.prefix.length,
                    int(r.kind),
                    attr_id,
                )
            )
        data = np.array(rows, dtype=RECORD_DTYPE)
        return cls(data, table)

    @classmethod
    def from_segments(
        cls,
        segments: Sequence[np.ndarray],
        attrs: Optional[AttributeTable] = None,
    ) -> "RecordColumns":
        """One batch from :data:`RECORD_DTYPE` segments of a single
        emission stream, stable-sorted by time.

        The segments must share ``attrs``'s id numbering and arrive in
        emission order: the stable sort keeps that order for equal
        timestamps, which is what makes a segment-built batch
        bit-identical to sorting the row-by-row stream.  The sort key
        is copied out to a contiguous array and each field gathered
        separately — on multi-million-row batches that is almost 2x
        faster than fancy-indexing 22-byte structured rows.
        """
        parts = [s for s in segments if len(s)]
        if not parts:
            return cls(np.empty(0, dtype=RECORD_DTYPE), attrs)
        merged = parts[0] if len(parts) == 1 else np.concatenate(parts)
        time = np.ascontiguousarray(merged["time"])
        order = np.argsort(time, kind="stable")
        data = np.empty(len(merged), dtype=RECORD_DTYPE)
        data["time"] = time[order]
        for name in RECORD_DTYPE.names:
            if name != "time":
                data[name] = np.ascontiguousarray(merged[name])[order]
        return cls(data, attrs)

    @staticmethod
    def concat(batches: Sequence["RecordColumns"]) -> "RecordColumns":
        """Concatenate batches into one (attr ids remapped as needed)."""
        if not batches:
            return RecordColumns.empty()
        table = batches[0].attrs
        parts = []
        for batch in batches:
            data = batch.data
            if batch.attrs is not table and len(batch.attrs):
                # Remap this batch's attr ids into the shared table.
                mapping = np.fromiter(
                    (table.intern(batch.attrs[i]) for i in range(len(batch.attrs))),
                    dtype=np.uint32,
                    count=len(batch.attrs),
                )
                data = data.copy()
                announced = data["attr_id"] != NO_ATTR
                data["attr_id"][announced] = mapping[data["attr_id"][announced]]
            parts.append(data)
        return RecordColumns(np.concatenate(parts), table)

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    @property
    def time(self) -> np.ndarray:
        return self.data["time"]

    @property
    def peer_id(self) -> np.ndarray:
        return self.data["peer_id"]

    @property
    def peer_asn(self) -> np.ndarray:
        return self.data["peer_asn"]

    @property
    def net(self) -> np.ndarray:
        return self.data["net"]

    @property
    def plen(self) -> np.ndarray:
        return self.data["plen"]

    @property
    def kind(self) -> np.ndarray:
        return self.data["kind"]

    @property
    def attr_id(self) -> np.ndarray:
        return self.data["attr_id"]

    def prefix(self, index: int) -> Prefix:
        row = self.data[index]
        return Prefix(int(row["net"]), int(row["plen"]))

    def record(self, index: int) -> UpdateRecord:
        """Materialize one row as an :class:`UpdateRecord`."""
        row = self.data[index]
        kind = UpdateKind(int(row["kind"]))
        attributes = (
            None if kind is UpdateKind.WITHDRAW else self.attrs[int(row["attr_id"])]
        )
        return UpdateRecord(
            float(row["time"]),
            int(row["peer_id"]),
            int(row["peer_asn"]),
            Prefix(int(row["net"]), int(row["plen"])),
            kind,
            attributes,
        )

    def __iter__(self) -> Iterator[UpdateRecord]:
        return iter(self.to_records())

    def to_records(self) -> List[UpdateRecord]:
        """Materialize the whole batch as record objects (lossless)."""
        data = self.data
        table = self.attrs
        prefixes: Dict[Tuple[int, int], Prefix] = {}
        records: List[UpdateRecord] = []
        for time, peer_id, peer_asn, net, plen, kind, attr_id in zip(
            data["time"].tolist(),
            data["peer_id"].tolist(),
            data["peer_asn"].tolist(),
            data["net"].tolist(),
            data["plen"].tolist(),
            data["kind"].tolist(),
            data["attr_id"].tolist(),
        ):
            key = (net, plen)
            prefix = prefixes.get(key)
            if prefix is None:
                prefix = prefixes[key] = Prefix(net, plen)
            if kind == _ANNOUNCE:
                records.append(
                    UpdateRecord(
                        time, peer_id, peer_asn, prefix,
                        UpdateKind.ANNOUNCE, table[attr_id],
                    )
                )
            else:
                records.append(
                    UpdateRecord(
                        time, peer_id, peer_asn, prefix, UpdateKind.WITHDRAW
                    )
                )
        return records

    def select(self, mask_or_indices: np.ndarray) -> "RecordColumns":
        """A sub-batch sharing this batch's attribute table."""
        return RecordColumns(self.data[mask_or_indices], self.attrs)

    def sorted_by_time(self) -> "RecordColumns":
        """A stably time-sorted copy (ties keep batch order)."""
        order = np.argsort(self.data["time"], kind="stable")
        return RecordColumns(self.data[order], self.attrs)


def _group_sort(
    data: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stable sort permutation grouping rows per (peer_id, prefix).

    Returns ``(order, new_group, key_sorted, plen_sorted)`` where
    ``new_group[i]`` marks the first sorted row of each group and
    ``key_sorted`` packs ``(peer_id << 32) | net``.  Stability
    matters: within a group, rows stay in batch (i.e. stream) order,
    which is what makes the vectorized classification replay the
    streaming one exactly.  Sorting on the packed key plus ``plen``
    costs two sort passes instead of three and lets the boundary test
    compare two arrays instead of three.
    """
    plen = data["plen"]
    n = len(data)
    if n and (plen == plen[0]).all():
        # Uniform prefix length (the common case for generated and
        # real-table workloads).  When peer ids and row indices leave
        # room next to the 32 net bits, pack (peer, net, index) into
        # one u64 and value-sort it: np.sort radix-sorts integers
        # without the permutation indirection that makes argsort an
        # order of magnitude slower, and the appended index both
        # preserves stability and carries the permutation out.
        idx_bits = max(1, int(n - 1).bit_length())
        shift = np.uint64(idx_bits)
        mask = np.uint64((1 << idx_bits) - 1)
        arange = np.arange(n, dtype=np.uint64)
        peer_bits = int(data["peer_id"].max()).bit_length()
        if peer_bits + 32 + idx_bits <= 64:
            # Small peer ids: one value sort covers both keys.
            packed = (
                (data["peer_id"].astype(np.uint64) << (shift + np.uint64(32)))
                | (data["net"].astype(np.uint64) << shift)
                | arange
            )
            packed.sort()
            order = (packed & mask).astype(np.int64)
            key_sorted = packed >> shift
        else:
            # Full-width peer ids (real collector data uses the peer's
            # IP): LSD radix over two value sorts — stable-sort by net
            # first, then by peer.  Still far cheaper than one argsort.
            packed = (data["net"].astype(np.uint64) << shift) | arange
            packed.sort()
            pos1 = packed & mask
            net_by_net = packed >> shift
            packed = (
                np.take(
                    data["peer_id"], pos1.astype(np.int64)
                ).astype(np.uint64)
                << shift
            ) | arange
            packed.sort()
            pos2 = (packed & mask).astype(np.int64)
            order = np.take(pos1, pos2).astype(np.int64)
            key_sorted = ((packed >> shift) << np.uint64(32)) | np.take(
                net_by_net, pos2
            )
        plen_sorted = plen  # uniform: any permutation is itself
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        new_group[1:] = key_sorted[1:] != key_sorted[:-1]
        return order, new_group, key_sorted, plen_sorted
    key = (data["peer_id"].astype(np.uint64) << np.uint64(32)) | data["net"]
    order = np.lexsort((plen, key))
    key_sorted = key[order]
    plen_sorted = plen[order]
    new_group = np.empty(n, dtype=bool)
    if n:
        new_group[0] = True
        new_group[1:] = (key_sorted[1:] != key_sorted[:-1]) | (
            plen_sorted[1:] != plen_sorted[:-1]
        )
    return order, new_group, key_sorted, plen_sorted


def group_order(data: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Public :func:`_group_sort` without the sorted key columns."""
    order, new_group, _, _ = _group_sort(data)
    return order, new_group


def _build_code_lut() -> np.ndarray:
    """The taxonomy transition table as a 16-entry lookup.

    Index bits: ``ann<<3 | ever<<2 | reach<<1 | same_fwd``.  One fancy
    index through this table replaces eight boolean-mask assignments
    over the full batch.
    """
    lut = np.zeros(16, dtype=np.uint8)
    for ever in (0, 1):
        for reach in (0, 1):
            for fwd in (0, 1):
                # Withdrawals: reachable → plain withdraw, else WWDup.
                lut[ever << 2 | reach << 1 | fwd] = (
                    UpdateCategory.PLAIN_WITHDRAW.value
                    if reach
                    else UpdateCategory.WWDUP.value
                )
                # Announcements.
                if not ever:
                    code = UpdateCategory.NEW_ANNOUNCE.value
                elif reach:
                    code = (
                        UpdateCategory.AADUP.value
                        if fwd
                        else UpdateCategory.AADIFF.value
                    )
                else:
                    code = (
                        UpdateCategory.WADUP.value
                        if fwd
                        else UpdateCategory.WADIFF.value
                    )
                lut[8 | ever << 2 | reach << 1 | fwd] = code
    return lut


_CODE_LUT = _build_code_lut()
_AADUP_CODE = np.uint8(UpdateCategory.AADUP.value)


class _CarryState:
    """Cross-batch classifier memory for one (peer, prefix) pair."""

    __slots__ = ("reachable", "ever_announced", "last_attributes")

    def __init__(self) -> None:
        self.reachable = False
        self.ever_announced = False
        self.last_attributes: Optional[PathAttributes] = None


class ColumnClassifier:
    """Batch classifier equivalent to :class:`StreamClassifier`.

    :meth:`classify` labels every row of a batch with a taxonomy code
    (``UpdateCategory.value``) and a policy-fluctuation flag, updating
    per-route state so successive batches (e.g. a campaign fed day by
    day) classify exactly as one continuous stream.
    """

    __slots__ = ("_states",)

    def __init__(self) -> None:
        self._states: Dict[Tuple[int, int, int], _CarryState] = {}

    def classify(
        self, columns: RecordColumns
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Category codes and policy flags for ``columns``, row-aligned.

        The rows are interpreted in batch order (the stream order); the
        returned arrays are in the same order.
        """
        data = columns.data
        n = len(data)
        codes = np.zeros(n, dtype=np.uint8)
        policy = np.zeros(n, dtype=bool)
        if n == 0:
            return codes, policy

        order, new_group, key_sorted, plen_sorted = _group_sort(data)
        # np.take is markedly faster than fancy indexing for these
        # full-length gathers (contiguous output, no index checks).
        is_ann = np.take(data["kind"], order) == _ANNOUNCE
        attr_id = np.take(data["attr_id"], order)

        pos_dtype = np.int32 if n < 2**31 else np.int64
        group_start = np.flatnonzero(new_group).astype(pos_dtype)
        n_groups = len(group_start)
        group_counts = np.diff(np.append(group_start, n))

        # Carry-in state per group, from prior batches.
        carry_reach = np.zeros(n_groups, dtype=bool)
        carry_ever = np.zeros(n_groups, dtype=bool)
        carry_attrs: List[Optional[PathAttributes]] = [None] * n_groups
        keys: List[Tuple[int, int, int]] = []
        states = self._states
        g_key = key_sorted[group_start].tolist()
        g_plen = plen_sorted[group_start].tolist()
        for gi in range(n_groups):
            key = (g_key[gi] >> 32, g_key[gi] & 0xFFFFFFFF, g_plen[gi])
            keys.append(key)
            state = states.get(key)
            if state is not None:
                carry_reach[gi] = state.reachable
                carry_ever[gi] = state.ever_announced
                carry_attrs[gi] = state.last_attributes

        # Predecessor state per row, within the sorted layout:
        # reachable ⇔ the group's previous row is an announcement;
        # group-first rows take the carried state instead.
        reach_before = np.empty(n, dtype=bool)
        reach_before[0] = False
        reach_before[1:] = is_ann[:-1]
        reach_before[group_start] = carry_reach

        # Position of the last announcement at or before each row
        # (global maximum-accumulate; leakage across group boundaries
        # is filtered by comparing against the group start).
        idx = np.arange(n, dtype=pos_dtype)
        last_ann = np.maximum.accumulate(np.where(is_ann, idx, -1))
        prev_ann = np.empty(n, dtype=pos_dtype)
        prev_ann[0] = -1
        prev_ann[1:] = last_ann[:-1]
        start_of = np.repeat(group_start, group_counts)
        in_group_prev_ann = prev_ann >= start_of
        ever_before = in_group_prev_ann | np.repeat(carry_ever, group_counts)

        # Forwarding-tuple and full-attribute comparisons against the
        # previous announcement.  In-batch predecessors compare interned
        # ids; the (at most one per group) first announcement after a
        # carry compares against the carried attribute object.
        fwd_ids = columns.attrs.fwd_ids
        same_fwd = np.zeros(n, dtype=bool)
        equal_prev = np.zeros(n, dtype=bool)
        in_batch = is_ann & in_group_prev_ann
        if in_batch.any():
            cur = attr_id[in_batch]
            prev = attr_id[prev_ann[in_batch]]
            same_fwd[in_batch] = fwd_ids[cur] == fwd_ids[prev]
            equal_prev[in_batch] = cur == prev
        from_carry = np.flatnonzero(is_ann & ever_before & ~in_group_prev_ann)
        if len(from_carry):
            table = columns.attrs
            rows = from_carry.tolist()
            groups = (
                np.searchsorted(group_start, from_carry, side="right") - 1
            ).tolist()
            for i, gi in zip(rows, groups):
                previous = carry_attrs[gi]
                current = table[attr_id[i]]
                same_fwd[i] = current.same_forwarding(previous)
                equal_prev[i] = current == previous

        # The taxonomy transition table: one lookup through the
        # 16-entry code table (index bits ann/ever/reach/same_fwd).
        state_index = (
            (is_ann.view(np.uint8) << 3)
            | (ever_before.view(np.uint8) << 2)
            | (reach_before.view(np.uint8) << 1)
            | same_fwd.view(np.uint8)
        )
        sorted_codes = _CODE_LUT[state_index]
        # Policy fluctuation: an AADup whose non-forwarding attributes
        # changed (same forwarding tuple, different full bundle).
        sorted_policy = (sorted_codes == _AADUP_CODE) & ~equal_prev

        # Post-batch state per group (for the next batch).
        group_end = np.empty(n_groups, dtype=np.int64)
        group_end[:-1] = group_start[1:] - 1
        group_end[-1] = n - 1
        end_is_ann = is_ann[group_end].tolist()
        end_last_ann = last_ann[group_end].tolist()
        end_ever = (carry_ever | (last_ann[group_end] >= group_start)).tolist()
        table = columns.attrs
        for gi in range(n_groups):
            key = keys[gi]
            state = states.get(key)
            if state is None:
                state = states[key] = _CarryState()
            state.reachable = bool(end_is_ann[gi])
            state.ever_announced = bool(end_ever[gi])
            if end_last_ann[gi] >= group_start[gi]:
                state.last_attributes = table[attr_id[end_last_ann[gi]]]
            # else: no announcement in this batch — the carried
            # attributes (possibly None) stay in place.

        # Scatter back to batch (stream) order.
        codes[order] = sorted_codes
        policy[order] = sorted_policy
        return codes, policy

    # -- introspection (parity with StreamClassifier) ----------------------

    def is_reachable(self, peer_id: int, prefix: Prefix) -> bool:
        state = self._states.get((peer_id, prefix.network, prefix.length))
        return state.reachable if state else False

    def tracked_routes(self) -> int:
        """Number of (peer, prefix) pairs with state."""
        return len(self._states)

    def state_digest(self) -> str:
        """Digest of all per-route state, rendered through the same
        :func:`~repro.core.classifier.route_state_digest` as the
        streaming tier — equal classifier states give equal digests
        regardless of tier."""
        return route_state_digest(
            (
                key,
                state.reachable,
                state.ever_announced,
                state.last_attributes,
            )
            for key, state in self._states.items()
        )

    def reset(self) -> None:
        self._states.clear()


def classify_columns(
    columns: RecordColumns,
    classifier: Optional[ColumnClassifier] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Classify a whole batch; see :meth:`ColumnClassifier.classify`.

    Pass an existing ``classifier`` to continue from prior state (e.g.
    a campaign fed day by day), exactly like the streaming
    :func:`~repro.core.classifier.classify`.
    """
    classifier = classifier or ColumnClassifier()
    return classifier.classify(columns)
