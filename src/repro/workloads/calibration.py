"""Calibration constants: the numbers the paper reports.

Every magnitude the statistical generator targets and every expectation
the benchmark harness checks against lives here, with the paper section
it comes from.  These are the "paper column" of EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["PaperConstants", "PAPER"]


@dataclass(frozen=True, slots=True)
class PaperConstants:
    """Published magnitudes from Labovitz/Malan/Jahanian (1997)."""

    # -- the routing system (§4, citing the IPMA project) ------------------
    #: "default-free Internet routing tables currently contain only
    #: about 42,000 prefixes"
    total_prefixes: int = 42000
    #: "1500 unique ASPATHs interconnecting 1300 different autonomous
    #: systems"
    unique_as_paths: int = 1500
    total_ases: int = 1300
    #: "routing tables are dominated by six to eight ISPs"
    dominant_isps: Tuple[int, int] = (6, 8)

    # -- update volumes (§4) ----------------------------------------------------
    #: "between three and six million routing prefix updates each day"
    daily_updates: Tuple[int, int] = (3_000_000, 6_000_000)
    #: "125 updates per network on the Internet every day"
    updates_per_network_per_day: float = 125.0
    #: "bursts of updates at rates exceeding 100 prefix announcements a
    #: second"
    burst_rate_per_second: float = 100.0
    #: "the total number of updates exchanged at the Internet core has
    #: exceeded 30 million per day" (once; collection then failed)
    record_day_updates: int = 30_000_000
    #: "between 500,000 to 6 million pathological withdrawals per day
    #: ... at the Mae-East exchange point"
    daily_wwdups: Tuple[int, int] = (500_000, 6_000_000)
    #: "the majority (99 percent) of routing information is
    #: pathological"
    pathological_fraction: float = 0.99

    # -- Table 1 (February 1, 1997 at AADS) -----------------------------------
    #: ISP-I: "announced 259 prefixes, but transmitted over 2.4 million
    #: withdrawals for just 14,112 different prefixes"
    table1_extreme: Tuple[int, int, int] = (259, 2_479_023, 14_112)
    #: The stateless→stateful software comparison: "2 million
    #: withdrawals through their stateless BGP routers at AADS, the
    #: service provider advertised only 1905 withdrawals through their
    #: routers with the updated, stateful software at Mae-East."
    stateless_withdrawals: int = 2_000_000
    stateful_withdrawals: int = 1905

    # -- temporal structure (§5) ---------------------------------------------
    #: Figure 3 threshold: "raw update rate from 345 updates per 10
    #: minute aggregate in March to 770 updates in September"
    density_threshold_march: int = 345
    density_threshold_september: int = 770
    #: Figure 5: significant frequencies at 7 days and 24 hours.
    spectral_periods_hours: Tuple[float, float] = (24.0, 168.0)
    #: Figure 8: "the predominant frequencies ... captured by the
    #: thirty second and one minute bins ... account for half of the
    #: measured statistics"
    timer_bins_mass: float = 0.5
    timer_periods_seconds: Tuple[float, float] = (30.0, 60.0)
    #: "the persistence of most pathological BGP behaviors is under
    #: five minutes"
    pathology_persistence_seconds: float = 300.0

    # -- route stability (§6, Figure 9) ----------------------------------------
    #: "most (80 percent) of Internet routes exhibit a relatively high
    #: level of stability"
    stable_route_fraction: float = 0.8
    #: "between 3 and 10 percent of routes exhibit one or more WADiff
    #: per day"
    daily_wadiff_fraction: Tuple[float, float] = (0.03, 0.10)
    #: "between 5 and 20 percent exhibit one or more AADiff each day"
    daily_aadiff_fraction: Tuple[float, float] = (0.05, 0.20)
    #: "between 35 and 100 percent (50 percent median) of prefix+AS
    #: tuples are involved in at least one category of routing update"
    daily_any_fraction: Tuple[float, float] = (0.35, 1.00)
    daily_any_fraction_median: float = 0.50

    # -- multi-homing (§6, Figure 10) -----------------------------------------
    #: "more than 25 percent of networks are currently multi-homed"
    multi_homed_fraction: float = 0.25

    # -- Figure 7 ------------------------------------------------------------------
    #: "from 80 to 100 percent of the daily instability is contributed
    #: by Prefix+AS pairs announced less than fifty times"
    small_pair_mass: Tuple[float, float] = (0.80, 1.00)
    #: "from 20 to 90 percent (median of approximately 75%) of the
    #: AADiff events are contributed by routes that changed ten times
    #: or less"
    aadiff_small_mass_median: float = 0.75

    # -- router overload (§6) -----------------------------------------------------
    #: "sufficiently high rates of pathological updates (300 updates
    #: per second) are enough to crash a widely deployed, high-end
    #: model of Internet router"
    crash_rate_per_second: float = 300.0

    def expected_daily_updates_per_prefix(self) -> float:
        """Mid-range daily updates divided by table size (≈ 107-143;
        the paper rounds to 125)."""
        low, high = self.daily_updates
        return ((low + high) / 2) / self.total_prefixes


#: The singleton constants instance used across experiments.
PAPER = PaperConstants()


#: The relative category mix of the non-WWDup updates (Figure 2's bars;
#: AADup and WADup "consistently dominate").  Shares are of the
#: non-WWDup total; derived by reading Figure 2's relative magnitudes.
FIGURE2_CATEGORY_MIX: Dict[str, float] = {
    "AADUP": 0.38,
    "WADUP": 0.30,
    "AADIFF": 0.12,
    "WADIFF": 0.08,
    "UNCATEGORIZED": 0.12,
}
