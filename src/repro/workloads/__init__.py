"""Long-horizon workload synthesis: calibration constants, the diurnal
usage model, incident schedules, and the statistical trace generator."""

from .calibration import FIGURE2_CATEGORY_MIX, PAPER, PaperConstants
from .diurnal import DiurnalModel, day_of_week, hour_of_day, is_weekend
from .incidents import (
    BINS_PER_DAY,
    Incident,
    IncidentSchedule,
    default_campaign_schedule,
)
from .generator import (
    DayPlan,
    GeneratorTargets,
    PeerInfo,
    PeerPopulation,
    TraceGenerator,
)

__all__ = [
    "FIGURE2_CATEGORY_MIX",
    "PAPER",
    "PaperConstants",
    "DiurnalModel",
    "day_of_week",
    "hour_of_day",
    "is_weekend",
    "BINS_PER_DAY",
    "Incident",
    "IncidentSchedule",
    "default_campaign_schedule",
    "DayPlan",
    "GeneratorTargets",
    "PeerInfo",
    "PeerPopulation",
    "TraceGenerator",
]
