"""The statistical long-horizon trace generator (Tier B).

A nine-month, 3–6-million-updates-per-day campaign is out of reach for
a pure-Python event simulation, so the long-horizon figures are driven
by this generator.  It produces the *same* record stream the route
servers log, from an explicit statistical model whose knobs are the
paper's published magnitudes (:mod:`repro.workloads.calibration`) and
whose per-update mechanisms mirror the Tier-A simulation:

1. **Planning** (:meth:`TraceGenerator.plan_day`): for each day, every
   taxonomy category gets a *participation set* — which Prefix+AS
   pairs are active and how many events each contributes.  Pair counts
   follow a geometric distribution (Figure 7's "80–100% of instability
   from pairs seen <50 times"), participation fractions are drawn from
   Figure 9's ranges, per-peer allocation is independent of table
   share (Figure 6's non-correlation), and rare dominator days inject
   an Aug-11-style handful of pairs with hundreds of events.

2. **Aggregation**: bin-level counts (the Figure 2/3/4/5 inputs) are
   computed directly from the plan by spreading each category's total
   across the day's 144 ten-minute bins proportionally to the diurnal
   intensity and incident multipliers.  No records are materialized.

3. **Materialization** (:meth:`TraceGenerator.day_records`): when an
   analysis needs actual records (Figures 6, 7, 8; Table-1-style
   runs), active pairs are subsampled by ``pair_fraction`` — keeping
   each pair's episode structure intact, which preserves distribution
   shapes — and each pair's events become announce/withdraw record
   sequences whose in-episode spacing follows the 30/60-second timer
   mixture (Figure 8) and whose classifier labels match the planned
   category (the generator tracks the same per-route state the
   classifier does).
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left
from dataclasses import dataclass, field
from itertools import accumulate
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..bgp.attributes import AsPath, PathAttributes
from ..collector.record import UpdateKind, UpdateRecord
from ..collector.store import SECONDS_PER_DAY
from ..core.columns import (
    NO_ATTR,
    RECORD_DTYPE,
    AttributeTable,
    RecordColumns,
)
from ..core.taxonomy import UpdateCategory
from ..net.prefix import Prefix
from .calibration import PAPER, PaperConstants
from .diurnal import DiurnalModel
from .incidents import BINS_PER_DAY, IncidentSchedule, default_campaign_schedule

__all__ = [
    "PeerInfo",
    "PeerPopulation",
    "GeneratorTargets",
    "DayPlan",
    "TraceGenerator",
    "campaign_generator",
]

Pair = Tuple[Prefix, int]  # (prefix, peer ASN)

#: The plannable categories (PLAIN_WITHDRAW/NEW_ANNOUNCE arise as
#: side-effects of WA* sequences and bootstraps).
PLANNED_CATEGORIES = (
    UpdateCategory.AADIFF,
    UpdateCategory.WADIFF,
    UpdateCategory.AADUP,
    UpdateCategory.WADUP,
    UpdateCategory.WWDUP,
)


@dataclass(slots=True)
class PeerInfo:
    """One exchange-point peer: a provider AS with a table share and
    the Prefix+AS pairs it is responsible for."""

    asn: int
    peer_id: int
    table_share: float
    prefixes: List[Prefix] = field(default_factory=list)


class PeerPopulation:
    """The synthetic Mae-East peer set.

    Table shares follow the paper's structure: "six to eight ISPs"
    dominate the routing tables (clusters visible in Figure 6a), with a
    long tail of small peers.  Prefix counts are proportional to share.
    """

    __slots__ = ("peers", "by_asn", "all_pairs")

    def __init__(self, peers: List[PeerInfo]) -> None:
        self.peers = peers
        self.by_asn: Dict[int, PeerInfo] = {p.asn: p for p in peers}
        self.all_pairs: List[Pair] = [
            (prefix, peer.asn) for peer in peers for prefix in peer.prefixes
        ]

    @classmethod
    def synthesize(
        cls,
        n_peers: int = 30,
        total_prefixes: int = PAPER.total_prefixes,
        n_dominant: int = 7,
        seed: int = 0,
    ) -> "PeerPopulation":
        """Generate a population with realistic share structure."""
        rng = random.Random(seed)
        # Dominant ISPs take ~75% of the table; Zipf tail for the rest.
        weights = [rng.uniform(0.7, 1.3) * 1.0 for _ in range(n_dominant)]
        tail = [
            rng.uniform(0.7, 1.3) / (2.0 + i)
            for i in range(n_peers - n_dominant)
        ]
        raw = weights + tail
        total_weight = sum(raw)
        shares = [w / total_weight for w in raw]
        peers: List[PeerInfo] = []
        base_network = 4 << 24
        next_index = 0
        for i, share in enumerate(shares):
            count = max(1, int(round(share * total_prefixes)))
            prefixes = [
                Prefix((base_network + (next_index + j) * 256) & 0xFFFFFF00, 24)
                for j in range(count)
            ]
            next_index += count
            peers.append(
                PeerInfo(
                    asn=200 + i,
                    peer_id=(192 << 24) + i + 1,
                    table_share=share,
                    prefixes=prefixes,
                )
            )
        return cls(peers)

    @property
    def total_pairs(self) -> int:
        return len(self.all_pairs)


@dataclass(slots=True)
class GeneratorTargets:
    """The statistical knobs, defaulted to the paper's findings."""

    #: Daily fraction of pairs with ≥1 event, per category
    #: (Figure 9's ranges; WWDup/AADup tuned so the *union* lands on
    #: the 35–100% / median-50% "any update" figure).
    participation: Dict[UpdateCategory, Tuple[float, float]] = field(
        default_factory=lambda: {
            UpdateCategory.WADIFF: (0.03, 0.10),
            UpdateCategory.AADIFF: (0.05, 0.20),
            UpdateCategory.WADUP: (0.04, 0.12),
            UpdateCategory.AADUP: (0.10, 0.35),
            UpdateCategory.WWDUP: (0.10, 0.55),
        }
    )
    #: Geometric mean of per-pair event counts, per category.  WWDup
    #: pairs flap in long bursts (ISP-I withdrew 2.4M for 14k prefixes).
    mean_events_per_pair: Dict[UpdateCategory, float] = field(
        default_factory=lambda: {
            UpdateCategory.WADIFF: 2.5,
            UpdateCategory.AADIFF: 3.5,
            UpdateCategory.WADUP: 4.0,
            UpdateCategory.AADUP: 5.0,
            # WWDup pairs flap in long bursts: ISP-I's 2.4M withdrawals
            # over 14,112 prefixes is ~176 per pair in one day.
            UpdateCategory.WWDUP: 220.0,
        }
    )
    #: Probability a day is a "dominator day" (Figure 7's Aug 11).
    dominator_day_probability: float = 0.05
    #: Dominator pairs and their per-pair event count range.
    dominator_pairs: int = 7
    dominator_events: Tuple[int, int] = (600, 660)
    #: The Figure 8 inter-arrival mixture: mass on the 30 s timer, the
    #: 60 s (CSU / double-interval) line, and a broad background.
    spacing_30s_mass: float = 0.45
    spacing_60s_mass: float = 0.20
    #: Cap on any single pair's events per day (ISP-I's worst prefixes
    #: saw thousands of withdrawals in a day).
    max_events_per_pair: int = 3000
    #: Per-(day, peer) activity spread: σ of the lognormal multiplier
    #: on each peer's share of the day's active pairs.  Makes a peer's
    #: update share vary independently of its table share — Figure 6's
    #: non-correlation.
    peer_activity_sigma: float = 1.5
    #: Heavy-pair injection for the duplicate categories: probability
    #: an active AADup/WADup pair flaps hundreds of times (Figure 7's
    #: "5% to 10% of their events come from Prefix+AS pairs that occur
    #: 200 times or more").
    heavy_pair_probability: float = 0.004
    heavy_pair_events: Tuple[int, int] = (200, 700)
    #: Fraction of AADup announcements that change a *non-forwarding*
    #: attribute (MED/community) — the paper's *policy fluctuation*:
    #: same (Prefix, NextHop, ASPATH) tuple, different policy load.
    policy_fluctuation_fraction: float = 0.25


@dataclass(slots=True)
class DayPlan:
    """Everything decided about one generated day, before any records.

    ``participation`` maps categories to (pair, count) allocations —
    UNscaled, i.e. at the full population size.  ``bin_weights`` are
    the relative event densities of the 144 ten-minute bins (incident
    multipliers folded in); ``lost_bins`` mark collection outages.
    """

    day: int
    participation: Dict[UpdateCategory, List[Tuple[Pair, int]]]
    bin_weights: List[float]
    lost_bins: Set[int]
    #: Lazy cache for :meth:`materialization_weights`.
    _cum: Optional[Tuple[List[float], float]] = field(
        default=None, repr=False, compare=False
    )

    def materialization_weights(self) -> Tuple[List[float], float]:
        """The cumulative materialization bin weights (lost bins
        zeroed) and their total.

        The running sums are built with the same left-to-right float
        additions :meth:`TraceGenerator._sample_bin`'s scan performed,
        so a ``bisect`` over them lands on the *identical* bin for any
        draw — the cache turns per-episode sampling from an O(bins)
        list rebuild into an O(log bins) lookup without moving a
        single RNG draw.
        """
        cached = self._cum
        if cached is None:
            weights = [
                0.0 if i in self.lost_bins else w
                for i, w in enumerate(self.bin_weights)
            ]
            cached = (list(accumulate(weights)), sum(weights))
            self._cum = cached
        return cached

    def category_total(self, category: UpdateCategory) -> int:
        """Planned events of ``category`` (before outage losses)."""
        return sum(count for _, count in self.participation.get(category, ()))

    def affected_pairs(self, category: UpdateCategory) -> Set[Pair]:
        return {pair for pair, _ in self.participation.get(category, ())}

    def affected_pairs_any(self) -> Set[Pair]:
        result: Set[Pair] = set()
        for pairs in self.participation.values():
            result.update(pair for pair, _ in pairs)
        return result

    def bin_counts(self, category: UpdateCategory) -> List[int]:
        """The category's events spread over the day's bins.

        Deterministic largest-remainder apportionment over the bin
        weights, with lost bins zeroed (data never collected).
        """
        total = self.category_total(category)
        weights = [
            0.0 if i in self.lost_bins else w
            for i, w in enumerate(self.bin_weights)
        ]
        weight_sum = sum(weights)
        if weight_sum <= 0 or total == 0:
            return [0] * len(weights)
        raw = [total * w / weight_sum for w in weights]
        counts = [int(r) for r in raw]
        remainder = total - sum(counts)
        fractional = sorted(
            range(len(raw)), key=lambda i: raw[i] - counts[i], reverse=True
        )
        for i in fractional[:remainder]:
            counts[i] += 1
        return counts


class _PairState:
    """Generator-side mirror of the classifier's per-route state."""

    __slots__ = ("reachable", "variant", "ever_announced", "med")

    def __init__(self) -> None:
        self.reachable = False
        self.variant = 0
        self.ever_announced = False
        self.med: Optional[int] = None


class _RecordSink:
    """Materialization sink building :class:`UpdateRecord` objects
    (the streaming tier's representation)."""

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: List[UpdateRecord] = []

    def announce(self, time, peer_id, asn, prefix, attrs) -> None:
        self.records.append(
            UpdateRecord(
                time, peer_id, asn, prefix, UpdateKind.ANNOUNCE, attrs
            )
        )

    def withdraw(self, time, peer_id, asn, prefix) -> None:
        self.records.append(
            UpdateRecord(time, peer_id, asn, prefix, UpdateKind.WITHDRAW)
        )

    def finish(self) -> List[UpdateRecord]:
        self.records.sort(key=lambda r: r.time)
        return self.records


class _ColumnSink:
    """Materialization sink appending primitive columns — no
    per-record dataclasses are ever constructed.

    Two ingest paths share one emission stream: scalar ``announce`` /
    ``withdraw`` calls append to Python lists, while the vectorized
    WWDup tier hands over whole :data:`RECORD_DTYPE` segments via
    :meth:`withdraw_block`.  Because WWDup is the *last* planned
    category, every scalar event precedes every segment in emission
    order, so ``finish``'s stable time sort resolves equal timestamps
    exactly as the all-scalar stream did.
    """

    __slots__ = ("times", "peer_ids", "asns", "nets", "plens", "kinds",
                 "attr_ids", "table", "segments")

    def __init__(self, table) -> None:
        self.times: List[float] = []
        self.peer_ids: List[int] = []
        self.asns: List[int] = []
        self.nets: List[int] = []
        self.plens: List[int] = []
        self.kinds: List[int] = []
        self.attr_ids: List[int] = []
        self.table = table
        self.segments: List[np.ndarray] = []

    def announce(self, time, peer_id, asn, prefix, attrs) -> None:
        self._push(time, peer_id, asn, prefix,
                   int(UpdateKind.ANNOUNCE), self.table.intern(attrs))

    def withdraw(self, time, peer_id, asn, prefix) -> None:
        self._push(time, peer_id, asn, prefix,
                   int(UpdateKind.WITHDRAW), int(NO_ATTR))

    def _push(self, time, peer_id, asn, prefix, kind, attr_id) -> None:
        self.times.append(time)
        self.peer_ids.append(peer_id)
        self.asns.append(asn)
        self.nets.append(prefix.network)
        self.plens.append(prefix.length)
        self.kinds.append(kind)
        self.attr_ids.append(attr_id)

    def withdraw_block(self, times, peer_ids, asns, nets, plens) -> None:
        """Append a batch of withdrawals already in emission order."""
        segment = np.empty(len(times), dtype=RECORD_DTYPE)
        segment["time"] = times
        segment["peer_id"] = peer_ids
        segment["peer_asn"] = asns
        segment["net"] = nets
        segment["plen"] = plens
        segment["kind"] = int(UpdateKind.WITHDRAW)
        segment["attr_id"] = int(NO_ATTR)
        self.segments.append(segment)

    def finish(self):
        scalar = np.empty(len(self.times), dtype=RECORD_DTYPE)
        scalar["time"] = self.times
        scalar["peer_id"] = self.peer_ids
        scalar["peer_asn"] = self.asns
        scalar["net"] = self.nets
        scalar["plen"] = self.plens
        scalar["kind"] = self.kinds
        scalar["attr_id"] = self.attr_ids
        # Stable time sort matches the record tier's list.sort().
        return RecordColumns.from_segments(
            [scalar, *self.segments], self.table
        )


#: Dense-slab cell budget for the vectorized episode expansion: a
#: (rows × max_len) float64 scratch block stays ≲ 32 MiB.
_SLAB_CELLS = 1 << 22


def _slab_spans(lengths: np.ndarray, start: int, end: int):
    """Split rows ``[start, end)`` into spans whose dense
    ``rows × max(length)`` slab fits the cell budget.

    Episode lengths are geometric (mean 3) but a single row may run to
    thousands of events; recursive halving isolates such outliers so
    the padded expansion never allocates rows × global-max cells.
    Yields ``(start, end, width)`` in row order — order preservation is
    what keeps the flattened emission stream identical.
    """
    width = int(lengths[start:end].max())
    if (end - start) * width > _SLAB_CELLS and end - start > 1:
        mid = (start + end) // 2
        yield from _slab_spans(lengths, start, mid)
        yield from _slab_spans(lengths, mid, end)
    else:
        yield start, end, width


class TraceGenerator:
    """See module docstring."""

    __slots__ = (
        "population",
        "diurnal",
        "schedule",
        "targets",
        "constants",
        "seed",
        "_states",
        "_attr_cache",
    )

    def __init__(
        self,
        population: Optional[PeerPopulation] = None,
        diurnal: Optional[DiurnalModel] = None,
        schedule: Optional[IncidentSchedule] = None,
        targets: Optional[GeneratorTargets] = None,
        constants: PaperConstants = PAPER,
        seed: int = 0,
    ) -> None:
        self.population = population or PeerPopulation.synthesize(seed=seed)
        self.diurnal = diurnal or DiurnalModel()
        self.schedule = schedule or default_campaign_schedule(seed=seed)
        self.targets = targets or GeneratorTargets()
        self.constants = constants
        self.seed = seed
        self._states: Dict[Pair, _PairState] = {}
        self._attr_cache: Dict[
            Tuple[Pair, int, Optional[int]], PathAttributes
        ] = {}

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def _day_rng(self, day: int, salt: int = 0) -> random.Random:
        return random.Random((self.seed * 1_000_003 + day) * 31 + salt)

    def plan_day(self, day: int) -> DayPlan:
        """Deterministically plan one day (independent of other days)."""
        rng = self._day_rng(day)
        diurnal_weights = self.diurnal.bin_weights(day, BINS_PER_DAY)
        multipliers = [
            self.schedule.multiplier(day, i) for i in range(BINS_PER_DAY)
        ]
        weights = [w * m for w, m in zip(diurnal_weights, multipliers)]
        lost = self.schedule.lost_bins(day)
        # Two separate day-level factors: the diurnal level (weekday
        # factor + growth trend) scales both how many routes flap and
        # how much; the incident level (upgrades, storms) scales how
        # hard the affected routes flap — a maintenance spike touches
        # few extra routes but hammers them.
        diurnal_level = sum(diurnal_weights) / BINS_PER_DAY
        incident_level = sum(multipliers) / BINS_PER_DAY
        participation: Dict[UpdateCategory, List[Tuple[Pair, int]]] = {}
        pairs = self.population.all_pairs
        # Per-(day, peer) activity: which provider's customers are
        # having a bad day is independent of how big the provider is.
        sigma = self.targets.peer_activity_sigma
        peer_activity = {
            peer.asn: math.exp(rng.gauss(0.0, sigma))
            for peer in self.population.peers
        }
        for category in PLANNED_CATEGORIES:
            low, high = self.targets.participation[category]
            # Lognormal scatter around the geometric midpoint, scaled
            # by the diurnal level: the weekday/weekend cycle moves the
            # mean (the paper's usage correlation) while day-to-day
            # noise stays moderate, so the weekly spectral line is not
            # drowned by white noise.
            mid = math.sqrt(low * high)
            fraction = (
                mid
                * math.exp(rng.gauss(0.0, 0.18))
                * min(1.8, max(0.35, diurnal_level))
            )
            fraction = min(max(fraction, 0.7 * low), 1.2 * high, 0.95)
            n_active = int(fraction * len(pairs))
            active = self._allocate_active_pairs(
                rng, n_active, peer_activity
            )
            base_mean = self.targets.mean_events_per_pair[category]
            base_mean *= min(1.6, max(0.6, diurnal_level))
            base_mean *= min(10.0, incident_level)
            base_mean = max(1.0, base_mean)
            allocation: List[Tuple[Pair, int]] = []
            for pair in active:
                count = min(
                    self._geometric(rng, 1.0 / base_mean),
                    self.targets.max_events_per_pair,
                )
                allocation.append((pair, count))
            # Heavy flappers for the duplicate categories (Figure 7's
            # 200+-event pairs).  Their home peer is chosen by *who is
            # having a bad day* (activity), not by size — a heavy pair
            # on a small ISP is exactly the paper's observation.
            if category in (UpdateCategory.AADUP, UpdateCategory.WADUP):
                n_heavy = int(
                    round(self.targets.heavy_pair_probability * len(active))
                ) or (1 if rng.random()
                      < self.targets.heavy_pair_probability * len(active)
                      else 0)
                if n_heavy:
                    peers = self.population.peers
                    activity_weights = [peer_activity[p.asn] for p in peers]
                    for _ in range(n_heavy):
                        peer = rng.choices(
                            peers, weights=activity_weights, k=1
                        )[0]
                        prefix = rng.choice(peer.prefixes)
                        allocation.append(
                            (
                                (prefix, peer.asn),
                                rng.randint(*self.targets.heavy_pair_events),
                            )
                        )
            participation[category] = allocation
        # Dominator days: a handful of pairs with hundreds of AADiffs
        # (and matching AADups, zero withdrawals) from one peer.
        if rng.random() < self.targets.dominator_day_probability:
            peer = rng.choice(self.population.peers)
            dominators = rng.sample(
                peer.prefixes, min(self.targets.dominator_pairs, len(peer.prefixes))
            )
            lo, hi = self.targets.dominator_events
            for prefix in dominators:
                count = rng.randint(lo, hi)
                pair = (prefix, peer.asn)
                participation[UpdateCategory.AADIFF].append((pair, count))
                participation[UpdateCategory.AADUP].append((pair, count))
        return DayPlan(
            day=day,
            participation=participation,
            bin_weights=weights,
            lost_bins=lost,
        )

    def _allocate_active_pairs(
        self,
        rng: random.Random,
        n_active: int,
        peer_activity: Dict[int, float],
    ) -> List[Pair]:
        """Choose today's active pairs, peer-weighted by activity.

        Each peer's slice of the active set is proportional to
        ``prefix_count × activity``: a small ISP having a bad day can
        carry a large share of the day's flapping routes, which is how
        Figure 6's update shares decouple from table shares.
        """
        if n_active <= 0:
            return []
        peers = self.population.peers
        weights = [
            len(peer.prefixes) * peer_activity[peer.asn] for peer in peers
        ]
        total_weight = sum(weights) or 1.0
        active: List[Pair] = []
        remainder = n_active
        # Proportional allocation with per-peer caps; any overflow from
        # capped peers is redistributed in a second pass.
        quotas = []
        for peer, weight in zip(peers, weights):
            quota = min(
                int(round(n_active * weight / total_weight)),
                len(peer.prefixes),
            )
            quotas.append(quota)
        shortfall = n_active - sum(quotas)
        if shortfall > 0:
            for i, peer in enumerate(peers):
                room = len(peer.prefixes) - quotas[i]
                if room <= 0:
                    continue
                extra = min(room, shortfall)
                quotas[i] += extra
                shortfall -= extra
                if shortfall == 0:
                    break
        for peer, quota in zip(peers, quotas):
            if quota <= 0:
                continue
            if remainder <= 0:
                break
            quota = min(quota, remainder)
            remainder -= quota
            for prefix in rng.sample(peer.prefixes, quota):
                active.append((prefix, peer.asn))
        return active

    @staticmethod
    def _geometric(rng: random.Random, p: float) -> int:
        """Geometric variate ≥ 1 with success probability ``p``."""
        if p >= 1.0:
            return 1
        u = rng.random()
        return max(1, int(math.ceil(math.log(1.0 - u) / math.log(1.0 - p))))

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------

    def day_records(
        self,
        day: int,
        pair_fraction: float = 0.05,
        plan: Optional[DayPlan] = None,
        categories: Optional[Sequence[UpdateCategory]] = None,
    ) -> List[UpdateRecord]:
        """Materialize one day's records for a subsample of its pairs.

        ``pair_fraction`` subsamples *pairs*, not events: surviving
        pairs keep their full per-day episode structure, so per-pair
        count distributions (Figure 7) and inter-arrival spectra
        (Figure 8) scale without bias in expectation — but heavy-tail
        pairs are rare, so for tail-sensitive analyses prefer a smaller
        population at ``pair_fraction=1.0`` over heavy subsampling.
        ``categories`` restricts materialization (e.g. the fine-grained
        figures never need the WWDup flood).
        """
        sink = _RecordSink()
        self._materialize_day(day, pair_fraction, plan, categories, sink)
        return sink.finish()

    def day_columns(
        self,
        day: int,
        pair_fraction: float = 0.05,
        plan: Optional[DayPlan] = None,
        categories: Optional[Sequence[UpdateCategory]] = None,
        attrs: Optional[AttributeTable] = None,
    ) -> RecordColumns:
        """Columnar :meth:`day_records`: the identical record stream
        (same RNG draws, same ordering) materialized directly into a
        :class:`~repro.core.columns.RecordColumns` batch — no
        per-record dataclasses are built.  Pass a shared ``attrs``
        table to keep attribute ids consistent across a campaign's
        days."""
        sink = _ColumnSink(attrs if attrs is not None else AttributeTable())
        self._materialize_day(day, pair_fraction, plan, categories, sink)
        return sink.finish()

    def _materialize_day(
        self,
        day: int,
        pair_fraction: float,
        plan: Optional[DayPlan],
        categories: Optional[Sequence[UpdateCategory]],
        sink,
        vectorize: bool = True,
    ) -> None:
        """Drive ``sink`` through one day's emission stream.

        WWDup — the flood category, ~95% of a full day's records — is
        routed through the vectorized tier when the sink can accept
        whole segments; every other category (and any plain sink) runs
        the scalar reference loop.  Both paths consume the *same*
        ``rng`` draws in the *same* order, so the split is invisible in
        the output.  ``vectorize=False`` forces the all-scalar path
        (the parity tests diff the two).
        """
        plan = plan or self.plan_day(day)
        rng = self._day_rng(day, salt=1)
        wanted = tuple(categories) if categories else PLANNED_CATEGORIES
        for category in PLANNED_CATEGORIES:
            if category not in wanted:
                continue
            if (
                vectorize
                and category is UpdateCategory.WWDUP
                and isinstance(sink, _ColumnSink)
            ):
                self._emit_wwdup_columns(
                    rng, plan, plan.participation[category],
                    pair_fraction, sink,
                )
                continue
            for pair, count in plan.participation[category]:
                if pair_fraction < 1.0 and rng.random() > pair_fraction:
                    continue
                self._emit_pair_day(rng, plan, category, pair, count, sink)

    def stream_records(
        self,
        days: Sequence[int],
        pair_fraction: float = 0.05,
        categories: Optional[Sequence[UpdateCategory]] = None,
    ) -> Iterator[UpdateRecord]:
        """Materialized records over multiple days, time-ordered."""
        for day in days:
            yield from self.day_records(
                day, pair_fraction, categories=categories
            )

    # -- per-pair emission -----------------------------------------------------

    def _attrs(
        self, pair: Pair, variant: int, med: Optional[int] = None
    ) -> PathAttributes:
        """Deterministic attribute variants for a pair.

        Variant 0 is the primary path; variant 1 a longer alternate
        (different ASPATH → different forwarding tuple).  ``med`` sets
        a non-forwarding attribute: two announcements differing only in
        it share the forwarding tuple (AADup) but constitute *policy
        fluctuation*.

        Cached per (pair, variant, med): a pair re-announces the same
        bundle thousands of times a day, and rebuilding the frozen
        dataclass dominated the materialization profile.
        """
        key = (pair, variant, med)
        attrs = self._attr_cache.get(key)
        if attrs is not None:
            return attrs
        prefix, asn = pair
        # DET004 audit: `pair` is (Prefix, int) and Prefix is an int
        # tuple (network, length) — hash() of ints and int tuples is
        # value-based, not PYTHONHASHSEED-salted, so these origins are
        # replay-stable.  tests/test_generator_parity.py proves it
        # across hash seeds.
        origin = 1000 + (hash(pair) % 4000)
        if variant == 0:
            path = AsPath((asn, origin))
        else:
            transit = 5000 + (hash(pair) % 1000)
            path = AsPath((asn, transit, origin))
        peer = self.population.by_asn[asn]
        attrs = PathAttributes(as_path=path, next_hop=peer.peer_id, med=med)
        self._attr_cache[key] = attrs
        return attrs

    def _state(self, pair: Pair) -> _PairState:
        state = self._states.get(pair)
        if state is None:
            state = self._states[pair] = _PairState()
        return state

    def _sample_bin(self, rng: random.Random, plan: DayPlan) -> Optional[int]:
        """A bin index drawn ∝ bin weight (lost bins excluded).

        ``bisect_left`` over the plan's cached running sums returns the
        first index whose cumulative weight reaches the draw — the same
        bin the original linear scan (``acc += w; x <= acc``) stopped
        at, for the same single ``rng.random()`` draw.
        """
        cum, total = plan.materialization_weights()
        if total <= 0:
            return None
        x = rng.random() * total
        index = bisect_left(cum, x)
        return index if index < len(cum) else len(cum) - 1

    def _episode_period(self, rng: random.Random) -> float:
        """An episode's characteristic period: the Figure 8 mixture.

        An oscillating route repeats with ONE period — the 30-second
        update timer, the ~60-second CSU cycle, or some exogenous
        rhythm — so the period is drawn once per episode and all the
        episode's events follow it.  Drawing i.i.d. per gap would
        convolve the mixture with itself and smear the 30 s/1 m lines
        the paper measured.
        """
        u = rng.random()
        t = self.targets
        if u < t.spacing_30s_mass:
            return rng.uniform(29.5, 30.5)
        if u < t.spacing_30s_mass + t.spacing_60s_mass:
            return rng.uniform(58.0, 62.0)
        # Broad background: log-uniform from 2 s to 8 h.
        return math.exp(rng.uniform(math.log(2.0), math.log(8 * 3600.0)))

    def _emit_pair_day(
        self,
        rng: random.Random,
        plan: DayPlan,
        category: UpdateCategory,
        pair: Pair,
        count: int,
        sink,
    ) -> None:
        """Emit into ``sink`` the record sequence giving ``pair``
        exactly ``count`` events of ``category`` today (plus the
        uncategorized W/bootstrap records the sequences require)."""
        prefix, asn = pair
        peer = self.population.by_asn[asn]
        state = self._state(pair)
        day_start = plan.day * SECONDS_PER_DAY
        peer_id = peer.peer_id

        def announce(
            t: float, variant: int, med: Optional[int] = None
        ) -> None:
            sink.announce(
                t, peer_id, asn, prefix, self._attrs(pair, variant, med=med)
            )
            state.reachable = True
            state.ever_announced = True
            state.variant = variant
            state.med = med

        def withdraw(t: float) -> None:
            sink.withdraw(t, peer_id, asn, prefix)
            state.reachable = False

        # Split the count into episodes of a few events each.  Each
        # episode has ONE characteristic period: consecutive events of
        # the category repeat every ``period`` seconds, and the W half
        # of a WA pair precedes its A by a short outage ``micro_gap``
        # (a flap's down-time is seconds; the *repeat rate* is what the
        # timers quantize).
        day_end = day_start + SECONDS_PER_DAY
        remaining = count
        while remaining > 0:
            episode = min(remaining, self._geometric(rng, 1.0 / 3.0))
            remaining -= episode
            bin_index = self._sample_bin(rng, plan)
            if bin_index is None:
                return  # whole day lost
            t = day_start + (bin_index + rng.random()) * (
                SECONDS_PER_DAY / BINS_PER_DAY
            )
            period = self._episode_period(rng)
            micro_gap = min(rng.uniform(0.5, 4.0), period / 2.0)
            for _ in range(episode):
                if t >= day_end:
                    # The episode ran past midnight; the tail is
                    # dropped (the paper's days are hard boundaries).
                    break
                if category is UpdateCategory.AADUP:
                    if not state.reachable:
                        announce(t, state.variant)  # bootstrap (uncat/WA*)
                        t += period
                        if t >= day_end:
                            break
                    if (
                        rng.random()
                        < self.targets.policy_fluctuation_fraction
                    ):
                        # Policy fluctuation: same forwarding tuple,
                        # different MED.
                        new_med = 20 if state.med != 20 else 40
                        announce(t, state.variant, med=new_med)
                    else:
                        announce(t, state.variant, med=state.med)
                elif category is UpdateCategory.AADIFF:
                    if not state.reachable:
                        announce(t, state.variant)
                        t += period
                        if t >= day_end:
                            break
                    announce(t, 1 - state.variant)
                elif category is UpdateCategory.WADUP:
                    if state.reachable:
                        withdraw(t - micro_gap if t - micro_gap > day_start
                                 else t)
                    announce(t, state.variant)
                elif category is UpdateCategory.WADIFF:
                    if not state.ever_announced:
                        # First contact bootstraps reachability so the
                        # withdrawal below is PLAIN, not the category.
                        announce(t, state.variant)
                        t += period
                        if t >= day_end:
                            break
                    if state.reachable:
                        withdraw(t - micro_gap if t - micro_gap > day_start
                                 else t)
                    announce(t, 1 - state.variant)
                else:  # WWDUP: repeat withdrawals while unreachable
                    if state.reachable:
                        withdraw(t - micro_gap if t - micro_gap > day_start
                                 else t)  # PLAIN first
                    withdraw(t)
                t += period

    def _emit_wwdup_columns(
        self,
        rng: random.Random,
        plan: DayPlan,
        allocation: List[Tuple[Pair, int]],
        pair_fraction: float,
        sink: "_ColumnSink",
    ) -> None:
        """WWDup, vectorized: scalar draw-faithful episode *planning*
        followed by one batched timestamp expansion.

        The planning loop consumes exactly the ``rng.random()`` draws
        :meth:`_emit_pair_day` would (subsample, geometric episode
        length, bin, in-bin offset, period, micro-gap — six per
        episode) and records each episode as a ``(t0, period, length)``
        row; a pair entering the day reachable contributes a length-1
        pseudo-episode for its leading PLAIN withdrawal.  Rows then
        expand to timestamps with ``np.add.accumulate`` — whose
        sequential partial sums bit-exactly replicate the scalar
        ``t += period`` walk — and a prefix mask reproduces the
        midnight cut-off (``t >= day_end`` breaks before emitting, and
        the accumulated times are strictly increasing).  The masked
        C-order flatten is the scalar emission order, row by row.
        """
        cum, total = plan.materialization_weights()
        subsample = pair_fraction < 1.0
        rand = rng.random
        if total <= 0:
            # Whole day lost: the scalar path still consumes the
            # subsample draw and one geometric draw per surviving pair
            # (the bin sampler bails before drawing), creates the pair
            # state, and emits nothing.
            for pair, count in allocation:
                if subsample and rand() > pair_fraction:
                    continue
                self._state(pair)
                if count > 0:
                    self._geometric(rng, 1.0 / 3.0)
            return

        targets = self.targets
        day_start = plan.day * SECONDS_PER_DAY
        day_end = day_start + SECONDS_PER_DAY
        bin_width = SECONDS_PER_DAY / BINS_PER_DAY
        mass_30 = targets.spacing_30s_mass
        mass_60 = mass_30 + targets.spacing_60s_mass
        log_lo = math.log(2.0)
        log_span = math.log(8 * 3600.0) - log_lo
        geo_denom = math.log(1.0 - (1.0 / 3.0))
        n_bins = len(cum)
        by_asn = self.population.by_asn
        ceil, log, exp = math.ceil, math.log, math.exp

        # Episode rows (+ lead pseudo-rows), in emission order.
        t0s: List[float] = []
        periods: List[float] = []
        lengths: List[int] = []
        # One entry per emitting pair block; rows map to blocks.
        block_rows: List[int] = []
        block_peer: List[int] = []
        block_asn: List[int] = []
        block_net: List[int] = []
        block_plen: List[int] = []
        push_t0 = t0s.append
        push_period = periods.append
        push_length = lengths.append

        for pair, count in allocation:
            if subsample and rand() > pair_fraction:
                continue
            state = self._state(pair)
            rows_before = len(t0s)
            lead = state.reachable
            remaining = count
            while remaining > 0:
                # Inlined _geometric(rng, 1/3): episode burst length.
                episode = ceil(log(1.0 - rand()) / geo_denom)
                if episode < 1:
                    episode = 1
                if episode > remaining:
                    episode = remaining
                remaining -= episode
                # Inlined _sample_bin over the cached running sums.
                bin_index = bisect_left(cum, rand() * total)
                if bin_index == n_bins:
                    bin_index = n_bins - 1
                t0 = day_start + (bin_index + rand()) * bin_width
                # Inlined _episode_period: the Figure 8 mixture.
                u = rand()
                if u < mass_30:
                    period = 29.5 + 1.0 * rand()
                elif u < mass_60:
                    period = 58.0 + 4.0 * rand()
                else:
                    period = exp(log_lo + log_span * rand())
                if lead:
                    # The pair entered the day reachable: its first
                    # event is preceded by a PLAIN withdrawal at the
                    # clamped micro-gap offset (the first event always
                    # lands before midnight, so it always emits).
                    lead = False
                    micro_gap = 0.5 + 3.5 * rand()
                    half = period / 2.0
                    if micro_gap > half:
                        micro_gap = half
                    t_lead = t0 - micro_gap
                    push_t0(t_lead if t_lead > day_start else t0)
                    push_period(0.0)
                    push_length(1)
                else:
                    # The micro-gap draw happens every episode in the
                    # scalar loop; its value only matters on the lead.
                    rand()
                push_t0(t0)
                push_period(period)
                push_length(episode)
            rows = len(t0s) - rows_before
            if rows:
                state.reachable = False
                prefix, asn = pair
                block_rows.append(rows)
                block_peer.append(by_asn[asn].peer_id)
                block_asn.append(asn)
                block_net.append(prefix.network)
                block_plen.append(prefix.length)

        n_rows = len(t0s)
        if not n_rows:
            return
        t0_arr = np.asarray(t0s, dtype=np.float64)
        period_arr = np.asarray(periods, dtype=np.float64)
        length_arr = np.asarray(lengths, dtype=np.int64)
        times_parts: List[np.ndarray] = []
        count_parts: List[np.ndarray] = []
        for start, end, width in _slab_spans(length_arr, 0, n_rows):
            slab = np.empty((end - start, width), dtype=np.float64)
            slab[:, 0] = t0_arr[start:end]
            if width > 1:
                slab[:, 1:] = period_arr[start:end, None]
            acc = np.add.accumulate(slab, axis=1)
            mask = (np.arange(width) < length_arr[start:end, None]) & (
                acc < day_end
            )
            times_parts.append(acc[mask])
            count_parts.append(np.count_nonzero(mask, axis=1))
        times = (
            times_parts[0]
            if len(times_parts) == 1
            else np.concatenate(times_parts)
        )
        per_row = (
            count_parts[0]
            if len(count_parts) == 1
            else np.concatenate(count_parts)
        )
        # Row -> owning block -> per-event metadata, by two repeats.
        row_block = np.repeat(
            np.arange(len(block_rows)),
            np.asarray(block_rows, dtype=np.int64),
        )
        owner = np.repeat(row_block, per_row)
        sink.withdraw_block(
            times,
            np.asarray(block_peer, dtype=np.uint32)[owner],
            np.asarray(block_asn, dtype=np.uint32)[owner],
            np.asarray(block_net, dtype=np.uint32)[owner],
            np.asarray(block_plen, dtype=np.uint8)[owner],
        )

    # ------------------------------------------------------------------
    # aggregate tier conveniences
    # ------------------------------------------------------------------

    def campaign_bin_series(
        self,
        days: Sequence[int],
        categories: Sequence[UpdateCategory],
    ) -> Dict[UpdateCategory, List[int]]:
        """Concatenated per-bin counts over ``days`` per category —
        the Figure 3/4/5 input, no records materialized."""
        series: Dict[UpdateCategory, List[int]] = {c: [] for c in categories}
        for day in days:
            plan = self.plan_day(day)
            for category in categories:
                series[category].extend(plan.bin_counts(category))
        return series

    def reset_state(self) -> None:
        """Forget per-pair state (fresh campaign)."""
        self._states.clear()

    def state_payload(self) -> dict:
        """Checkpoint the cross-day per-pair state as plain data.

        The campaign's spill chunks store this in their footer so a
        resumed shard can load finished days from disk and *continue
        generating* from the exact state the original run had — the
        generator carries reachability/variant/MED memory across days,
        so skipping a day's RNG is only sound with its end state
        restored.  Columnar and key-sorted, so the payload is canonical
        (independent of dict insertion order) and compact.
        """
        items = sorted(
            self._states.items(),
            key=lambda kv: (kv[0][0].network, kv[0][0].length, kv[0][1]),
        )
        nets: List[int] = []
        plens: List[int] = []
        asns: List[int] = []
        flags: List[int] = []
        meds: List[int] = []
        for (prefix, asn), state in items:
            nets.append(prefix.network)
            plens.append(prefix.length)
            asns.append(asn)
            flags.append(
                int(state.reachable)
                | int(state.ever_announced) << 1
                | int(state.variant) << 2
                | int(state.med is not None) << 3
            )
            if state.med is not None:
                meds.append(state.med)
        return {
            "net": nets, "plen": plens, "asn": asns,
            "flags": flags, "med": meds,
        }

    def restore_state(self, payload: dict) -> None:
        """Replace per-pair state with a :meth:`state_payload`
        checkpoint (the inverse; prior state is discarded)."""
        states: Dict[Pair, _PairState] = {}
        meds = iter(payload["med"])
        for net, plen, asn, flags in zip(
            payload["net"], payload["plen"], payload["asn"], payload["flags"]
        ):
            state = _PairState()
            state.reachable = bool(flags & 1)
            state.ever_announced = bool(flags & 2)
            state.variant = (flags >> 2) & 1
            state.med = next(meds) if flags & 8 else None
            states[(Prefix(int(net), int(plen)), int(asn))] = state
        self._states = states


def campaign_generator(
    n_peers: int,
    total_prefixes: int,
    population_seed: int,
    generator_seed: Optional[int] = None,
) -> TraceGenerator:
    """A generator for one campaign shard.

    The peer population is synthesized from ``population_seed`` alone,
    so every shard (and every exchange) of a campaign sees the same
    providers and table shares; ``generator_seed`` (default: the
    population seed) drives the day plans and record draws, which is
    how per-exchange streams differ over one shared population.  Two
    calls with equal arguments build generators that produce identical
    streams — the determinism the sharded campaign runner rests on.
    """
    population = PeerPopulation.synthesize(
        n_peers=n_peers, total_prefixes=total_prefixes, seed=population_seed
    )
    seed = population_seed if generator_seed is None else generator_seed
    return TraceGenerator(population=population, seed=seed)
