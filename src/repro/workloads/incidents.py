"""Incident scheduling: the discrete events that punctuate the campaign.

Figure 3's striking structures are incidents, not background process:
the bold vertical lines of "a major ISP's infrastructure upgrade" at
the end of May, the horizontal 10am maintenance line, Saturday's
"temporally localized instability" spikes, and the white squares of
collection outages (including the day the collector died after 30M
updates).  :class:`IncidentSchedule` composes these into per-bin
multipliers and lost-bin sets the generator applies on top of the
diurnal model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..collector.store import SECONDS_PER_DAY

__all__ = ["Incident", "IncidentSchedule", "default_campaign_schedule"]

BINS_PER_DAY = 144  # ten-minute aggregation, the paper's Figure 3 unit


@dataclass(frozen=True, slots=True)
class Incident:
    """One scheduled disturbance.

    ``first_day``..``last_day`` inclusive; within those days the bins in
    ``[start_bin, end_bin)`` have their update counts multiplied by
    ``magnitude``.  A full-day incident uses (0, 144).
    """

    name: str
    first_day: int
    last_day: int
    magnitude: float
    start_bin: int = 0
    end_bin: int = BINS_PER_DAY

    def covers(self, day: int, bin_index: int) -> bool:
        return (
            self.first_day <= day <= self.last_day
            and self.start_bin <= bin_index < self.end_bin
        )


class IncidentSchedule:
    """The campaign's incidents plus collection outages.

    ``multiplier(day, bin)`` is the product of all covering incidents;
    ``lost_bins(day)`` the set of ten-minute bins with no data.
    """

    __slots__ = ("incidents", "_lost")

    def __init__(
        self,
        incidents: Iterable[Incident] = (),
        lost: Optional[Dict[int, Set[int]]] = None,
    ) -> None:
        self.incidents: List[Incident] = list(incidents)
        self._lost: Dict[int, Set[int]] = dict(lost or {})

    def add(self, incident: Incident) -> "IncidentSchedule":
        self.incidents.append(incident)
        return self

    def mark_lost_day(self, day: int) -> "IncidentSchedule":
        self._lost[day] = set(range(BINS_PER_DAY))
        return self

    def mark_lost_bins(self, day: int, bins: Iterable[int]) -> "IncidentSchedule":
        self._lost.setdefault(day, set()).update(bins)
        return self

    def multiplier(self, day: int, bin_index: int) -> float:
        factor = 1.0
        for incident in self.incidents:
            if incident.covers(day, bin_index):
                factor *= incident.magnitude
        return factor

    def lost_bins(self, day: int) -> Set[int]:
        return set(self._lost.get(day, ()))

    def is_lost(self, day: int, bin_index: int) -> bool:
        return bin_index in self._lost.get(day, ())

    def coverage(self, day: int) -> float:
        return 1.0 - len(self._lost.get(day, ())) / BINS_PER_DAY

    def incident_days(self) -> List[int]:
        days: Set[int] = set()
        for incident in self.incidents:
            days.update(range(incident.first_day, incident.last_day + 1))
        return sorted(days)


def default_campaign_schedule(
    n_days: int = 214,
    seed: int = 0,
    upgrade_day: int = 88,
    maintenance_bin: int = 60,
) -> IncidentSchedule:
    """The canonical seven-month (March–September 1996 analogue)
    schedule reproduced from Figure 3's visible structure.

    - Days are counted from March 1 (day 0); the campaign's 214 days
      reach the end of September.
    - The major ISP infrastructure upgrade: bold full-day vertical
      lines at the end of May / beginning of June (default day 88 ≈
      May 28), magnitude ~8× for four days.
    - A daily 10:00am maintenance window (bin 60, 10:00–10:10) with a
      consistent spike.
    - Occasional Saturday spikes ("Saturdays often have high amounts of
      temporally localized instability").
    - Random pathological incidents from small providers (~2 per
      month, a few hours each, 10×).
    - Collection outages: scattered lost bins plus a handful of lost
      days (the paper's Figure 9 requires ≥80% coverage filtering).
    """
    rng = random.Random(seed)
    schedule = IncidentSchedule()
    # The late-May upgrade.
    schedule.add(
        Incident("isp-infrastructure-upgrade", upgrade_day, upgrade_day + 3, 8.0)
    )
    # Daily 10am maintenance line.
    schedule.add(
        Incident(
            "maintenance-window",
            0,
            n_days - 1,
            3.5,
            start_bin=maintenance_bin,
            end_bin=maintenance_bin + 2,
        )
    )
    # Saturday spikes: day_of_week == 5 given the Monday epoch.
    for day in range(n_days):
        if day % 7 == 5 and rng.random() < 0.5:
            start = rng.randrange(48, 120)
            schedule.add(
                Incident(
                    f"saturday-spike-{day}",
                    day,
                    day,
                    6.0,
                    start_bin=start,
                    end_bin=start + rng.randrange(2, 6),
                )
            )
    # Small-provider pathological incidents.
    n_incidents = max(1, n_days // 15)
    for i in range(n_incidents):
        day = rng.randrange(n_days)
        start = rng.randrange(0, 120)
        schedule.add(
            Incident(
                f"pathological-incident-{i}",
                day,
                day,
                10.0,
                start_bin=start,
                end_bin=start + rng.randrange(6, 24),
            )
        )
    # Collection outages: a few whole lost days and scattered bins.
    for _ in range(max(1, n_days // 40)):
        schedule.mark_lost_day(rng.randrange(n_days))
    for _ in range(n_days // 3):
        day = rng.randrange(n_days)
        start = rng.randrange(BINS_PER_DAY - 12)
        schedule.mark_lost_bins(day, range(start, start + rng.randrange(2, 12)))
    return schedule
