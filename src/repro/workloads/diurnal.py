"""The diurnal / weekly / seasonal usage model.

Section 5.1's central finding: routing instability tracks network
usage.  "During the hours of midnight to 6:00am there are significantly
fewer updates... heaviest during North American working hours...
from noon to midnight are the densest hours"; weekends show "vertical
stripes of less instability"; June–early-August evenings are sparser
("summer vacation at most of the educational hosts").

:class:`DiurnalModel` is a deterministic intensity function
``intensity(t) ≥ 0`` (mean ≈ 1 over a week) composed of:

- an hour-of-day profile (trough 0:00–6:00, rise through the morning,
  broad peak noon→midnight),
- a day-of-week factor (weekends depressed),
- a seasonal evening adjustment (summer days flatten the 17:00–24:00
  shoulder),
- a linear growth trend across the campaign ("routing instability
  increased linearly during the seven month period").

Both tiers consume it: the statistical generator scales bin counts by
it, and :class:`~repro.sim.faults.CustomerFlapGenerator` accepts it as
a flap-intensity function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..collector.store import SECONDS_PER_DAY, SECONDS_PER_HOUR, SECONDS_PER_WEEK

__all__ = ["DiurnalModel", "hour_of_day", "day_of_week", "is_weekend"]


def hour_of_day(time: float) -> float:
    """Hours past local midnight (0 ≤ h < 24) at simulated ``time``.

    The simulation epoch is calibrated to midnight EST — the paper's
    plots use EST ("the bottom of the graph represents midnight EST").
    """
    return (time % SECONDS_PER_DAY) / SECONDS_PER_HOUR


def day_of_week(time: float) -> int:
    """0=Monday ... 6=Sunday.  The epoch falls on a Monday."""
    return int(time // SECONDS_PER_DAY) % 7


def is_weekend(time: float) -> bool:
    return day_of_week(time) >= 5


#: Hourly base profile, midnight→23:00: quiet overnight, climb through
#: business hours, dense noon→midnight (Figure 3's visual structure).
HOURLY_PROFILE: Sequence[float] = (
    0.45, 0.38, 0.33, 0.30, 0.30, 0.34,   # 00-05  overnight trough
    0.45, 0.62, 0.85, 1.10, 1.30, 1.42,   # 06-11  morning climb
    1.52, 1.58, 1.60, 1.58, 1.52, 1.45,   # 12-17  afternoon plateau
    1.38, 1.32, 1.25, 1.15, 0.95, 0.70,   # 18-23  evening shoulder
)

#: Monday..Sunday multipliers: weekdays full, weekend depressed.
WEEKDAY_PROFILE: Sequence[float] = (1.0, 1.02, 1.03, 1.02, 1.0, 0.55, 0.50)


@dataclass(slots=True)
class DiurnalModel:
    """Deterministic usage-intensity function over the campaign.

    Parameters
    ----------
    trend_per_day:
        Fractional linear growth per day (Figure 3's detrended slope;
        345→770 over ~190 days ≈ 0.0042/day relative to the mean).
    summer_start_day, summer_end_day:
        Campaign days with the flattened evening shoulder (June–early
        August for a campaign starting March 1).
    summer_evening_factor:
        Multiplier applied to the 17:00–24:00 shoulder in summer.
    """

    trend_per_day: float = 0.0042
    summer_start_day: int = 92     # ~June 1 for a March 1 start
    summer_end_day: int = 160      # ~early August
    summer_evening_factor: float = 0.72

    def intensity(self, time: float) -> float:
        """The usage intensity at simulated ``time`` (mean ≈ 1 early
        in the campaign, growing with the trend)."""
        hour = hour_of_day(time)
        day = int(time // SECONDS_PER_DAY)
        base = self._hour_factor(hour)
        if (
            self.summer_start_day <= day <= self.summer_end_day
            and hour >= 17.0
        ):
            base *= self.summer_evening_factor
        base *= WEEKDAY_PROFILE[day_of_week(time)]
        base *= 1.0 + self.trend_per_day * day
        return base

    def _hour_factor(self, hour: float) -> float:
        """Piecewise-linear interpolation of the hourly profile."""
        lower = int(hour) % 24
        upper = (lower + 1) % 24
        frac = hour - int(hour)
        return (
            HOURLY_PROFILE[lower] * (1.0 - frac)
            + HOURLY_PROFILE[upper] * frac
        )

    # -- conveniences used by analyses/tests ---------------------------------

    def bin_weights(self, day: int, bins_per_day: int = 144) -> List[float]:
        """Relative intensity of each ten-minute bin of ``day``."""
        start = day * SECONDS_PER_DAY
        width = SECONDS_PER_DAY / bins_per_day
        return [
            self.intensity(start + (i + 0.5) * width)
            for i in range(bins_per_day)
        ]

    def weekly_mean(self, start_day: int = 0) -> float:
        """Mean hourly intensity over one week from ``start_day``."""
        total = 0.0
        count = 0
        for hour_index in range(7 * 24):
            t = start_day * SECONDS_PER_DAY + hour_index * SECONDS_PER_HOUR
            total += self.intensity(t)
            count += 1
        return total / count
