"""Figure 4: a representative week of raw updates.

Figure 4 plots raw forwarding/policy updates (instability categories)
for August 3–9 1996 in ten-minute aggregates: a bell-shaped curve
peaking each weekday afternoon, little weekend instability, and a
Saturday spike ("Saturdays often have high amounts of temporally
localized instability").

The paper's week starts on a Saturday; with the Monday campaign epoch,
day index 159 (a Saturday in August) opens the analogous week.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.report import ExperimentResult, Series, Table
from ..core.taxonomy import INSTABILITY_CATEGORIES
from ..workloads.generator import TraceGenerator
from ..workloads.incidents import IncidentSchedule, Incident

__all__ = ["run", "WEEK_START_DAY"]

WEEK_START_DAY = 159  # a Saturday in simulated August
_DAY_NAMES = (
    "Saturday", "Sunday", "Monday", "Tuesday", "Wednesday", "Thursday",
    "Friday",
)


def run(seed: int = 3, week_start: int = WEEK_START_DAY) -> ExperimentResult:
    # A clean schedule with a guaranteed Saturday spike and no lost
    # bins, so the week's shape is fully visible (Figure 4 shows a
    # complete week).
    schedule = IncidentSchedule(
        [
            Incident(
                "saturday-spike", week_start, week_start, 7.0,
                start_bin=80, end_bin=86,
            )
        ]
    )
    generator = TraceGenerator(schedule=schedule, seed=seed)
    per_day_bins: List[np.ndarray] = []
    for offset in range(7):
        plan = generator.plan_day(week_start + offset)
        combined = np.zeros(144, dtype=int)
        for category in INSTABILITY_CATEGORIES:
            combined += np.asarray(plan.bin_counts(category))
        per_day_bins.append(combined)

    result = ExperimentResult(
        "figure4", "Representative week of raw updates (10-minute bins)"
    )
    series = Series("instability updates per 10-minute bin")
    for d, bins in enumerate(per_day_bins):
        for b in range(0, 144, 6):  # hourly sampling for the rendering
            series.add(d + b / 144.0, int(bins[b:b + 6].sum()))
    result.series.append(series)

    table = Table(
        "Figure 4 — daily totals", ["Day", "Updates", "Peak 10-min bin"]
    )
    for d, bins in enumerate(per_day_bins):
        table.add_row(_DAY_NAMES[d], int(bins.sum()), int(bins.max()))
    result.tables.append(table)

    weekday_totals = [per_day_bins[i].sum() for i in range(2, 7)]
    weekend_totals = [per_day_bins[i].sum() for i in (0, 1)]
    result.record(
        "weekday_to_weekend_ratio",
        float(np.mean(weekday_totals) / max(np.mean(weekend_totals), 1.0)),
        expect=(1.5, 6.0),
    )
    # Bell shape: weekday afternoons beat both night and late evening.
    bell_days = 0
    for i in range(2, 7):
        bins = per_day_bins[i]
        night = bins[0:36].sum()        # 00-06
        afternoon = bins[72:120].sum()  # 12-20
        if afternoon > 2 * night:
            bell_days += 1
    result.record("weekdays_with_bell_shape", bell_days, expect=(4, 5))
    # Saturday spike: Saturday's peak bin rivals weekday peaks even
    # though its total is low.
    saturday_peak = int(per_day_bins[0].max())
    weekday_peak_median = float(
        np.median([per_day_bins[i].max() for i in range(2, 7)])
    )
    result.record(
        "saturday_spike_vs_weekday_peak",
        saturday_peak / max(weekday_peak_median, 1.0),
        expect=(0.8, 10.0),
    )
    return result
