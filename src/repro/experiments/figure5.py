"""Figure 5: time-series analysis of the update rate.

Figure 5a overlays an FFT correlogram and a maximum-entropy spectrum
of the detrended log update rate (hourly aggregates, August–September)
and finds "significant frequencies at seven days, and 24 hours".
Figure 5b lists the top five frequencies extracted by singular
spectrum analysis within a 99% white-noise confidence interval —
"Frequencies 1 and 2 ... represent the weekly cycle ... The remaining
three frequencies demonstrate the 24 hour periodicity."

The reproduction builds the same two months of hourly aggregates from
the generator's aggregate tier, applies the same log-detrend, and runs
all three estimators.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..analysis.mem import mem_psd
from ..analysis.spectral import correlogram_psd, dominant_periods, has_period
from ..analysis.ssa import significant_frequencies
from ..analysis.timeseries import aggregate_bins, log_detrend
from ..core.report import ExperimentResult, Series, Table
from ..core.taxonomy import INSTABILITY_CATEGORIES
from ..workloads.generator import TraceGenerator

__all__ = ["run", "AUGUST_SEPTEMBER"]

#: Campaign days for August and September (March 1 epoch).
AUGUST_SEPTEMBER = range(153, 214)


def run(seed: int = 3) -> ExperimentResult:
    generator = TraceGenerator(seed=seed)
    series = generator.campaign_bin_series(
        AUGUST_SEPTEMBER, tuple(INSTABILITY_CATEGORIES)
    )
    combined = np.zeros(len(AUGUST_SEPTEMBER) * 144, dtype=float)
    for counts in series.values():
        combined += np.asarray(counts, dtype=float)
    hourly = aggregate_bins(combined, 6)
    detrended = log_detrend(hourly)

    freqs_fft, power_fft = correlogram_psd(
        detrended, max_lag=600, n_freq=1024
    )
    peaks_fft = dominant_periods(freqs_fft, power_fft, n_peaks=10)
    freqs_mem, power_mem = mem_psd(detrended, order=40)
    peaks_mem = dominant_periods(freqs_mem, power_mem, n_peaks=8)
    ssa = significant_frequencies(detrended, window=240, seed=seed)

    result = ExperimentResult(
        "figure5", "Spectral analysis of hourly update rate (Aug-Sep)"
    )
    fft_series = Series("FFT correlogram peaks (period hours, power)")
    for peak in peaks_fft[:5]:
        fft_series.add(round(peak.period, 1), round(peak.power, 3))
    result.series.append(fft_series)
    mem_series = Series("MEM peaks (period hours, power)")
    for peak in peaks_mem[:5]:
        mem_series.add(round(peak.period, 1), round(peak.power, 3))
    result.series.append(mem_series)

    table = Table(
        "Figure 5b — SSA significant frequencies",
        ["#", "Frequency (1/hour)", "Period (hours)", "Variance share"],
    )
    for i, component in enumerate(ssa, start=1):
        table.add_row(
            i,
            round(component.frequency, 5),
            round(component.period, 1),
            round(component.variance_share, 4),
        )
    result.tables.append(table)

    result.record(
        "fft_finds_24h", int(has_period(peaks_fft, 24.0)), expect=(1, 1)
    )
    result.record(
        "fft_finds_weekly",
        int(has_period(peaks_fft, 168.0, tolerance=0.2)),
        expect=(1, 1),
    )
    result.record(
        "mem_finds_24h", int(has_period(peaks_mem, 24.0)), expect=(1, 1)
    )
    ssa_periods = [c.period for c in ssa]
    result.record(
        "ssa_has_daily_component",
        int(any(abs(p - 24.0) / 24.0 < 0.2 for p in ssa_periods)),
        expect=(1, 1),
    )
    result.record(
        "ssa_has_weekly_component",
        int(any(p > 100.0 for p in ssa_periods)),
        expect=(1, 1),
    )
    result.record(
        "ssa_significant_count", len(ssa), expect=(2, 5)
    )
    return result
