"""Figure 1: the measured exchange points.

The paper's Figure 1 is a map of the five U.S. public exchange points
with the number of providers peering with the Routing Arbiter route
servers at each.  The reproduction renders the same facts as a table
and verifies the structural claims (five exchanges, Mae-East largest
with >50 providers, geographic spread).
"""

from __future__ import annotations

from ..core.report import ExperimentResult, Table
from ..topology.exchange import EXCHANGE_POINTS

__all__ = ["run"]


def run() -> ExperimentResult:
    table = Table(
        "Figure 1 — measured U.S. public exchange points",
        ["Exchange", "Location", "Route-server peers"],
    )
    for info in EXCHANGE_POINTS:
        table.add_row(info.name, info.location, info.route_server_peers)
    result = ExperimentResult(
        "figure1", "Map of major U.S. Internet exchange points"
    )
    result.tables.append(table)
    result.record("n_exchanges", len(EXCHANGE_POINTS), expect=5)
    largest = max(EXCHANGE_POINTS, key=lambda e: e.route_server_peers)
    result.record(
        "mae_east_is_largest", int(largest.name == "Mae-East"), expect=(1, 1)
    )
    result.record(
        "mae_east_peers",
        largest.route_server_peers,
        expect=(50, 65),  # "over 60 providers", route servers peer w/ >90%
    )
    return result
