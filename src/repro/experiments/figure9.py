"""Figure 9: proportion of routes affected by updates each day.

Figure 9 plots the per-day fraction of Prefix+AS tuples involved in
each update category, April–September, keeping only days with ≥80%
collection coverage.  Readings checked:

- 3–10% of routes see ≥1 WADiff; 5–20% see ≥1 AADiff per day;
- 35–100% (median ~50%) are involved in at least one category;
- hence "most (80 percent) of Internet routes exhibit a relatively
  high level of stability" on the instability measures.

Affected fractions depend only on *which pairs had events*, so this
runs on the generator's unscaled day plans directly — the whole
campaign, no record materialization.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..analysis.affected import DayAffected, affected_series_stats
from ..core.report import ExperimentResult, Series, Table
from ..core.taxonomy import INSTABILITY_CATEGORIES, UpdateCategory
from ..workloads.generator import TraceGenerator
from ..workloads.incidents import default_campaign_schedule

__all__ = ["run", "CAMPAIGN"]

CAMPAIGN = range(31, 214)  # April..September


def run(seed: int = 3) -> ExperimentResult:
    schedule = default_campaign_schedule(seed=seed)
    generator = TraceGenerator(schedule=schedule, seed=seed)
    total_pairs = generator.population.total_pairs
    days: List[DayAffected] = []
    instability_affected: List[float] = []
    for day in CAMPAIGN:
        plan = generator.plan_day(day)
        fractions = {
            category: len(plan.affected_pairs(category)) / total_pairs
            for category in plan.participation
        }
        days.append(
            DayAffected(
                day=day,
                fractions=fractions,
                any_fraction=len(plan.affected_pairs_any()) / total_pairs,
                coverage=schedule.coverage(day),
            )
        )
        pairs = set()
        for category in INSTABILITY_CATEGORIES:
            pairs |= plan.affected_pairs(category)
        instability_affected.append(len(pairs) / total_pairs)
    stats = affected_series_stats(days, min_coverage=0.8)

    result = ExperimentResult(
        "figure9", "Proportion of routes affected by updates per day"
    )
    table = Table(
        "Figure 9 — affected-route fraction ranges (well-covered days)",
        ["Measure", "min", "max", "paper"],
    )
    table.add_row(
        "WADiff >= 1/day",
        round(stats.wadiff_range[0], 3),
        round(stats.wadiff_range[1], 3),
        "0.03-0.10",
    )
    table.add_row(
        "AADiff >= 1/day",
        round(stats.aadiff_range[0], 3),
        round(stats.aadiff_range[1], 3),
        "0.05-0.20",
    )
    table.add_row(
        "any category",
        round(stats.any_range[0], 3),
        round(stats.any_range[1], 3),
        "0.35-1.00 (median 0.50)",
    )
    result.tables.append(table)

    series = Series("any-category affected fraction by day")
    for day_stats in days[::7]:
        series.add(day_stats.day, round(day_stats.any_fraction, 3))
    result.series.append(series)

    result.record(
        "wadiff_fraction_low", stats.wadiff_range[0], expect=(0.01, 0.05)
    )
    result.record(
        "wadiff_fraction_high", stats.wadiff_range[1], expect=(0.06, 0.15)
    )
    result.record(
        "aadiff_fraction_low", stats.aadiff_range[0], expect=(0.02, 0.08)
    )
    result.record(
        "aadiff_fraction_high", stats.aadiff_range[1], expect=(0.12, 0.30)
    )
    result.record(
        "any_fraction_median", stats.any_median, expect=(0.35, 0.65)
    )
    result.record(
        "any_fraction_max", stats.any_range[1], expect=(0.55, 1.0)
    )
    # Stability on the forwarding-instability measures: the
    # instability-only affected fraction leaves >80% of routes quiet.
    result.record(
        "stable_route_fraction",
        1.0 - float(np.median(instability_affected)),
        expect=(0.72, 0.95),
    )
    result.record("well_covered_days", stats.n_days, expect=(120, 183))
    return result
