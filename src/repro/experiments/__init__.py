"""Experiment runners: one per paper table/figure, plus the headline
pathology study and the countermeasure ablations."""

from .registry import (
    EXPERIMENTS,
    SPECS,
    ExperimentSpec,
    experiment_ids,
    run_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "SPECS",
    "ExperimentSpec",
    "experiment_ids",
    "run_experiment",
]
