"""The §4 headline pathology numbers.

Not a single figure but the paper's most-quoted findings, each checked
against the reproduction:

- 3–6 million updates/day at the core vs a 42,000-prefix table
  ("one or more orders of magnitude larger than expected");
- 500k–6M pathological withdrawals (WWDup) per day at Mae-East;
- ~99% of routing information pathological;
- the stateless→stateful vendor fix cutting one provider's
  withdrawals by three orders of magnitude (2M → 1905);
- pathology persistence under five minutes;
- the 300-updates/second router crash experiment (§6).
"""

from __future__ import annotations

import numpy as np

from ..core.classifier import classify
from ..core.instability import CategoryCounts, persistence
from ..core.report import ExperimentResult, Table
from ..core.taxonomy import UpdateCategory
from ..collector.log import MemoryLog
from ..net.prefix import Prefix
from ..sim.engine import Engine
from ..sim.faults import MisconfiguredProvider
from ..sim.router import CpuModel, Router, connect
from ..sim.routeserver import RouteServer
from ..workloads.calibration import PAPER
from ..workloads.generator import TraceGenerator

__all__ = ["run", "run_stateless_comparison", "run_crash_experiment"]


def run_stateless_comparison(seed: int = 13, duration: float = 3600.0):
    """One provider, two exchanges: stateless router at 'AADS',
    patched stateful router at 'Mae-East', identical fault inputs.
    Returns (stateless_withdrawals, stateful_withdrawals) logged."""
    results = []
    for stateless in (True, False):
        engine = Engine()
        sink = MemoryLog()
        origin = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
        provider = Router(
            engine, asn=200, router_id=2, mrai_interval=30.0,
            stateless_bgp=stateless,
        )
        server = RouteServer(engine, asn=65000, router_id=99, sink=sink)
        connect(origin, provider)
        connect(provider, server)
        # The provider never exports these customer routes (no-transit
        # policy toward the exchange), so every leaked withdrawal is
        # pure WWDup.
        from ..bgp.policy import DENY_ALL

        provider.export_policy = DENY_ALL
        engine.run_until(60.0)
        for i in range(40):
            origin.originate(Prefix((10 << 24) + i * 256, 24))
        engine.run_until(120.0)
        sink.clear()
        import random

        rng = random.Random(seed)
        t = engine.now
        for _ in range(60):
            t += rng.uniform(20.0, 60.0)
            prefix = Prefix((10 << 24) + rng.randrange(40) * 256, 24)
            engine.schedule_at(t, origin.flap_origin, prefix, 5.0)
        engine.run_until(engine.now + duration)
        withdrawals = sum(1 for r in sink if r.is_withdraw)
        results.append(withdrawals)
    return tuple(results)


def run_crash_experiment(rate_per_second: float = 300.0, duration: float = 60.0):
    """Blast a CPU-limited router with pathological withdrawals at a
    given rate; returns True if it crashed (the paper's informal
    experiment: 300/s kills a high-end router of the era)."""
    engine = Engine()
    source = Router(engine, asn=100, router_id=1, mrai_interval=1.0)
    victim = Router(
        engine, asn=200, router_id=2, mrai_interval=1.0,
        cpu=CpuModel(per_update=0.004),
        crash_queue_limit=1200,
    )
    connect(source, victim)
    engine.run_until(30.0)
    foreign = [Prefix((20 << 24) + i * 256, 24) for i in range(600)]
    spewer = MisconfiguredProvider(
        engine, source, foreign,
        period=len(foreign) / rate_per_second,
    )
    spewer.start()
    engine.run_until(engine.now + duration)
    return victim.crash_count > 0


def run(seed: int = 3) -> ExperimentResult:
    generator = TraceGenerator(seed=seed)
    daily_totals = []
    wwdups = []
    path_fractions = []
    for day in range(120, 150):
        plan = generator.plan_day(day)
        total = sum(plan.category_total(c) for c in plan.participation)
        ww = plan.category_total(UpdateCategory.WWDUP)
        aadup = plan.category_total(UpdateCategory.AADUP)
        daily_totals.append(total)
        wwdups.append(ww)
        path_fractions.append((ww + aadup) / total)

    result = ExperimentResult(
        "pathology", "Headline pathology magnitudes (section 4)"
    )
    table = Table(
        "Pathology headline numbers",
        ["quantity", "measured", "paper"],
    )
    median_total = float(np.median(daily_totals))
    median_ww = float(np.median(wwdups))
    median_frac = float(np.median(path_fractions))
    table.add_row("median daily updates (Mae-East)", int(median_total),
                  "3-6M (core)")
    table.add_row("median daily WWDups", int(median_ww), "0.5-6M")
    table.add_row("pathological fraction", round(median_frac, 3), "~0.99")
    table.add_row(
        "updates per prefix per day",
        round(median_total / PAPER.total_prefixes, 1),
        "~125",
    )
    result.tables.append(table)

    result.record(
        "daily_updates_median",
        median_total,
        expect=(3_000_000, 6_000_000),
    )
    result.record(
        "daily_wwdup_median",
        median_ww,
        expect=PAPER.daily_wwdups,
    )
    result.record(
        "pathological_fraction", median_frac, expect=(0.9, 1.0)
    )
    result.record(
        "updates_per_prefix_per_day",
        median_total / PAPER.total_prefixes,
        expect=(70.0, 160.0),
    )

    # Stateless vs stateful vendor fix.
    stateless_w, stateful_w = run_stateless_comparison(seed=seed)
    result.record(
        "stateless_to_stateful_ratio",
        stateless_w / max(1, stateful_w),
        expect=(10.0, float("inf")),
    )
    result.notes.append(
        f"stateless router leaked {stateless_w} withdrawals where the "
        f"stateful one sent {stateful_w} (paper: 2,000,000 vs 1,905 for "
        "the same provider through old and updated software)."
    )

    # Persistence of pathological behaviour (<5 minutes), plus the
    # policy-fluctuation share of AADups (updates whose forwarding
    # tuple is unchanged but whose MED/communities moved — §4.1's
    # "policy fluctuation" distinction).
    records = generator.day_records(130, pair_fraction=0.02)
    classified = list(classify(records))
    aadups = [
        u for u in classified if u.category is UpdateCategory.AADUP
    ]
    if aadups:
        policy_share = sum(
            1 for u in aadups if u.policy_change
        ) / len(aadups)
        result.record(
            "policy_fluctuation_share_of_aadup",
            policy_share,
            expect=(0.1, 0.5),
        )
    updates = [u for u in classified if u.category.is_pathological]
    episodes = persistence(updates)
    durations = [d for ds in episodes.values() for d in ds if d > 0]
    if durations:
        under_5min = sum(1 for d in durations if d < 300.0) / len(durations)
        result.record(
            "pathology_persistence_under_5min",
            under_5min,
            expect=(0.6, 1.0),
        )

    # The crash experiment.
    crashed_at_300 = run_crash_experiment(300.0)
    survived_at_30 = not run_crash_experiment(30.0)
    result.record("crashes_at_300_per_sec", int(crashed_at_300), expect=(1, 1))
    result.record("survives_30_per_sec", int(survived_at_30), expect=(1, 1))

    # The record day: "on at least one occasion, the total number of
    # updates exchanged at the Internet core has exceeded 30 million
    # per day.  Our data collection infrastructure failed for the day
    # after recording 30 million updates in a six hour period."  A
    # catastrophic full-day incident on the calibrated model should
    # clear 30M — and the schedule machinery can mark the aftermath
    # as lost, exactly as happened.
    from ..workloads.incidents import Incident, IncidentSchedule

    record_schedule = IncidentSchedule(
        [Incident("meltdown", 100, 100, 12.0)]
    )
    record_schedule.mark_lost_day(101)
    record_generator = TraceGenerator(
        schedule=record_schedule, seed=seed
    )
    record_plan = record_generator.plan_day(100)
    record_total = sum(
        record_plan.category_total(c)
        for c in record_plan.participation
    )
    result.record(
        "record_day_updates",
        record_total,
        expect=(30_000_000, 80_000_000),
    )
    result.record(
        "collection_fails_after_record_day",
        record_schedule.coverage(101),
        expect=0.0,
    )
    return result
