"""Figure 6: AS contribution to routing updates vs table share.

For every route-server peer and every day of August, Figure 6 plots
the peer's share of the routing table (x) against its share of the
day's updates (y), one panel per category (AADiff, WADiff, AADup,
WADup).  Readings: points do not cluster on the break-even diagonal —
"there is not a correlation between the size of an AS ... and its
proportion of the instability statistics" — and "no single ISP
consistently contributes disproportionately ... in all four
categories."

The reproduction materializes one simulated August of records (a pair
subsample; shares are ratios, so subsampling cancels out), classifies
them per day, and computes both checks per category.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..analysis.contribution import (
    consistent_dominators,
    contribution_points,
    correlation,
)
from ..core.classifier import ClassifiedUpdate, StreamClassifier, classify
from ..core.columns import AttributeTable, ColumnClassifier, RecordColumns
from ..core.report import ExperimentResult, Table
from ..core.taxonomy import FINE_GRAINED_CATEGORIES
from ..workloads.generator import PeerPopulation, TraceGenerator

__all__ = [
    "run",
    "AUGUST",
    "fine_grained_generator",
    "classified_month",
    "classified_month_columns",
]

AUGUST = range(153, 184)


def fine_grained_generator(seed: int, **generator_kwargs) -> TraceGenerator:
    """A generator sized for record-tier (classifier-based) analyses.

    The fine-grained figures need *unbiased* per-pair distributions,
    which heavy pair-subsampling would distort (the rare heavy pairs
    are exactly the tail under study).  A 4,000-pair population at
    ``pair_fraction=1.0`` gives bias-free distributions at 1/10th the
    real table size; shares and proportions are scale-free.
    """
    population = PeerPopulation.synthesize(
        n_peers=30, total_prefixes=4000, seed=seed
    )
    return TraceGenerator(
        population=population, seed=seed, **generator_kwargs
    )


def classified_month(
    generator: TraceGenerator,
    days: Sequence[int],
    pair_fraction: float = 1.0,
    warmup_days: int = 2,
) -> Dict[int, List[ClassifiedUpdate]]:
    """Materialize and classify a month of fine-grained records,
    preserving classifier state across days (with a warm-up so WA*/AA*
    states are populated).  WWDup is excluded — none of the
    fine-grained figures (6, 7, 8) plot it."""
    classifier = StreamClassifier()
    first = min(days)
    for day in range(first - warmup_days, first):
        for _ in classify(
            generator.day_records(
                day, pair_fraction, categories=FINE_GRAINED_CATEGORIES
            ),
            classifier,
        ):
            pass
    result: Dict[int, List[ClassifiedUpdate]] = {}
    for day in days:
        records = generator.day_records(
            day, pair_fraction, categories=FINE_GRAINED_CATEGORIES
        )
        result[day] = list(classify(records, classifier))
    return result


def classified_month_columns(
    generator: TraceGenerator,
    days: Sequence[int],
    pair_fraction: float = 1.0,
    warmup_days: int = 2,
) -> Dict[int, Tuple[RecordColumns, np.ndarray]]:
    """Columnar :func:`classified_month`: day → ``(columns, codes)``.

    The same record stream (identical RNG draws) materialized and
    classified on the columnar tier — one attribute table and one
    :class:`ColumnClassifier` span the month, so per-route state
    carries across days exactly like the streaming version.
    """
    classifier = ColumnClassifier()
    table = AttributeTable()
    first = min(days)
    for day in range(first - warmup_days, first):
        classifier.classify(
            generator.day_columns(
                day, pair_fraction,
                categories=FINE_GRAINED_CATEGORIES, attrs=table,
            )
        )
    result: Dict[int, Tuple[RecordColumns, np.ndarray]] = {}
    for day in days:
        columns = generator.day_columns(
            day, pair_fraction, categories=FINE_GRAINED_CATEGORIES, attrs=table
        )
        codes, _ = classifier.classify(columns)
        result[day] = (columns, codes)
    return result


def run(seed: int = 3) -> ExperimentResult:
    generator = fine_grained_generator(seed)
    daily = classified_month_columns(generator, AUGUST)
    shares = {
        peer.asn: peer.table_share for peer in generator.population.peers
    }

    result = ExperimentResult(
        "figure6", "AS contribution to updates vs routing-table share"
    )
    table = Table(
        "Figure 6 — per-category correlation and dominators",
        ["Category", "corr(table share, update share)", "consistent dominators"],
    )
    for category in FINE_GRAINED_CATEGORIES:
        points = contribution_points(daily, shares, category)
        corr = correlation(points)
        dominators = consistent_dominators(points)
        table.add_row(category.label, round(corr, 3), len(dominators))
        result.record(
            f"abs_correlation_{category.name.lower()}",
            abs(corr),
            # Share-proportional allocation would give ~0.95 here; the
            # paper's claim ("few days cluster about the line") is
            # qualitative, so anything well below that qualifies.
            expect=(0.0, 0.5),
        )
        result.record(
            f"consistent_dominators_{category.name.lower()}",
            len(dominators),
            expect=(0, 0),
        )
    result.tables.append(table)
    # Table shares themselves are dominated by the big 6-8 ISPs.
    top_share = sum(sorted(shares.values(), reverse=True)[:8])
    result.record("top8_table_share", top_share, expect=(0.5, 0.95))
    result.notes.append(
        "Points per panel: one per (peer, day); correlations near zero "
        "reproduce the paper's off-diagonal scatter."
    )
    return result
