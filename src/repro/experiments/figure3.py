"""Figure 3: the instability density matrix.

Seven months of instability (AADiff + WADiff + WADup) in ten-minute
aggregates, rendered day × time-of-day with a threshold on the
log-detrended counts.  The visible structure the reproduction checks:

- fewer updates midnight–6am; noon–midnight densest;
- weekend stripes of lower instability;
- bold vertical lines at the late-May ISP infrastructure upgrade;
- the horizontal ~10am maintenance line;
- the raw-count equivalent of the constant detrended threshold grows
  ~345 → ~770 per ten-minute bin March → September;
- white (missing) cells from collection outages.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..analysis.density import build_density_matrix
from ..core.report import ExperimentResult, Series, Table
from ..core.taxonomy import INSTABILITY_CATEGORIES
from ..workloads.generator import TraceGenerator
from ..workloads.incidents import default_campaign_schedule

__all__ = ["run", "N_DAYS"]

N_DAYS = 214  # March 1 .. end of September


def run(seed: int = 3, n_days: int = N_DAYS) -> ExperimentResult:
    schedule = default_campaign_schedule(n_days=n_days, seed=seed)
    generator = TraceGenerator(schedule=schedule, seed=seed)
    day_bins: Dict[int, List[int]] = {}
    lost_bins = {}
    for day in range(n_days):
        plan = generator.plan_day(day)
        combined = np.zeros(144, dtype=int)
        for category in INSTABILITY_CATEGORIES:
            combined += np.asarray(plan.bin_counts(category))
        day_bins[day] = combined.tolist()
        if plan.lost_bins:
            lost_bins[day] = plan.lost_bins
    matrix = build_density_matrix(day_bins, lost_bins)

    result = ExperimentResult(
        "figure3", "Instability density, day x time-of-day, 7 months"
    )
    # Render the column profile as a series (share of days each
    # time-of-day slot is above threshold).
    profile = matrix.high_fraction_by_bin()
    series = Series("high-density share by time-of-day bin")
    for i, value in enumerate(profile):
        series.add(i / 6.0, round(float(value), 3))
    result.series.append(series)

    night = matrix.hour_band_fraction(0.0, 6.0)
    afternoon = matrix.hour_band_fraction(12.0, 24.0)
    result.record("night_high_fraction", night, expect=(0.0, 0.25))
    result.record("afternoon_high_fraction", afternoon, expect=(0.35, 1.0))
    weekend_days = [d for d in range(n_days) if d % 7 >= 5]
    weekday_days = [d for d in range(n_days) if d % 7 < 5]
    weekend = matrix.high_fraction_for_days(weekend_days)
    weekday = matrix.high_fraction_for_days(weekday_days)
    result.record(
        "weekday_to_weekend_contrast",
        weekday / max(weekend, 1e-9),
        expect=(1.3, 20.0),
    )
    # The upgrade days should be nearly solid black.
    upgrade_days = [88, 89, 90, 91]
    result.record(
        "upgrade_days_high_fraction",
        matrix.high_fraction_for_days(upgrade_days),
        expect=(0.7, 1.0),
    )
    # The 10am maintenance line: bins 60-61 darker than neighbours.
    maintenance = profile[60:62].mean()
    neighbours = np.concatenate([profile[54:58], profile[64:68]]).mean()
    result.record(
        "maintenance_line_contrast",
        maintenance / max(neighbours, 1e-9),
        expect=(1.1, 30.0),
    )
    # Threshold growth March -> September in raw units.
    early = float(
        np.nanmedian(
            [matrix.raw_threshold_equivalent(d) for d in range(7, 28)]
        )
    )
    late = float(
        np.nanmedian(
            [
                matrix.raw_threshold_equivalent(d)
                for d in range(n_days - 21, n_days - 1)
            ]
        )
    )
    result.record(
        "threshold_growth_ratio", late / max(early, 1e-9),
        expect=(1.5, 3.5),
    )
    result.record(
        "missing_cell_fraction", matrix.missing_fraction(),
        expect=(0.005, 0.15),
    )
    result.notes.append(
        f"paper threshold equivalents: 345 (March) to 770 (September) "
        f"per 10-minute bin; measured {early:.0f} to {late:.0f} (scaled "
        "volumes, ratio is the check)."
    )
    table = Table(
        "Figure 3 — summary statistics",
        ["quantity", "value"],
    )
    table.add_row("days", len(matrix.days))
    table.add_row("threshold (detrended log)", round(matrix.threshold, 3))
    table.add_row("raw threshold early", round(early, 1))
    table.add_row("raw threshold late", round(late, 1))
    result.tables.append(table)
    result.notes.append(
        "density grid (days -> right, midnight at bottom; # above "
        "threshold, . below, blank missing):\n" + matrix.render_ascii()
    )
    return result
