"""Figure 10: multi-homed prefixes, April through December.

Figure 10 counts prefixes advertised with multiple paths in Mae-East's
routing tables over nine months: ~linear growth ("the rate of increase
in multi-homing is at best linear"), >25% of prefixes multi-homed,
spikes at the late-May ISP infrastructure upgrade, and a gap of lost
data.

Two-part reproduction:

1. The growth-model series with all four features, summarized and
   checked.
2. A mechanism demo: the multi-homed count measured directly from a
   simulated route server's RIB on a generated AS topology, verifying
   the counting machinery against ground truth.
"""

from __future__ import annotations

from ..analysis.multihoming import count_multihomed, series_summary
from ..core.report import ExperimentResult, Series, Table
from ..topology.asgraph import build_internet_graph
from ..topology.internet import CoreInternetScenario
from ..topology.multihoming import MultihomingGrowthModel

__all__ = ["run", "run_rib_measurement"]


def run_rib_measurement(seed: int = 11):
    """Measure multi-homing from a live simulated route-server RIB.

    Returns ``(measured_count, ground_truth_count)`` where ground truth
    is the number of multi-homed customer prefixes in the topology.
    """
    graph = build_internet_graph(
        n_backbones=3, n_regionals=4, n_customers=30,
        multi_homed_fraction=0.3, seed=seed,
    )
    scenario = CoreInternetScenario(graph=graph, mrai_interval=5.0, seed=seed)
    scenario.settle(150.0)
    measured = count_multihomed(scenario.route_server.loc_rib)
    truth = sum(
        len(c.plan.announced)
        for c in graph.customers
        if c.multi_homed
    )
    return measured, truth


def run(seed: int = 3) -> ExperimentResult:
    model = MultihomingGrowthModel(seed=seed)
    series = model.series(n_days=270)
    summary = series_summary(series)

    result = ExperimentResult(
        "figure10", "Multi-homed prefix count, April-December"
    )
    rendered = Series("multi-homed prefixes by day (weekly samples)")
    for day, count in series.observed()[::7]:
        rendered.add(day, count)
    result.series.append(rendered)

    table = Table(
        "Figure 10 — summary", ["quantity", "value", "paper"]
    )
    table.add_row("start count", summary.start_count, "~9-10k (April)")
    table.add_row("end count", summary.end_count, "~20-25k (December)")
    table.add_row(
        "growth/day", round(summary.growth_per_day, 1), "linear (~50/day)"
    )
    table.add_row("peak day", summary.peak_day, "late May (upgrade)")
    table.add_row(
        "final fraction", round(summary.final_fraction, 3), ">0.25"
    )
    result.tables.append(table)

    result.record(
        "growth_per_day", summary.growth_per_day, expect=(30.0, 90.0)
    )
    result.record(
        "grew_linearly", int(summary.grew_linearly), expect=(1, 1)
    )
    result.record(
        "final_multi_homed_fraction",
        summary.final_fraction,
        expect=(0.25, 0.8),
    )
    result.record(
        "upgrade_spike_magnitude",
        summary.peak_count
        / max(1, model.count_on(summary.peak_day + 10) or 1),
        expect=(1.5, 5.0),
    )
    result.record("has_data_gap", int(summary.has_gap), expect=(1, 1))

    measured, truth = run_rib_measurement(seed=seed + 8)
    result.record("rib_measured_multihomed", measured, expect=truth)
    result.notes.append(
        "RIB measurement cross-check: the multi-homed count taken from "
        "a live simulated route-server RIB matches the topology's "
        f"ground truth ({measured} vs {truth})."
    )
    return result
