"""Figure 8: inter-arrival time histograms with 30/60-second peaks.

Per category, Figure 8 bins Prefix+AS inter-arrival times into log
bins (1s..24h) and box-plots the daily proportions: "the predominant
frequencies in each of the graphs are captured by the thirty second
and one minute bins.  The fact that these frequencies account for half
of the measured statistics was surprising."

Two-part reproduction:

1. **Statistical tier**: a simulated August's records → per-day
   histograms → the paper's box statistics, checking the 30s+60s mass
   per category.
2. **Mechanism tier** (the *why*): an event-driven simulation where
   the periodicities arise mechanistically — a CSU-oscillating link
   (60 s line) and a misconfigured IGP/BGP redistribution plus a
   stateless 30 s-timer router (30 s line) — measured by the same
   analysis code.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..analysis.interarrival import (
    daily_boxes,
    histogram_proportions,
    interarrival_times,
    timer_bin_mass,
)
from ..collector.log import MemoryLog
from ..core.classifier import classify
from ..core.report import ExperimentResult, Series, Table
from ..core.taxonomy import FINE_GRAINED_CATEGORIES, UpdateCategory
from ..net.prefix import Prefix
from ..sim.engine import Engine
from ..sim.igp import IgpBgpRedistribution, IgpTable
from ..sim.link import CsuLink
from ..sim.router import Router, connect
from ..sim.routeserver import RouteServer
from .figure6 import AUGUST, classified_month_columns, fine_grained_generator

__all__ = ["run", "run_mechanisms"]


def run_mechanisms(duration: float = 4 * 3600.0) -> List[float]:
    """The mechanism tier: returns the gap list from an event-driven
    simulation containing a CSU link and an IGP/BGP loop."""
    engine = Engine()
    sink = MemoryLog()
    server = RouteServer(engine, asn=65000, router_id=99, sink=sink)
    # Mechanism 1: customer behind a CSU-oscillating link (60s cycle).
    provider_a = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
    customer = Router(engine, asn=300, router_id=3, mrai_interval=5.0)
    csu = CsuLink(
        engine, up_duration=55.0, down_duration=5.0, noise=0.01,
    )
    customer.add_peer(provider_a.router_id, provider_a.asn, csu)
    provider_a.add_peer(customer.router_id, customer.asn, csu)
    customer.start_session(provider_a.router_id)
    customer.originate(Prefix.parse("203.0.113.0/24"))
    connect(provider_a, server)
    # Mechanism 2: misconfigured mutual IGP/BGP redistribution on a
    # 30-second IGP timer.
    provider_b = Router(engine, asn=200, router_id=2, mrai_interval=5.0)
    igp = IgpTable()
    igp.add_native(Prefix.parse("198.51.100.0/24"))
    loop = IgpBgpRedistribution(engine, provider_b, igp, igp_period=30.0)
    loop.start()
    connect(provider_b, server)
    engine.run_until(duration)
    updates = list(classify(sink.sorted_by_time()))
    return interarrival_times(updates)


def run(seed: int = 4) -> ExperimentResult:
    generator = fine_grained_generator(seed)
    daily_map = classified_month_columns(generator, AUGUST)
    daily_list = [daily_map[day] for day in sorted(daily_map)]

    result = ExperimentResult(
        "figure8", "Inter-arrival histograms: the 30s/60s periodicity"
    )
    table = Table(
        "Figure 8 — per-category bin boxes (median proportion)",
        ["Category", "30s", "1m", "30s+1m mass", "largest other bin"],
    )
    for category in FINE_GRAINED_CATEGORIES:
        boxes = daily_boxes(daily_list, category)
        medians = [b.median for b in boxes]
        mass = medians[2] + medians[3]
        others = max(m for i, m in enumerate(medians) if i not in (2, 3))
        table.add_row(
            category.label,
            round(medians[2], 3),
            round(medians[3], 3),
            round(mass, 3),
            round(others, 3),
        )
        result.record(
            f"timer_mass_{category.name.lower()}",
            mass,
            expect=(0.35, 0.75),
        )
        result.record(
            f"timer_bins_dominate_{category.name.lower()}",
            int(medians[2] >= others),
            expect=(1, 1),
        )
    result.tables.append(table)

    # Mechanism tier: the same peaks arise from actual CSU/IGP/timer
    # machinery in the event simulation.
    gaps = run_mechanisms()
    proportions = histogram_proportions(gaps)
    mech_series = Series("mechanism-tier bin proportions (1s..24h)")
    for i, p in enumerate(proportions):
        mech_series.add(i, round(p, 3))
    result.series.append(mech_series)
    result.record(
        "mechanism_timer_mass",
        timer_bin_mass(proportions),
        expect=(0.5, 1.0),
    )
    result.notes.append(
        "mechanism tier: CSU clock-drift link (60s) + misconfigured "
        "IGP/BGP redistribution (30s) produce the same bins the "
        "statistical tier is calibrated to."
    )
    return result
