"""Cross-exchange consistency (the §5 representativeness claim).

"It is important to note that these results are representative of
other exchange points, including PacBell and Sprint.  The BGP
information exported from autonomous systems at private exchange
points should mirror the data at public exchanges."

The experiment instruments three exchanges simultaneously; national
backbones operate border routers at each, fed by shared customer-fault
processes (a flapping customer circuit is withdrawn by the provider
*everywhere it peers*).  Each exchange's route-server log is
classified independently; the per-category share profiles should agree
across exchanges even though absolute volumes differ with peer count.
"""

from __future__ import annotations

from ..core.report import ExperimentResult, Table
from ..topology.multiexchange import MultiExchangeScenario

__all__ = ["run"]


def run(seed: int = 3, duration: float = 2 * 3600.0) -> ExperimentResult:
    scenario = MultiExchangeScenario(seed=seed)
    scenario.settle()
    scenario.run_with_faults(duration)

    result = ExperimentResult(
        "crossexchange",
        "Cross-exchange consistency of instability statistics",
    )
    profiles = scenario.category_profiles()
    counts = {
        name: scenario.classify_exchange(name) for name in profiles
    }
    table = Table(
        "Per-exchange classification",
        ["Exchange", "updates", "instability share", "pathological share"],
    )
    for name, c in counts.items():
        total = max(1, c.total)
        table.add_row(
            name,
            c.total,
            round(c.instability / total, 3),
            round(c.pathological / total, 3),
        )
    result.tables.append(table)

    result.record(
        "min_profile_similarity",
        scenario.min_pairwise_similarity(),
        expect=(0.8, 1.0),
    )
    volumes = sorted(c.total for c in counts.values())
    result.record(
        "volume_spread",
        volumes[-1] / max(1, volumes[0]),
        expect=(1.0, 10.0),
    )
    all_saw_updates = all(c.total > 50 for c in counts.values())
    result.record(
        "all_exchanges_observed_instability",
        int(all_saw_updates),
        expect=(1, 1),
    )
    result.notes.append(
        "Volumes differ with each exchange's peer count; the category "
        "mix does not — the paper's justification for presenting only "
        "Mae-East."
    )
    return result
