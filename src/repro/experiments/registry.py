"""The experiment registry: every table/figure/study by id.

The benchmark harness and the examples look experiments up here, and
EXPERIMENTS.md's per-experiment index mirrors this table.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.report import ExperimentResult
from . import (
    ablations,
    crossexchange,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    pathology,
    table1,
)

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_ids"]

#: Experiment id → zero-argument runner returning ExperimentResult.
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1.run,
    "figure1": figure1.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "figure9": figure9.run,
    "figure10": figure10.run,
    "pathology": pathology.run,
    "crossexchange": crossexchange.run,
    "ablation-damping": ablations.run_damping_study,
    "ablation-aggregation": ablations.run_aggregation_study,
    "ablation-routeserver": ablations.run_route_server_study,
    "ablation-sync": ablations.run_synchronization_study,
    "ablation-storm": ablations.run_storm_study,
    "ablation-cache": ablations.run_cache_study,
    "ablation-convergence": ablations.run_convergence_study,
    "ablation-filter": ablations.run_filter_study,
}


def experiment_ids() -> List[str]:
    """All registered experiment ids, paper order first."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id; raises KeyError for unknown ids."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    return runner()
