"""The experiment registry: every table/figure/study by id.

Each entry is an :class:`ExperimentSpec` — id, human title, the
paper-context line shown in generated reports, and a runner taking an
optional :class:`~repro.campaign.config.CampaignConfig` (the unified
way to re-seed an experiment; ``None`` keeps the experiment's
published defaults).  The CLI, the benchmark harness, the examples,
and EXPERIMENTS.md generation all read from this one table — the
paper-context strings live nowhere else.

``EXPERIMENTS`` / ``run_experiment`` / ``experiment_ids`` keep their
historical shapes as thin views over the specs, so pre-spec callers
keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..analysis.detection import detect_records, detect_records_columnar
from ..core.report import ExperimentResult
from ..sim.adversary import scenario_relationships
from ..sim.engine import Engine
from ..sim.scenarios import (
    adversary_day_config,
    run_exchange_day_records,
    simulate,
)
from . import (
    ablations,
    crossexchange,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    pathology,
    table1,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cost
    from ..campaign.config import CampaignConfig

__all__ = [
    "ExperimentSpec",
    "SPECS",
    "EXPERIMENTS",
    "run_experiment",
    "experiment_ids",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment."""

    id: str
    title: str
    paper_context: str
    runner: Callable[[Optional["CampaignConfig"]], ExperimentResult]

    def run(
        self, config: Optional["CampaignConfig"] = None
    ) -> ExperimentResult:
        """Run the experiment (``config`` overrides the default seed)."""
        return self.runner(config)


def _seeded(fn: Callable[..., ExperimentResult], default_seed: int):
    """Adapt a ``run(seed=...)`` runner to the spec signature: the
    config's seed wins when a config is given."""

    def runner(config: Optional["CampaignConfig"] = None) -> ExperimentResult:
        return fn(seed=default_seed if config is None else config.seed)

    return runner


def _sim_scenario(name: str):
    """Adapt a named simulator scenario (see
    :mod:`repro.sim.scenarios`) to the spec signature: run it at smoke
    scale on the calendar and reference engines and check digest
    agreement — plus the parallel driver on the partitionable day."""

    def runner(config: Optional["CampaignConfig"] = None) -> ExperimentResult:
        seed = None if config is None else config.seed
        calendar = simulate(name, engine="calendar", smoke=True, seed=seed)
        reference = simulate(name, engine="reference", smoke=True, seed=seed)
        result = ExperimentResult(
            experiment_id=f"sim-{name}",
            description=f"simulator scenario '{name}' (smoke scale)",
        )
        result.record("events", calendar.events)
        result.record(
            "engines_agree",
            int(calendar.digest == reference.digest),
            expect=1,
        )
        if name == "multi_exchange_day":
            parallel = simulate(
                name, engine="parallel", workers=2, smoke=True, seed=seed
            )
            result.record(
                "parallel_agrees",
                int(parallel.digest == calendar.digest),
                expect=1,
            )
            result.record("parallel_windows", parallel.windows)
        result.notes.append(f"run digest {calendar.digest[:16]}")
        return result

    return runner


#: Each attack's signature detection flag — the one headline counter
#: that must be non-zero for the scenario to count as detected.
_ATTACK_SIGNATURE = {
    "hijack_moas": "moas_conflict",
    "hijack_subprefix": "subprefix_foreign",
    "route_leak": "valley_violation",
    "path_forgery": "forged_edge",
    "deagg_storm": "subprefix_deagg",
}


def _adversary_scenario(kind: str):
    """Adapt an adversarial day scenario to the spec signature.

    Runs the scenario at smoke scale on the calendar engine, checks
    digest agreement with the reference engine and the 2-worker
    parallel driver, runs the detection tier over the merged record
    stream on both the streaming and the columnar implementations
    (which must agree bit for bit), and asserts the attack's signature
    flag actually fired.
    """

    def runner(config: Optional["CampaignConfig"] = None) -> ExperimentResult:
        seed = None if config is None else config.seed
        day = adversary_day_config(kind, smoke=True, seed=seed)
        events, digest, records = run_exchange_day_records(Engine, day)
        reference = simulate(kind, engine="reference", smoke=True, seed=seed)
        parallel = simulate(
            kind, engine="parallel", workers=2, smoke=True, seed=seed
        )
        topology = scenario_relationships(day)
        streamed = detect_records(records, topology)
        columnar = detect_records_columnar(
            records, topology, boundaries=(len(records) // 2,)
        )
        result = ExperimentResult(
            experiment_id=f"sim-{kind}",
            description=f"adversarial scenario '{kind}' (smoke scale)",
        )
        result.record("events", events)
        result.record("updates_observed", len(records))
        result.record(
            "engines_agree", int(digest == reference.digest), expect=1
        )
        result.record(
            "parallel_agrees", int(digest == parallel.digest), expect=1
        )
        result.record(
            "detection_tiers_agree",
            int(
                streamed.flags == columnar.flags
                and streamed.detector.state_digest()
                == columnar.detector.state_digest()
            ),
            expect=1,
        )
        for name, count in streamed.counts.items():
            if count:
                result.record(f"flag_{name}", count)
        signature = _ATTACK_SIGNATURE[kind]
        result.record(
            "signature_detected",
            int(streamed.counts[signature] > 0),
            expect=1,
        )
        result.notes.append(f"signature flag: {signature}")
        result.notes.append(f"run digest {digest[:16]}")
        return result

    return runner


def _unseeded(fn: Callable[[], ExperimentResult]):
    """Adapt a zero-argument runner (ignores any config)."""

    def runner(config: Optional["CampaignConfig"] = None) -> ExperimentResult:
        return fn()

    return runner


_SPEC_LIST = [
    ExperimentSpec(
        "table1",
        "Announcement/withdrawal asymmetry per ISP",
        "Most ISPs withdraw >>10x what they announce; ISP-I: 259 "
        "announced / 2,479,023 withdrawn / 14,112 unique prefixes.",
        _seeded(table1.run, 7),
    ),
    ExperimentSpec(
        "figure1",
        "The five instrumented exchange points",
        "Five U.S. exchange points; Mae-East largest (60+ providers, "
        "route servers peer with >90%).",
        _unseeded(figure1.run),
    ),
    ExperimentSpec(
        "figure2",
        "Monthly update mix by taxonomy category",
        "AADup and WADup consistently dominate the non-WWDup "
        "update mix, April-September.",
        _seeded(figure2.run, 3),
    ),
    ExperimentSpec(
        "figure3",
        "Instability time series with diurnal structure",
        "Diurnal + weekend structure; late-May upgrade lines; 10am "
        "maintenance line; threshold 345->770 per 10-min bin.",
        _seeded(figure3.run, 3),
    ),
    ExperimentSpec(
        "figure4",
        "One week of updates, hour by hour",
        "Bell-shaped weekday curves, quiet weekends, a localized "
        "Saturday spike (Aug 3-9, 1996).",
        _seeded(figure4.run, 3),
    ),
    ExperimentSpec(
        "figure5",
        "Spectral analysis: 24-hour and 7-day lines",
        "FFT and MEM spectra agree on significant frequencies at "
        "24 hours and 7 days; SSA's top five lines confirm.",
        _seeded(figure5.run, 3),
    ),
    ExperimentSpec(
        "figure6",
        "Update share vs routing-table share per AS",
        "Update share uncorrelated with routing-table share; no "
        "consistent dominator AS in any category.",
        _seeded(figure6.run, 3),
    ),
    ExperimentSpec(
        "figure7",
        "Instability concentration across Prefix+AS pairs",
        "80-100% of daily instability from Prefix+AS pairs seen "
        "<50 times; WADiff plateaus fastest; Aug-11 dominator day.",
        _seeded(figure7.run, 4),
    ),
    ExperimentSpec(
        "figure8",
        "Inter-arrival histograms: the 30s/1m timer lines",
        "30-second and 1-minute bins hold ~half the inter-arrival "
        "mass in every category.",
        _seeded(figure8.run, 4),
    ),
    ExperimentSpec(
        "figure9",
        "Daily fraction of routes affected",
        "3-10% of routes see a WADiff per day, 5-20% an AADiff; "
        "35-100% (median 50%) see some update; >80% stable.",
        _seeded(figure9.run, 3),
    ),
    ExperimentSpec(
        "figure10",
        "Multi-homed prefix growth",
        "Multi-homed prefixes grow ~linearly April-December; "
        ">25% of prefixes multi-homed; late-May spike; data gap.",
        _seeded(figure10.run, 3),
    ),
    ExperimentSpec(
        "pathology",
        "Pathological update volumes and the stateless fix",
        "3-6M updates/day vs 42k prefixes; 0.5-6M WWDups/day; "
        "~99% pathological; stateless fix: 2M -> 1905 "
        "withdrawals; 300 updates/s crashes a router.",
        _seeded(pathology.run, 3),
    ),
    ExperimentSpec(
        "crossexchange",
        "Cross-exchange consistency of the category mix",
        "Results at one exchange are representative of "
        "the others - same category mix, different "
        "volumes (section 5).",
        _seeded(crossexchange.run, 3),
    ),
    ExperimentSpec(
        "ablation-damping",
        "Route-flap damping ablation",
        "Damping suppresses flap updates but delays "
        "legitimate re-announcements (section 3).",
        _seeded(ablations.run_damping_study, 5),
    ),
    ExperimentSpec(
        "ablation-aggregation",
        "CIDR aggregation ablation",
        "Aggregation hides customer instability "
        "inside supernets (sections 3, 4.1).",
        _seeded(ablations.run_aggregation_study, 6),
    ),
    ExperimentSpec(
        "ablation-routeserver",
        "Route-server vs full-mesh ablation",
        "Route servers reduce O(N^2) bilateral "
        "sessions to O(N) (section 3).",
        _seeded(ablations.run_route_server_study, 7),
    ),
    ExperimentSpec(
        "ablation-sync",
        "Timer self-synchronization ablation",
        "Unjittered periodic timers self-synchronize "
        "(Floyd-Jacobson; section 4.2).",
        _unseeded(ablations.run_synchronization_study),
    ),
    ExperimentSpec(
        "ablation-storm",
        "Flap-storm containment ablation",
        "Keepalive prioritization contains route-flap "
        "storms (section 3).",
        _seeded(ablations.run_storm_study, 1),
    ),
    ExperimentSpec(
        "ablation-cache",
        "Route-cache churn ablation",
        "Instability churns route caches, causing misses "
        "and packet loss; full-table forwarding hardware "
        "is churn-immune (section 3).",
        _seeded(ablations.run_cache_study, 8),
    ),
    ExperimentSpec(
        "ablation-convergence",
        "MRAI / convergence-delay ablation",
        "Instability delays network convergence; "
        "the MRAI setting trades update volume "
        "against settle time (sections 1, 6).",
        _seeded(ablations.run_convergence_study, 9),
    ),
    ExperimentSpec(
        "ablation-filter",
        "Long-prefix filtering ablation",
        "Filtering long prefixes trades away multi-homed\n"
        "reachability for stability (section 3).",
        _seeded(ablations.run_filter_study, 10),
    ),
    ExperimentSpec(
        "sim-sync_population",
        "Simulator scenario: interval-timer population",
        "Unjittered 30 s timers in phase cohorts with hold-timer "
        "resets and churn (section 4.2) — the calendar queue's "
        "headline workload.",
        _sim_scenario("sync_population"),
    ),
    ExperimentSpec(
        "sim-flap_storm",
        "Simulator scenario: route-flap storm cascade",
        "A CPU-limited router mesh cascading under a flap burst "
        "(section 3) — the adaptive scheduler's heap-fallback "
        "workload.",
        _sim_scenario("flap_storm"),
    ),
    ExperimentSpec(
        "sim-table_dump",
        "Simulator scenario: repeated table dumps",
        "Session bounces re-dumping identical tables over the wire "
        "(section 3) — the memoized codec's workload.",
        _sim_scenario("table_dump"),
    ),
    ExperimentSpec(
        "sim-multi_exchange_day",
        "Simulator scenario: partitioned multi-exchange day",
        "Providers attending several exchanges, customer flaps "
        "propagating between them after backbone latency (section 5) "
        "— the parallel driver's scenario, checked against the "
        "single-engine oracle.",
        _sim_scenario("multi_exchange_day"),
    ),
    ExperimentSpec(
        "sim-hijack_moas",
        "Adversarial scenario: exact-prefix MOAS hijack",
        "An attacker provider originates the victim's exact prefixes; "
        "the MOAS-conflict counter flags every concurrent-origin "
        "announcement (the classic hijack signature).",
        _adversary_scenario("hijack_moas"),
    ),
    ExperimentSpec(
        "sim-hijack_subprefix",
        "Adversarial scenario: more-specific sub-prefix hijack",
        "The attacker announces more-specifics of the victim's "
        "covering prefixes; longest-match steals the traffic and the "
        "foreign-sub-prefix flag fires on every pulse.",
        _adversary_scenario("hijack_subprefix"),
    ),
    ExperimentSpec(
        "sim-route_leak",
        "Adversarial scenario: route leak through transit",
        "A provider re-exports a provider-learned route sideways; the "
        "valley-free (Gao-Rexford) classifier flags the leaked paths "
        "given the declared AS relationships.",
        _adversary_scenario("route_leak"),
    ),
    ExperimentSpec(
        "sim-path_forgery",
        "Adversarial scenario: AS-path forgery",
        "The attacker forges the victim's origin into its own "
        "announcements; the forged adjacency is absent from the "
        "declared topology and trips the forged-edge check.",
        _adversary_scenario("path_forgery"),
    ),
    ExperimentSpec(
        "sim-deagg_storm",
        "Adversarial scenario: deaggregation storm",
        "A misconfigured provider floods more-specifics of its own "
        "aggregates — misconfiguration storm material (section 7), "
        "deaggregation rather than hijack.",
        _adversary_scenario("deagg_storm"),
    ),
]

#: Experiment id → spec, paper order first.
SPECS: Dict[str, ExperimentSpec] = {spec.id: spec for spec in _SPEC_LIST}

#: Back-compat view: experiment id → zero-argument runner returning
#: ExperimentResult (the registry's original shape).
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    spec.id: spec.run for spec in _SPEC_LIST
}


def experiment_ids() -> List[str]:
    """All registered experiment ids, paper order first."""
    return list(SPECS)


def run_experiment(
    experiment_id: str, config: Optional["CampaignConfig"] = None
) -> ExperimentResult:
    """Run one experiment by id; raises KeyError for unknown ids.

    ``config`` (optional) re-parameterizes the run — its seed replaces
    the experiment's default.
    """
    try:
        spec = SPECS[experiment_id]
    except KeyError:
        known = ", ".join(SPECS)
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    return spec.run(config)
