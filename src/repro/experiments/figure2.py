"""Figure 2: breakdown of routing updates by taxonomy category.

Figure 2 stacks daily Mae-East update counts by category from April
through September 1996, *excluding WWDup* "so as not to obscure the
salient features of the other data".  The reading: "both the AADup and
WADup classifications consistently dominate other categories of
routing instability."

The reproduction plans the seven-month campaign with the statistical
generator and reports monthly per-category totals (the aggregate tier
— no records materialized), then checks the dominance ordering.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.report import ExperimentResult, Series, Table
from ..core.taxonomy import UpdateCategory
from ..workloads.generator import TraceGenerator

__all__ = ["run", "CAMPAIGN_DAYS", "MONTH_NAMES"]

#: Campaign day ranges per displayed month (March 1 epoch; Figure 2
#: shows April..September).
MONTHS: Dict[str, range] = {
    "April": range(31, 61),
    "May": range(61, 92),
    "June": range(92, 122),
    "July": range(122, 153),
    "August": range(153, 184),
    "September": range(184, 214),
}
MONTH_NAMES = tuple(MONTHS)
CAMPAIGN_DAYS = range(31, 214)

#: Figure 2's categories (WWDup excluded).
_CATEGORIES = (
    UpdateCategory.AADIFF,
    UpdateCategory.WADIFF,
    UpdateCategory.WADUP,
    UpdateCategory.AADUP,
)


def run(seed: int = 3) -> ExperimentResult:
    generator = TraceGenerator(seed=seed)
    monthly: Dict[str, Dict[UpdateCategory, int]] = {}
    for month, days in MONTHS.items():
        totals = {c: 0 for c in _CATEGORIES}
        for day in days:
            plan = generator.plan_day(day)
            for category in _CATEGORIES:
                totals[category] += plan.category_total(category)
        monthly[month] = totals

    table = Table(
        "Figure 2 — monthly update totals by category (WWDup excluded)",
        ["Month"] + [c.label for c in _CATEGORIES],
    )
    for month, totals in monthly.items():
        table.add_row(month, *(totals[c] for c in _CATEGORIES))

    result = ExperimentResult(
        "figure2",
        "Breakdown of Mae-East routing updates, April-September",
    )
    result.tables.append(table)
    for category in _CATEGORIES:
        series = Series(category.label)
        for i, month in enumerate(MONTHS):
            series.add(i, monthly[month][category])
        result.series.append(series)

    campaign_totals = {
        c: sum(monthly[m][c] for m in MONTHS) for c in _CATEGORIES
    }
    duplicates = (
        campaign_totals[UpdateCategory.AADUP]
        + campaign_totals[UpdateCategory.WADUP]
    )
    differents = (
        campaign_totals[UpdateCategory.AADIFF]
        + campaign_totals[UpdateCategory.WADIFF]
    )
    result.record(
        "dup_to_diff_ratio", duplicates / max(1, differents),
        expect=(1.5, 10.0),
    )
    # AADup and WADup dominate *consistently*: every month.
    months_dominated = sum(
        1
        for m in MONTHS
        if monthly[m][UpdateCategory.AADUP] > monthly[m][UpdateCategory.AADIFF]
        and monthly[m][UpdateCategory.WADUP] > monthly[m][UpdateCategory.WADIFF]
    )
    result.record(
        "months_with_duplicate_dominance",
        months_dominated,
        expect=(len(MONTHS) - 1, len(MONTHS)),
    )
    # The linear growth trend shows up month over month.
    april = sum(monthly["April"].values())
    september = sum(monthly["September"].values())
    result.record(
        "september_to_april_growth", september / max(1, april),
        expect=(1.2, 4.0),
    )
    return result
