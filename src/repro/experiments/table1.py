"""Table 1: per-ISP update totals for one day at AADS.

The paper's table shows, for ten providers on February 1 1997, the
day's announcements, withdrawals, and unique prefixes — with most
providers withdrawing an order of magnitude more than they announce,
and one (ISP-I) announcing 259 prefixes while transmitting 2.48 M
withdrawals for 14 112 distinct prefixes.

The mechanism behind withdrawal-dominance is §4.2's stateless BGP: a
provider's border router carries every exchange route in its table but
*exports* only its own customer routes (the standard no-transit
exchange policy).  When any other provider's route flaps, the topology
change makes a stateless router send a withdrawal to **all** peers —
including the route server, which never received an announcement for
that prefix.  Withdrawals therefore scale with *everyone's* flaps
while announcements scale only with the provider's own.

The experiment builds exactly that: a full-mesh simulated AADS where
ten providers with heterogeneous behaviour (stateless vs stateful,
different customer flap rates, one badly misconfigured ISP-I analogue)
peer with each other and a logging route server.  Absolute volumes are
scaled (hours instead of a day, tens of prefixes instead of 42 k); the
structure is the reproduction target.
"""

from __future__ import annotations

import random
from typing import Dict

from ..bgp.policy import MatchCondition, PolicyTerm, RouteMap
from ..collector.log import CountingLog, MemoryLog
from ..core.report import ExperimentResult, Table
from ..net.prefix import Prefix
from ..sim.engine import Engine
from ..sim.faults import CustomerFlapGenerator, MisconfiguredProvider
from ..sim.router import Router
from ..topology.exchange import ExchangePoint

__all__ = ["run", "PROVIDER_SPECS"]

#: Provider behaviour mirroring Table 1's spread.  ``flaps`` is the
#: per-provider customer flap rate (per second); ``bad`` marks the
#: ISP-I analogue.
PROVIDER_SPECS = {
    "Provider A": dict(stateless=True, flaps=1 / 400.0),
    "Provider B": dict(stateless=True, flaps=1 / 600.0),
    "Provider C": dict(stateless=False, flaps=1 / 2000.0),
    "Provider D": dict(stateless=False, flaps=1 / 1000.0),
    "Provider E": dict(stateless=False, flaps=1 / 120.0),
    "Provider F": dict(stateless=True, flaps=1 / 900.0),
    "Provider G": dict(stateless=True, flaps=1 / 800.0),
    "Provider H": dict(stateless=True, flaps=1 / 60.0),
    "Provider I": dict(stateless=True, flaps=1 / 500.0, bad=True),
    "Provider J": dict(stateless=False, flaps=1 / 100.0),
}


def _own_routes_only(own: list) -> RouteMap:
    """The no-transit exchange export policy: advertise own customer
    routes, deny everything else."""
    return RouteMap(
        [
            PolicyTerm(MatchCondition(prefixes=tuple(own))),
        ],
        name="own-routes-only",
    )


def run(
    duration: float = 3 * 3600.0,
    prefixes_per_provider: int = 40,
    seed: int = 7,
) -> ExperimentResult:
    """Run the Table 1 experiment; see module docstring."""
    engine = Engine()
    sink = MemoryLog()
    exchange = ExchangePoint(engine, name="AADS", sink=sink, full_mesh=True)
    rng = random.Random(seed)
    routers: Dict[str, Router] = {}
    generators = []
    base = 24 << 24
    prefix_index = 0
    all_prefixes = []
    own_prefixes: Dict[str, list] = {}
    for index, (name, spec) in enumerate(PROVIDER_SPECS.items()):
        own = []
        for _ in range(prefixes_per_provider):
            own.append(Prefix(base + prefix_index * 256, 24))
            prefix_index += 1
        own_prefixes[name] = own
        all_prefixes.extend(own)
        router = Router(
            engine,
            asn=100 + index,
            router_id=(10 << 24) + index + 1,
            stateless_bgp=spec.get("stateless", False),
            mrai_interval=30.0,
            mrai_jitter=0.0,
            export_policy=_own_routes_only(own),
            rng=random.Random(seed + index),
            name=name,
        )
        for prefix in own:
            router.originate(prefix)
        exchange.attach_provider(router)
        routers[name] = router
    engine.run_until(150.0)  # establish + table exchange
    sink.clear()             # measure steady state only

    for index, (name, spec) in enumerate(PROVIDER_SPECS.items()):
        router = routers[name]
        if spec.get("flaps"):
            flapper = CustomerFlapGenerator(
                engine,
                router,
                base_rate=spec["flaps"],
                outage_duration=4.0,
                rng=random.Random(seed * 31 + index),
            )
            flapper.start()
            generators.append(flapper)
        if spec.get("bad"):
            foreign = [
                p for p in all_prefixes if p not in set(router.originated)
            ]
            rng.shuffle(foreign)
            bad = MisconfiguredProvider(
                engine,
                router,
                foreign[: min(len(foreign), 300)],
                period=5.0,
                rng=random.Random(seed * 97 + index),
            )
            bad.start()
            generators.append(bad)
    engine.run_until(engine.now + duration)

    counting = CountingLog()
    counting.extend(sink)
    table = Table(
        "Table 1 — per-ISP update totals (simulated AADS day, scaled)",
        ["Provider", "Announce", "Withdraw", "Unique"],
    )
    rows = {}
    for name, router in routers.items():
        row = counting.row(router.asn)
        rows[name] = row
        table.add_row(name, row["announce"], row["withdraw"], row["unique"])

    result = ExperimentResult(
        "table1",
        "Per-ISP announce/withdraw/unique totals for one day at AADS",
    )
    result.tables.append(table)
    bad_row = rows["Provider I"]
    stateless_rows = [
        rows[name]
        for name, spec in PROVIDER_SPECS.items()
        if spec.get("stateless") and not spec.get("bad")
    ]
    stateful_rows = [
        rows[name]
        for name, spec in PROVIDER_SPECS.items()
        if not spec.get("stateless")
    ]
    result.record(
        "isp_i_withdraw_to_announce_ratio",
        bad_row["withdraw"] / max(1, bad_row["announce"]),
        expect=(100.0, float("inf")),
    )
    result.record(
        "isp_i_withdrawals_dominate_day",
        bad_row["withdraw"] / max(1, counting.total),
        expect=(0.5, 1.0),
    )
    over_withdrawers = sum(
        1 for row in stateless_rows if row["withdraw"] > 3 * row["announce"]
    )
    result.record(
        "stateless_providers_withdraw_heavy",
        over_withdrawers,
        expect=(len(stateless_rows) - 1, len(stateless_rows)),
    )
    balanced_stateful = sum(
        1
        for row in stateful_rows
        if row["withdraw"] <= 3 * max(1, row["announce"])
    )
    result.record(
        "stateful_providers_balanced",
        balanced_stateful,
        expect=(len(stateful_rows) - 1, len(stateful_rows)),
    )
    result.notes.append(
        "Volumes are scaled (3 simulated hours, 40 prefixes/provider); "
        "paper's ISP-I: 259 announced / 2,479,023 withdrawn / 14,112 unique."
    )
    return result
