"""Figure 7: cumulative distribution of Prefix+AS updates.

One CDF line per August day per category: the share of the day's
events contributed by Prefix+AS pairs with at most k events.
Readings reproduced and checked:

- "from 80 to 100 percent of the daily instability is contributed by
  Prefix+AS pairs announced less than fifty times";
- AADiff: "from 20 to 90 percent (median ≈75%) of the AADiff events
  are contributed by routes that changed ten times or less";
- WADiff plateaus fastest (highest median mass at small k);
- AADup/WADup have days where ≥5% of events come from pairs with
  200+ events, while WADiff essentially never does;
- rare dominator days (Aug 11: seven routes with 630-650 AADiffs).
"""

from __future__ import annotations

import numpy as np

from ..analysis.distribution import dominated_days, mass_below, monthly_cdfs
from ..core.report import ExperimentResult, Series, Table
from ..core.taxonomy import UpdateCategory
from ..workloads.generator import GeneratorTargets
from .figure6 import AUGUST, classified_month_columns, fine_grained_generator

__all__ = ["run"]


def run(seed: int = 4) -> ExperimentResult:
    # Guarantee at least one dominator day in the month (the paper's
    # Aug 11) by raising the probability slightly.
    targets = GeneratorTargets(dominator_day_probability=0.12)
    generator = fine_grained_generator(seed, targets=targets)
    daily = classified_month_columns(generator, AUGUST)

    result = ExperimentResult(
        "figure7", "Cumulative Prefix+AS update distributions (August)"
    )
    table = Table(
        "Figure 7 — per-category daily CDF summaries",
        [
            "Category",
            "median mass <=10",
            "median mass <=50",
            "days with heavy pairs (>200 events, >5% mass)",
        ],
    )
    curves_by_category = {}
    for category in (
        UpdateCategory.AADIFF,
        UpdateCategory.WADIFF,
        UpdateCategory.AADUP,
        UpdateCategory.WADUP,
    ):
        curves = monthly_cdfs(daily, category)
        curves_by_category[category] = curves
        mass10 = mass_below(curves, 10)
        mass50 = mass_below(curves, 50)
        heavy = dominated_days(curves, k=200, heavy_mass=0.05)
        table.add_row(
            category.label,
            round(float(np.median(mass10)), 3),
            round(float(np.median(mass50)), 3),
            len(heavy),
        )
        series = Series(f"{category.label}: daily mass from pairs <=50 events")
        for curve, mass in zip(curves, mass50):
            series.add(curve.day, round(mass, 3))
        result.series.append(series)
    result.tables.append(table)

    instability_curves = (
        curves_by_category[UpdateCategory.AADIFF]
        + curves_by_category[UpdateCategory.WADIFF]
        + curves_by_category[UpdateCategory.WADUP]
    )
    inst_mass50 = mass_below(instability_curves, 50)
    result.record(
        "instability_mass_below_50_median",
        float(np.median(inst_mass50)),
        expect=(0.8, 1.0),
    )
    aadiff_mass10 = mass_below(
        curves_by_category[UpdateCategory.AADIFF], 10
    )
    result.record(
        "aadiff_mass_below_10_median",
        float(np.median(aadiff_mass10)),
        expect=(0.55, 0.95),
    )
    result.record(
        "aadiff_mass_below_10_min",
        float(np.min(aadiff_mass10)),
        expect=(0.0, 0.6),  # dominator days pull a curve far down
    )
    # WADiff plateaus fastest.
    medians = {
        category: float(np.median(mass_below(curves, 10)))
        for category, curves in curves_by_category.items()
    }
    result.record(
        "wadiff_plateaus_fastest",
        int(
            medians[UpdateCategory.WADIFF]
            >= max(
                medians[UpdateCategory.AADUP],
                medians[UpdateCategory.WADUP],
            )
        ),
        expect=(1, 1),
    )
    heavy_dup_days = len(
        dominated_days(
            curves_by_category[UpdateCategory.AADUP], k=200, heavy_mass=0.05
        )
    )
    heavy_wadiff_days = len(
        dominated_days(
            curves_by_category[UpdateCategory.WADIFF], k=100, heavy_mass=0.05
        )
    )
    result.record("aadup_heavy_days", heavy_dup_days, expect=(1, 31))
    result.record("wadiff_heavy_days", heavy_wadiff_days, expect=(0, 2))

    # The paper's omitted variant: "instability aggregated on prefix
    # alone generated results similar to those shown."  Verify the
    # similarity instead of assuming it.
    from ..analysis.distribution import daily_cdf

    prefix_only_mass = []
    for day, updates in sorted(daily.items()):
        curve = daily_cdf(
            updates, UpdateCategory.AADIFF, day, by_prefix_only=True
        )
        if curve is not None:
            prefix_only_mass.append(curve.mass_at_or_below(10))
    pair_median = float(np.median(aadiff_mass10))
    prefix_median = float(np.median(prefix_only_mass))
    result.record(
        "prefix_only_aggregation_similarity",
        abs(pair_median - prefix_median),
        expect=(0.0, 0.2),
    )
    return result
