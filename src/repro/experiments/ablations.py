"""Ablation studies for the countermeasures the paper discusses.

The paper evaluates (qualitatively) several stability mechanisms; each
gets a quantitative ablation here:

- **Route-flap damping** (§3): suppresses flapping routes but delays
  legitimate re-announcements — both sides measured.
- **Aggregation** (§3/§4.1): a well-aggregated provider absorbs
  customer flaps inside its supernet; a leaky one exports every /24
  flap.
- **Route servers** (§3): O(N²) bilateral sessions vs O(N) through the
  server.
- **Timer jitter** (§4.2): unjittered timers self-synchronize;
  jittered ones do not (the Floyd–Jacobson ablation).
- **Keepalive priority** (§3): whether BGP control traffic priority
  contains route-flap storms.
"""

from __future__ import annotations

import random
from typing import Optional

from ..bgp.damping import DampingParameters, RouteFlapDamper
from ..core.report import ExperimentResult, Table
from ..net.prefix import Prefix
from ..sim.engine import Engine
from ..sim.flapstorm import FlapStormScenario
from ..sim.router import CpuModel, Router, connect
from ..sim.routeserver import RouteServer
from ..sim.sync import SynchronizationStudy
from ..collector.log import MemoryLog
from ..topology.exchange import ExchangePoint

__all__ = [
    "run_damping_study",
    "run_aggregation_study",
    "run_route_server_study",
    "run_synchronization_study",
    "run_storm_study",
    "run_cache_study",
    "run_convergence_study",
    "run_filter_study",
]


def run_damping_study(seed: int = 5, duration: float = 2 * 3600.0) -> ExperimentResult:
    """Flap-damping ablation: update suppression vs reachability delay.

    One flapping customer route plus one well-behaved route, observed
    through a router with and without RFC 2439 damping.
    """
    results = {}
    for damped in (False, True):
        engine = Engine()
        sink = MemoryLog()
        origin = Router(engine, asn=100, router_id=1, mrai_interval=5.0)
        damper = RouteFlapDamper(DampingParameters()) if damped else None
        provider = Router(
            engine, asn=200, router_id=2, mrai_interval=5.0, damper=damper
        )
        server = RouteServer(engine, asn=65000, router_id=99, sink=sink)
        connect(origin, provider)
        connect(provider, server)
        flappy = Prefix.parse("192.0.2.0/24")
        stable = Prefix.parse("198.51.100.0/24")
        origin.originate(flappy)
        origin.originate(stable)
        engine.run_until(60.0)
        sink.clear()
        # Aggressive flapping for 30 minutes, then the route comes up
        # for good (the "legitimate announcement" damping delays).
        t = engine.now
        rng = random.Random(seed)
        for i in range(30):
            engine.schedule_at(
                t + i * 60.0, origin.flap_origin, flappy, 10.0
            )
        settle_time = t + 1900.0
        engine.run_until(engine.now + duration)
        updates_seen = len(sink)
        reachable = provider.loc_rib.best(flappy) is not None
        # When was the flappy route last (re)installed at the provider?
        results[damped] = dict(
            updates=updates_seen,
            finally_reachable=reachable,
            suppressed=damper.suppressed_updates if damper else 0,
        )
    result = ExperimentResult(
        "ablation-damping", "Route-flap damping: suppression vs delay"
    )
    table = Table(
        "Damping ablation",
        ["configuration", "updates at server", "route finally reachable"],
    )
    table.add_row(
        "no damping", results[False]["updates"],
        str(results[False]["finally_reachable"]),
    )
    table.add_row(
        "RFC 2439 damping", results[True]["updates"],
        str(results[True]["finally_reachable"]),
    )
    result.tables.append(table)
    result.record(
        "update_reduction_factor",
        results[False]["updates"] / max(1, results[True]["updates"]),
        expect=(1.5, float("inf")),
    )
    result.record(
        "damped_route_recovers",
        int(results[True]["finally_reachable"]),
        expect=(1, 1),
    )
    result.record(
        "updates_suppressed", results[True]["suppressed"], expect=(1, 10**9)
    )
    return result


def run_aggregation_study(seed: int = 6, duration: float = 3600.0) -> ExperimentResult:
    """Aggregation ablation: a provider running real CIDR aggregation
    (one /16 supernet covering its customers) vs one leaking all 64
    customer /24s, under *identical* customer flapping.  Both sides
    originate the same customer routes; the only difference is
    ``configure_aggregate`` — §4.1's mechanism, implemented in the
    router."""
    results = {}
    block = Prefix.parse("172.16.0.0/16")
    customers = list(block.subnets(24))[:64]
    for aggregated in (True, False):
        engine = Engine()
        sink = MemoryLog()
        provider = Router(engine, asn=100, router_id=1, mrai_interval=30.0)
        server = RouteServer(engine, asn=65000, router_id=99, sink=sink)
        connect(provider, server)
        for prefix in customers:
            provider.originate(prefix)
        if aggregated:
            provider.configure_aggregate(block)
        engine.run_until(90.0)
        sink.clear()
        rng = random.Random(seed)
        t = engine.now
        for _ in range(100):
            t += rng.expovariate(1 / 30.0)
            victim = rng.choice(customers)
            # Outage longer than the 30s MRAI so the withdrawal is
            # actually flushed (shorter flaps collapse inside the
            # batching window — itself a form of rate-limiting).
            engine.schedule_at(t, provider.flap_origin, victim, 45.0)
        engine.run_until(engine.now + duration)
        results[aggregated] = dict(
            updates=len(sink),
            table=len(server.loc_rib),
        )
    result = ExperimentResult(
        "ablation-aggregation",
        "CIDR aggregation: supernet vs leaked customer specifics",
    )
    table = Table(
        "Aggregation ablation",
        ["configuration", "globally visible prefixes", "updates at server"],
    )
    table.add_row("aggregated /16", results[True]["table"],
                  results[True]["updates"])
    table.add_row("64 leaked /24s", results[False]["table"],
                  results[False]["updates"])
    result.tables.append(table)
    result.record(
        "table_reduction", results[False]["table"] / max(1, results[True]["table"]),
        expect=(32.0, 128.0),
    )
    result.record(
        "aggregated_updates", results[True]["updates"], expect=(0, 2)
    )
    result.record(
        "leaky_updates", results[False]["updates"], expect=(50, 10**6)
    )
    return result


def run_route_server_study(n_providers: int = 12, seed: int = 7) -> ExperimentResult:
    """Route-server ablation: bilateral full mesh (O(N²) sessions) vs
    route-server peering (O(N)), with equal reachability."""
    configs = {}
    for full_mesh in (True, False):
        engine = Engine()
        exchange = ExchangePoint(
            engine, sink=MemoryLog(), full_mesh=full_mesh
        )
        exchange.route_server.readvertise = not full_mesh
        routers = []
        for i in range(n_providers):
            router = Router(
                engine, asn=100 + i, router_id=(10 << 24) + i + 1,
                mrai_interval=5.0, rng=random.Random(seed + i),
            )
            router.originate(Prefix((30 << 24) + i * 65536, 16))
            exchange.attach_provider(router)
            routers.append(router)
        engine.run_until(300.0)
        # Reachability: every provider sees every other's prefix.
        reachable = sum(
            1
            for router in routers
            for other in routers
            if other is not router
            and router.loc_rib.best(other.originated[0]) is not None
        )
        configs[full_mesh] = dict(
            sessions=exchange.session_count,
            reachable=reachable,
        )
    result = ExperimentResult(
        "ablation-routeserver",
        "Exchange peering: O(N^2) bilateral mesh vs O(N) route server",
    )
    expected_pairs = n_providers * (n_providers - 1)
    table = Table(
        "Route-server ablation",
        ["configuration", "sessions", "reachable provider pairs"],
    )
    table.add_row("bilateral full mesh", configs[True]["sessions"],
                  configs[True]["reachable"])
    table.add_row("route server", configs[False]["sessions"],
                  configs[False]["reachable"])
    result.tables.append(table)
    result.record(
        "mesh_sessions",
        configs[True]["sessions"],
        expect=n_providers + n_providers * (n_providers - 1) // 2,
    )
    result.record(
        "server_sessions", configs[False]["sessions"], expect=n_providers
    )
    result.record(
        "mesh_reachability", configs[True]["reachable"], expect=expected_pairs
    )
    result.record(
        "server_reachability",
        configs[False]["reachable"],
        expect=expected_pairs,
    )
    return result


def run_synchronization_study(hours: float = 24.0) -> ExperimentResult:
    """Timer-jitter ablation on the Floyd–Jacobson model."""
    result = ExperimentResult(
        "ablation-sync",
        "Self-synchronization of unjittered 30-second timers",
    )
    table = Table(
        "Synchronization ablation",
        ["jitter", "seed", "final phase coherence"],
    )
    unjittered = []
    jittered = []
    for seed in (3, 7, 11):
        for jitter, bucket in ((0.0, unjittered), (0.25, jittered)):
            study = SynchronizationStudy(jitter=jitter, seed=seed)
            study.advance(hours * 3600.0)
            coherence = study.final_coherence()
            bucket.append(coherence)
            table.add_row(str(jitter), seed, round(coherence, 3))
    result.tables.append(table)
    result.record(
        "unjittered_min_coherence", min(unjittered), expect=(0.9, 1.0)
    )
    result.record(
        "jittered_max_coherence", max(jittered), expect=(0.0, 0.8)
    )
    return result


def run_cache_study(seed: int = 8, duration: float = 1800.0) -> ExperimentResult:
    """Router-architecture ablation: route-caching line cards vs the
    "new generation of routers that ... maintain the full routing table
    in memory on the forwarding hardware" (§3), under identical
    instability and identical traffic.
    """
    from ..sim.router import RouteCache
    from ..sim.trafficgen import ForwardingWorkload

    results = {}
    prefixes = [Prefix((60 << 24) + i * 256, 24) for i in range(200)]
    window = 300.0
    for cached in (True, False):
        engine = Engine()
        origin = Router(engine, asn=100, router_id=1, mrai_interval=2.0)
        cache = RouteCache(capacity=400) if cached else None
        forwarding = Router(
            engine, asn=200, router_id=2, mrai_interval=2.0,
            cpu=CpuModel(per_update=0.02),
            # Capacity exceeds the working set, so warm-state misses
            # are compulsory only — the churn contrast stays visible.
            cache=cache,
        )
        connect(origin, forwarding)
        for prefix in prefixes:
            origin.originate(prefix)
        engine.run_until(120.0)
        # Phase A: fill the cache.
        filler = ForwardingWorkload(
            engine, forwarding, prefixes, rate=200.0,
            rng=random.Random(seed),
        )
        filler.start()
        engine.run_until(engine.now + 120.0)
        filler.stop()
        # Phase B: a quiet measurement window.
        quiet = ForwardingWorkload(
            engine, forwarding, prefixes, rate=200.0,
            rng=random.Random(seed + 1),
        )
        quiet.start()
        engine.run_until(engine.now + window)
        quiet.stop()
        # Phase C: identical window under instability.
        rng = random.Random(seed + 2)
        t = engine.now
        while t < engine.now + window:
            t += rng.expovariate(1 / 2.0)
            engine.schedule_at(
                t, origin.flap_origin, rng.choice(prefixes), 3.0
            )
        unstable = ForwardingWorkload(
            engine, forwarding, prefixes, rate=200.0,
            rng=random.Random(seed + 3),
        )
        unstable.start()
        engine.run_until(engine.now + window)
        unstable.stop()
        results[cached] = dict(
            quiet=quiet.stats,
            unstable=unstable.stats,
            invalidations=cache.invalidations if cache else 0,
        )
    result = ExperimentResult(
        "ablation-cache",
        "Route-cache architecture vs full-table forwarding",
    )
    table = Table(
        "Cache ablation (equal quiet vs unstable windows)",
        [
            "architecture",
            "quiet misses",
            "unstable misses",
            "quiet loss",
            "unstable loss",
        ],
    )
    for cached, label in ((True, "route-caching line card"),
                          (False, "full-table forwarding")):
        data = results[cached]
        quiet_misses = data["quiet"].delivered_slow
        unstable_misses = data["unstable"].delivered_slow
        table.add_row(
            label,
            quiet_misses,
            unstable_misses,
            round(data["quiet"].loss_rate, 4),
            round(data["unstable"].loss_rate, 4),
        )
    result.tables.append(table)
    cached_data = results[True]
    result.record(
        "instability_churns_cache",
        cached_data["unstable"].delivered_slow
        / max(1, cached_data["quiet"].delivered_slow),
        expect=(3.0, float("inf")),
    )
    result.record(
        "cache_invalidations", cached_data["invalidations"],
        expect=(50, 10**9),
    )
    result.record(
        "instability_causes_loss",
        cached_data["unstable"].loss_rate
        / max(cached_data["quiet"].loss_rate, 1e-9),
        expect=(1.0, float("inf")),
    )
    result.notes.append(
        "The full-table router misses by definition (every lookup is a "
        "RIB lookup) but its behaviour is churn-independent — the "
        "paper's 'new generation' architecture."
    )
    return result


def run_convergence_study(seed: int = 9) -> ExperimentResult:
    """Convergence-time study: how long the network chatters after one
    legitimate topology change, as a function of the MRAI setting —
    the paper's "delays in the time for network convergence" effect,
    measured.
    """
    from ..analysis.convergence import ConvergenceProbe
    from ..sim.routeserver import RouteServer

    results = {}
    for mrai in (5.0, 30.0):
        engine = Engine()
        sink = MemoryLog()
        origin = Router(engine, asn=100, router_id=1, mrai_interval=mrai)
        middle_a = Router(engine, asn=200, router_id=2, mrai_interval=mrai)
        middle_b = Router(engine, asn=300, router_id=3, mrai_interval=mrai)
        server = RouteServer(engine, asn=65000, router_id=99, sink=sink)
        connect(origin, middle_a)
        connect(origin, middle_b)
        connect(middle_a, middle_b)
        connect(middle_a, server)
        connect(middle_b, server)
        prefix = Prefix.parse("192.0.2.0/24")
        origin.originate(prefix)
        engine.run_until(200.0)
        sink.clear()
        # The settle horizon must end before the next probe event, or
        # the next event's updates inflate this one's settle time.
        probe = ConvergenceProbe(engine, sink, settle_horizon=250.0)
        rng = random.Random(seed)
        for i in range(10):
            engine.schedule(
                i * 400.0 + rng.uniform(0, 50.0),
                probe.flap, origin, prefix, 2 * mrai,
            )
        engine.run_until(engine.now + 10 * 400.0 + 600.0)
        results[mrai] = probe.report()
    result = ExperimentResult(
        "ablation-convergence",
        "Convergence time after a topology change vs MRAI setting",
    )
    table = Table(
        "Convergence study",
        ["MRAI (s)", "events", "mean settle (s)", "worst settle (s)"],
    )
    for mrai, report in results.items():
        table.add_row(
            mrai, report.count, round(report.mean, 1),
            round(report.worst, 1),
        )
    result.tables.append(table)
    result.record(
        "fast_timer_mean_settle", results[5.0].mean, expect=(1.0, 60.0)
    )
    result.record(
        "slow_timer_mean_settle", results[30.0].mean, expect=(10.0, 240.0)
    )
    result.record(
        "mrai_slows_convergence",
        results[30.0].mean / max(results[5.0].mean, 1e-6),
        expect=(1.2, float("inf")),
    )
    result.record(
        "events_observed",
        results[5.0].count + results[30.0].count,
        expect=(12, 20),
    )
    return result


def run_filter_study(seed: int = 10, duration: float = 3600.0) -> ExperimentResult:
    """Prefix-length filtering: the "draconian" stability enforcement.

    §3: "A number of ISPs have implemented a more draconian version of
    enforcing stability by filtering all route announcements longer
    than a given prefix length."  The trade-off measured here: a
    filtering router sees far fewer flap updates from long-prefix
    (customer-sized) routes — but also loses reachability to every
    multi-homed /24 behind the filter.
    """
    from ..bgp.policy import MatchCondition, PolicyTerm, RouteMap

    short_prefixes = [Prefix((70 + i) << 24, 8) for i in range(4)]
    long_prefixes = [
        Prefix((80 << 24) + i * 256, 24) for i in range(40)
    ]
    results = {}
    for filtered in (False, True):
        engine = Engine()
        origin = Router(engine, asn=100, router_id=1, mrai_interval=10.0)
        import_policy = None
        if filtered:
            import_policy = RouteMap(
                [
                    PolicyTerm(
                        MatchCondition(
                            prefixes=(Prefix(0, 0),), ge=0, le=20
                        )
                    ),
                ],
                name="le-20-only",
            )
        observer = Router(
            engine, asn=200, router_id=2, mrai_interval=10.0,
            import_policy=import_policy,
        )
        connect(origin, observer)
        for prefix in short_prefixes + long_prefixes:
            origin.originate(prefix)
        engine.run_until(90.0)
        updates_before = observer.updates_received
        rng = random.Random(seed)
        t = engine.now
        for _ in range(80):
            t += rng.expovariate(1 / 30.0)
            engine.schedule_at(
                t, origin.flap_origin, rng.choice(long_prefixes), 25.0
            )
        engine.run_until(engine.now + duration)
        reachable_long = sum(
            1
            for prefix in long_prefixes
            if observer.loc_rib.best(prefix) is not None
        )
        reachable_short = sum(
            1
            for prefix in short_prefixes
            if observer.loc_rib.best(prefix) is not None
        )
        results[filtered] = dict(
            table=len(observer.loc_rib),
            reachable_long=reachable_long,
            reachable_short=reachable_short,
        )
    result = ExperimentResult(
        "ablation-filter",
        "Prefix-length filtering: stability vs reachability",
    )
    table = Table(
        "Prefix-length filter ablation",
        ["configuration", "table size", "/24s reachable", "/8s reachable"],
    )
    table.add_row(
        "no filter", results[False]["table"],
        results[False]["reachable_long"], results[False]["reachable_short"],
    )
    table.add_row(
        "filter > /20", results[True]["table"],
        results[True]["reachable_long"], results[True]["reachable_short"],
    )
    result.tables.append(table)
    result.record(
        "filtered_table_shrinks",
        results[False]["table"] / max(1, results[True]["table"]),
        expect=(5.0, 50.0),
    )
    result.record(
        "short_prefixes_survive_filter",
        results[True]["reachable_short"],
        expect=len(short_prefixes),
    )
    result.record(
        "long_prefixes_lost_to_filter",
        results[True]["reachable_long"],
        expect=(0, 0),
    )
    result.notes.append(
        "The filter removes the flapping /24s' update load entirely - "
        "by removing the /24s: the paper's 'artificial connectivity "
        "problems' made concrete."
    )
    return result


def run_storm_study(seed: int = 1) -> ExperimentResult:
    """Keepalive-priority ablation on the flap-storm scenario."""
    cpu = dict(per_update=0.1, per_sent_update=0.05, per_dump_route=0.05)
    kwargs = dict(
        n_routers=5, prefixes_per_router=40, hold_time=30.0, seed=seed
    )
    vulnerable = FlapStormScenario(
        cpu=CpuModel(**cpu), keepalive_priority=False, **kwargs
    )
    protected = FlapStormScenario(
        cpu=CpuModel(**cpu), keepalive_priority=True, **kwargs
    )
    storm = vulnerable.storm(flaps=600, over_seconds=20.0)
    calm = protected.storm(flaps=600, over_seconds=20.0)
    result = ExperimentResult(
        "ablation-storm",
        "Route-flap storms and the keepalive-priority fix",
    )
    table = Table(
        "Storm ablation",
        ["configuration", "session drops", "updates sent"],
    )
    table.add_row("FIFO keepalives", storm.session_drops,
                  storm.total_updates_sent)
    table.add_row("prioritized keepalives", calm.session_drops,
                  calm.total_updates_sent)
    result.tables.append(table)
    result.record("storm_session_drops", storm.session_drops, expect=(10, 10**6))
    result.record(
        "containment_factor",
        storm.session_drops / max(1, calm.session_drops),
        expect=(4.0, float("inf")),
    )
    return result
