"""Mergeable campaign results.

A campaign shard produces a :class:`PartialResult` — every aggregate
the paper's headline analyses need, in a form that merges with ``+``:

- taxonomy tallies (:class:`~repro.core.instability.CategoryCounts`),
- the binned update time series
  (:class:`~repro.analysis.timeseries.BinnedSeries`),
- per-peer and per-prefix count tables (key-union, value-sum),
- raw inter-arrival histograms (integer bin-count arrays),
- distinct active Prefix+AS pairs per day,
- per-exchange taxonomy tallies.

Every component's merge is associative and commutative over integers
with an explicit identity (:meth:`PartialResult.empty`), so the order
in which shards complete — and the tree shape in which partials are
folded — never changes the merged campaign result.  The runner still
folds in shard-index order for good measure; the associativity is
proven by test (``tests/test_campaign.py``).

Partials serialize to a canonical JSON payload
(:meth:`PartialResult.to_payload`) used three ways: shipping results
from worker processes to the parent, persisting completed shards for
``--resume``, and digesting outputs for the shard manifest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..analysis.interarrival import (
    FIGURE8_BINS,
    proportions_from_counts,
    timer_bin_mass,
)
from ..analysis.timeseries import BinnedSeries
from ..core.instability import CategoryCounts
from ..net.prefix import Prefix
from .config import CampaignConfig, canonical_json, sha256_text

__all__ = [
    "COMMUTATIVE_MERGES",
    "PartialResult",
    "ShardResult",
    "ShardTimings",
    "CampaignResult",
    "merge_partials",
]

#: Key for the all-categories inter-arrival histogram.
TOTAL = "TOTAL"


def _merge_count_tables(
    a: Dict[int, CategoryCounts], b: Dict[int, CategoryCounts]
) -> Dict[int, CategoryCounts]:
    out = dict(a)
    for key, counts in b.items():
        existing = out.get(key)
        out[key] = counts if existing is None else existing + counts
    return out


def _merge_int_tables(a: Dict, b: Dict) -> Dict:
    out = dict(a)
    for key, value in b.items():
        out[key] = out.get(key, 0) + value
    return out


def _merge_histograms(
    a: Dict[str, np.ndarray], b: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    out = dict(a)
    for key, counts in b.items():
        existing = out.get(key)
        out[key] = counts.copy() if existing is None else existing + counts
    return out


@dataclass
class PartialResult:
    """One shard's aggregates (or any merge of several shards')."""

    records: int = 0
    counts: CategoryCounts = field(default_factory=CategoryCounts)
    bins: BinnedSeries = field(default_factory=BinnedSeries.empty)
    #: Inter-arrival histogram counts per category name plus ``TOTAL``.
    interarrival: Dict[str, np.ndarray] = field(default_factory=dict)
    by_peer: Dict[int, CategoryCounts] = field(default_factory=dict)
    by_prefix: Dict[Prefix, int] = field(default_factory=dict)
    pairs_per_day: Dict[int, int] = field(default_factory=dict)
    by_exchange: Dict[str, CategoryCounts] = field(default_factory=dict)

    @classmethod
    def empty(cls) -> "PartialResult":
        """The merge identity."""
        return cls()

    def __add__(self, other: object) -> "PartialResult":
        if isinstance(other, int) and other == 0:  # sum() start value
            return self
        if not isinstance(other, PartialResult):
            return NotImplemented
        return PartialResult(
            records=self.records + other.records,
            counts=self.counts + other.counts,
            bins=self.bins + other.bins,
            interarrival=_merge_histograms(
                self.interarrival, other.interarrival
            ),
            by_peer=_merge_count_tables(self.by_peer, other.by_peer),
            by_prefix=_merge_int_tables(self.by_prefix, other.by_prefix),
            pairs_per_day=_merge_int_tables(
                self.pairs_per_day, other.pairs_per_day
            ),
            by_exchange=_merge_count_tables(
                self.by_exchange, other.by_exchange
            ),
        )

    __radd__ = __add__

    # -- serialization ------------------------------------------------------

    def to_payload(self) -> dict:
        """Canonical plain-data form (sorted keys, no zero entries)."""
        return {
            "records": self.records,
            "counts": self.counts.nonzero_dict(),
            "policy_changes": self.counts.policy_changes,
            "bins": self.bins.to_payload(),
            "interarrival": {
                name: counts.tolist()
                for name, counts in sorted(self.interarrival.items())
                if counts.any()
            },
            "by_peer": {
                str(asn): {
                    "counts": counts.nonzero_dict(),
                    "policy_changes": counts.policy_changes,
                }
                for asn, counts in sorted(self.by_peer.items())
            },
            "by_prefix": {
                str(prefix): count
                for prefix, count in sorted(
                    self.by_prefix.items(),
                    key=lambda item: (item[0].network, item[0].length),
                )
            },
            "pairs_per_day": {
                str(day): count
                for day, count in sorted(self.pairs_per_day.items())
            },
            "by_exchange": {
                name: {
                    "counts": counts.nonzero_dict(),
                    "policy_changes": counts.policy_changes,
                }
                for name, counts in sorted(self.by_exchange.items())
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "PartialResult":
        def counts_of(entry: dict) -> CategoryCounts:
            return CategoryCounts.from_dict(
                entry["counts"], int(entry.get("policy_changes", 0))
            )

        return cls(
            records=int(payload["records"]),
            counts=CategoryCounts.from_dict(
                payload["counts"], int(payload["policy_changes"])
            ),
            bins=BinnedSeries.from_payload(payload["bins"]),
            interarrival={
                name: np.asarray(counts, dtype=np.int64)
                for name, counts in payload["interarrival"].items()
            },
            by_peer={
                int(asn): counts_of(entry)
                for asn, entry in payload["by_peer"].items()
            },
            by_prefix={
                Prefix.parse(text): int(count)
                for text, count in payload["by_prefix"].items()
            },
            pairs_per_day={
                int(day): int(count)
                for day, count in payload["pairs_per_day"].items()
            },
            by_exchange={
                name: counts_of(entry)
                for name, entry in payload["by_exchange"].items()
            },
        )

    def digest(self) -> str:
        return sha256_text(canonical_json(self.to_payload()))

    # -- analysis conveniences ---------------------------------------------

    def interarrival_proportions(self, name: str = TOTAL) -> List[float]:
        counts = self.interarrival.get(name)
        if counts is None:
            counts = np.zeros(len(FIGURE8_BINS), dtype=np.int64)
        return proportions_from_counts(counts)

    @property
    def timer_mass(self) -> float:
        """Combined 30s+1m inter-arrival mass (paper: ~half)."""
        return timer_bin_mass(self.interarrival_proportions())


@dataclass(slots=True)
class ShardTimings:
    """Per-phase wall-clock seconds for one shard (or a whole run).

    ``generate`` covers :meth:`TraceGenerator.day_columns`,
    ``classify`` the :class:`ColumnClassifier` pass, ``fold`` the
    remaining per-day aggregation.  All zero unless a clock was
    injected (see :mod:`repro.campaign.fold`) — timings are
    observability, never part of any digest or manifest.
    """

    generate: float = 0.0
    classify: float = 0.0
    fold: float = 0.0

    def __add__(self, other: object) -> "ShardTimings":
        if isinstance(other, int) and other == 0:  # sum() start value
            return self
        if not isinstance(other, ShardTimings):
            return NotImplemented
        return ShardTimings(
            generate=self.generate + other.generate,
            classify=self.classify + other.classify,
            fold=self.fold + other.fold,
        )

    __radd__ = __add__

    def to_payload(self) -> Dict[str, float]:
        return {
            "generate_seconds": self.generate,
            "classify_seconds": self.classify,
            "fold_seconds": self.fold,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, float]) -> "ShardTimings":
        return cls(
            generate=float(payload.get("generate_seconds", 0.0)),
            classify=float(payload.get("classify_seconds", 0.0)),
            fold=float(payload.get("fold_seconds", 0.0)),
        )


#: Every ``+``-mergeable result type in the campaign pipeline.  A class
#: listed here asserts: ``__add__`` is associative and commutative over
#: its contents, with an explicit identity.  ``repro.lint`` (MRG001)
#: requires every ``__add__``-defining class in this module to appear
#: here and to merge all of its dataclass fields; the campaign property
#: tests exercise merge-order independence over these types.
COMMUTATIVE_MERGES = (
    CategoryCounts,
    BinnedSeries,
    PartialResult,
    ShardTimings,
)


def merge_partials(partials: List[PartialResult]) -> PartialResult:
    """Fold partials left to right (callers pass shard-index order)."""
    total = PartialResult.empty()
    for partial in partials:
        total = total + partial
    return total


@dataclass
class ShardResult:
    """A completed shard: its spec echo plus the partial aggregates.

    ``chunks`` mirrors the manifest's per-day spill-chunk descriptors
    (``{"day", "file", "rows", "sha256"}`` each); empty for in-memory
    runs that never spilled.
    """

    index: int
    exchange: str
    day_lo: int
    day_hi: int
    records: int
    partial: PartialResult
    chunks: List[dict] = field(default_factory=list)


@dataclass
class CampaignResult:
    """The merged outcome of a campaign run."""

    config: CampaignConfig
    partial: PartialResult
    shard_count: int
    shards_run: int
    shards_loaded: int
    #: Per-phase seconds (``generate_seconds`` / ``classify_seconds``
    #: / ``fold_seconds``) summed over shards that ran — present only
    #: when a clock was injected into :func:`run_campaign`; purely
    #: observational, never part of any digest.
    timings: Optional[Dict[str, float]] = None

    @property
    def complete(self) -> bool:
        return self.shards_run + self.shards_loaded == self.shard_count

    # Delegates the analyses read most.
    @property
    def records(self) -> int:
        return self.partial.records

    @property
    def counts(self) -> CategoryCounts:
        return self.partial.counts

    @property
    def timer_mass(self) -> float:
        return self.partial.timer_mass

    def bin_counts(self) -> np.ndarray:
        """The full campaign time series, dense from bin 0."""
        return self.partial.bins.dense(self.config.total_bins)

    def daily_totals(self) -> np.ndarray:
        return self.bin_counts().reshape(
            self.config.days, self.config.bins_per_day
        ).sum(axis=1)

    def affected_fractions(self) -> np.ndarray:
        """Per-day share of Prefix+AS pairs with >= 1 event (days with
        no events are skipped, like the paper's gap days)."""
        total_pairs = self.config.population().total_pairs
        per_day = np.zeros(self.config.days, dtype=np.int64)
        for day, count in self.partial.pairs_per_day.items():
            if 0 <= day < self.config.days:
                per_day[day] = count
        active = per_day[per_day > 0]
        return active / float(total_pairs * len(self.config.exchanges))

    def to_payload(self) -> dict:
        return {
            "config": self.config.to_payload(),
            "result": self.partial.to_payload(),
            "shards": self.shard_count,
        }
