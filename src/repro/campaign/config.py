"""The unified campaign configuration.

:class:`CampaignConfig` is the single way to parameterize a
multi-day run: how many days, which seed, how large a peer
population, how many shards, where output goes, and which exchange
points are instrumented.  Everything downstream — the sharded runner,
the CLI, the examples, the benchmark harness — derives its inputs
from one of these, so two runs with equal configs are guaranteed to
describe the same workload.

A config deterministically expands into a **shard plan**
(:meth:`CampaignConfig.shard_plan`): one :class:`ShardSpec` per
(exchange, contiguous day range).  A shard is a pure function of
``(config, spec)`` — each shard synthesizes its own generator and
classifier from the spec's seeds — so the plan can be executed by any
number of worker processes, in any order, and the merged result is
bit-identical to a single-process run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..collector.store import SECONDS_PER_DAY
from ..core.taxonomy import UpdateCategory
from ..topology.exchange import exchange_by_name

__all__ = ["CampaignConfig", "ShardSpec", "canonical_json", "sha256_text"]

#: Seed stride between exchanges: each exchange's generator seed is
#: ``seed + exchange_index * EXCHANGE_SEED_STRIDE``, so the first
#: (default) exchange reproduces a plain ``TraceGenerator(seed=seed)``
#: stream exactly.
EXCHANGE_SEED_STRIDE = 10_007


def canonical_json(payload) -> str:
    """The one serialized form used for digests and fingerprints."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ShardSpec:
    """One unit of campaign work: a contiguous day range at one
    exchange, with the seeds that make it self-contained."""

    index: int
    exchange: str
    day_lo: int  # inclusive
    day_hi: int  # exclusive
    population_seed: int
    generator_seed: int

    @property
    def days(self) -> range:
        return range(self.day_lo, self.day_hi)

    @property
    def name(self) -> str:
        return f"shard-{self.index:04d}"

    def to_payload(self) -> dict:
        return {
            "index": self.index,
            "exchange": self.exchange,
            "days": [self.day_lo, self.day_hi],
            "population_seed": self.population_seed,
            "generator_seed": self.generator_seed,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ShardSpec":
        return cls(
            index=int(payload["index"]),
            exchange=payload["exchange"],
            day_lo=int(payload["days"][0]),
            day_hi=int(payload["days"][1]),
            population_seed=int(payload["population_seed"]),
            generator_seed=int(payload["generator_seed"]),
        )


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that defines a campaign run.  See module docstring.

    ``shards`` counts day-range chunks per exchange; the total number
    of shard tasks is ``shards * len(exchanges)``.  ``categories``
    optionally restricts generation to a subset of taxonomy category
    names (e.g. the fine-grained set — no WWDup flood); ``None`` means
    all planned categories.  ``out`` is the output/manifest directory;
    ``None`` runs fully in memory (no archives, no resume).
    """

    days: int = 14
    seed: int = 11
    n_peers: int = 30
    total_prefixes: int = 4000
    shards: int = 4
    out: Optional[str] = None
    exchanges: Tuple[str, ...] = ("Mae-East",)
    pair_fraction: float = 1.0
    categories: Optional[Tuple[str, ...]] = None
    bin_width: float = 600.0

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ValueError("days must be >= 1")
        if not (1 <= self.shards <= self.days):
            raise ValueError(
                f"shards must be in [1, days]; got {self.shards} "
                f"for {self.days} days"
            )
        if not (0.0 < self.pair_fraction <= 1.0):
            raise ValueError("pair_fraction must be in (0, 1]")
        if self.bin_width <= 0 or SECONDS_PER_DAY % self.bin_width:
            raise ValueError(
                "bin_width must positively divide a day "
                f"({SECONDS_PER_DAY}s); got {self.bin_width}"
            )
        if not self.exchanges:
            raise ValueError("at least one exchange is required")
        object.__setattr__(self, "exchanges", tuple(self.exchanges))
        for name in self.exchanges:
            exchange_by_name(name)  # raises KeyError for unknown names
        if self.out is not None:
            object.__setattr__(self, "out", str(self.out))
        if self.categories is not None:
            names = tuple(str(c).upper() for c in self.categories)
            for name in names:
                UpdateCategory[name]  # raises KeyError for unknown names
            object.__setattr__(self, "categories", names)

    # -- derived workload shape ---------------------------------------------

    @property
    def bins_per_day(self) -> int:
        return int(SECONDS_PER_DAY // self.bin_width)

    @property
    def total_bins(self) -> int:
        return self.days * self.bins_per_day

    def category_set(self) -> Optional[Tuple[UpdateCategory, ...]]:
        """The configured categories as enum members (None = all)."""
        if self.categories is None:
            return None
        return tuple(UpdateCategory[name] for name in self.categories)

    def population(self):
        """The (shared) peer population this config describes."""
        from ..workloads.generator import PeerPopulation

        return PeerPopulation.synthesize(
            n_peers=self.n_peers,
            total_prefixes=self.total_prefixes,
            seed=self.seed,
        )

    # -- shard planning -----------------------------------------------------

    def day_ranges(self) -> List[Tuple[int, int]]:
        """``shards`` contiguous, near-equal ``[lo, hi)`` day chunks."""
        base, extra = divmod(self.days, self.shards)
        ranges: List[Tuple[int, int]] = []
        lo = 0
        for i in range(self.shards):
            hi = lo + base + (1 if i < extra else 0)
            ranges.append((lo, hi))
            lo = hi
        return ranges

    def shard_plan(self) -> List[ShardSpec]:
        """The full task list, exchange-major, indexed contiguously."""
        plan: List[ShardSpec] = []
        for ex_index, exchange in enumerate(self.exchanges):
            generator_seed = self.seed + ex_index * EXCHANGE_SEED_STRIDE
            for lo, hi in self.day_ranges():
                plan.append(
                    ShardSpec(
                        index=len(plan),
                        exchange=exchange,
                        day_lo=lo,
                        day_hi=hi,
                        population_seed=self.seed,
                        generator_seed=generator_seed,
                    )
                )
        return plan

    # -- serialization ------------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "days": self.days,
            "seed": self.seed,
            "n_peers": self.n_peers,
            "total_prefixes": self.total_prefixes,
            "shards": self.shards,
            "exchanges": list(self.exchanges),
            "pair_fraction": self.pair_fraction,
            "categories": (
                None if self.categories is None else list(self.categories)
            ),
            "bin_width": self.bin_width,
        }

    @classmethod
    def from_payload(cls, payload: dict, out: Optional[str] = None) -> "CampaignConfig":
        return cls(
            days=int(payload["days"]),
            seed=int(payload["seed"]),
            n_peers=int(payload["n_peers"]),
            total_prefixes=int(payload["total_prefixes"]),
            shards=int(payload["shards"]),
            out=out,
            exchanges=tuple(payload["exchanges"]),
            pair_fraction=float(payload["pair_fraction"]),
            categories=(
                None
                if payload["categories"] is None
                else tuple(payload["categories"])
            ),
            bin_width=float(payload["bin_width"]),
        )

    def fingerprint(self) -> str:
        """Digest identifying the *workload* (``out`` excluded, so a
        moved output directory still resumes)."""
        return sha256_text(canonical_json(self.to_payload()))
