"""Zero-copy shard handoff: descriptors across the pool, not pickles.

The original pool path returned each shard's full
:class:`~repro.campaign.results.PartialResult` payload through
``imap_unordered`` — a pickle of every aggregate, serialized in the
worker, deserialized in the parent, scaling with shard size.  This
module replaces that with a descriptor handoff: the worker publishes
its canonical result payload out-of-band and returns only a small
:class:`ShardHandoff` carrying counts, chunk descriptors, and a
sha256; the parent collects the payload, verifies the digest, and
folds it incrementally.

Transports, picked automatically:

- ``file``: the campaign has an output directory — the worker writes
  the shard's result file itself (the same bytes the manifest will
  digest), so the payload crosses processes via the filesystem.
- ``shm``: in-memory campaigns — the payload bytes go into a
  ``multiprocessing.shared_memory`` block the parent attaches, reads,
  and unlinks; nothing but the descriptor crosses the pipe.
- ``inline``: fallback when shared memory is unavailable (exotic
  platforms); the bytes ride inside the descriptor.

Digest verification happens in the parent for every transport, so a
torn file or stray shared-memory write surfaces as
:class:`HandoffError` instead of a silently wrong merge.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional

from .config import ShardSpec, canonical_json, sha256_text
from .manifest import CampaignLayout

__all__ = [
    "HandoffError",
    "ShardHandoff",
    "TRANSFERABLE_TYPES",
    "publish_partial",
    "collect_partial",
]


class HandoffError(RuntimeError):
    """A worker's published payload failed retrieval or digest check."""


@dataclass(slots=True)
class ShardHandoff:
    """What a pool worker returns: a lightweight shard descriptor.

    ``nbytes`` is the payload's UTF-8 length (shared-memory blocks are
    page-rounded, so the parent must slice).  ``chunks`` carries the
    per-day spill-chunk descriptors destined for the manifest.
    """

    index: int
    records: int
    result_sha256: str
    nbytes: int
    transport: str  # "file" | "shm" | "inline"
    chunks: List[dict] = field(default_factory=list)
    shm_name: Optional[str] = None
    inline: Optional[bytes] = None
    #: Per-phase wall-clock payload (:meth:`ShardTimings.to_payload`)
    #: when the parent injected a clock; observability only — never
    #: folded into any digest or manifest.
    timings: Optional[dict] = None


#: Process-boundary contract (CON001): the descriptor is the only
#: project type this module lets cross a worker seam — payload bytes
#: travel out-of-band (file/shm) and are digest-verified on arrival.
TRANSFERABLE_TYPES = (ShardHandoff,)


def _publish_shm(blob: bytes) -> Optional[str]:
    """Stash ``blob`` in a fresh shared-memory block; returns its name,
    or None when shared memory is unusable (caller falls back)."""
    try:
        from multiprocessing import resource_tracker, shared_memory

        shm = shared_memory.SharedMemory(create=True, size=max(1, len(blob)))
    except Exception:
        return None
    try:
        shm.buf[: len(blob)] = blob
        name = shm.name
        shm.close()
        try:
            # The parent owns the block's lifetime (it unlinks after
            # reading); stop this process's resource tracker from
            # destroying it at worker exit.
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        return name
    except Exception:
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass
        return None


def publish_partial(
    spec: ShardSpec,
    payload: dict,
    records: int,
    chunks: List[dict],
    layout: Optional[CampaignLayout],
    timings: Optional[dict] = None,
) -> ShardHandoff:
    """Worker side: persist/stash the payload, return its descriptor."""
    text = canonical_json(payload)
    sha256 = sha256_text(text)
    if layout is not None:
        layout.write_result(spec, text)
        return ShardHandoff(
            index=spec.index,
            records=records,
            result_sha256=sha256,
            nbytes=len(text.encode("utf-8")),
            transport="file",
            chunks=chunks,
            timings=timings,
        )
    blob = text.encode("utf-8")
    shm_name = _publish_shm(blob)
    if shm_name is not None:
        return ShardHandoff(
            index=spec.index,
            records=records,
            result_sha256=sha256,
            nbytes=len(blob),
            transport="shm",
            chunks=chunks,
            shm_name=shm_name,
            timings=timings,
        )
    return ShardHandoff(
        index=spec.index,
        records=records,
        result_sha256=sha256,
        nbytes=len(blob),
        transport="inline",
        chunks=chunks,
        inline=blob,
        timings=timings,
    )


def collect_partial(
    handoff: ShardHandoff,
    layout: Optional[CampaignLayout],
    spec: ShardSpec,
) -> dict:
    """Parent side: retrieve the payload, verify its digest, parse."""
    if handoff.transport == "file":
        if layout is None:
            raise HandoffError(
                f"shard {handoff.index}: file transport without a layout"
            )
        try:
            text = layout.read_result(spec)
        except OSError as exc:
            raise HandoffError(
                f"shard {handoff.index}: result file unreadable: {exc}"
            ) from exc
    elif handoff.transport == "shm":
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=handoff.shm_name)
        except (OSError, ValueError) as exc:
            raise HandoffError(
                f"shard {handoff.index}: shared memory "
                f"{handoff.shm_name!r} missing: {exc}"
            ) from exc
        try:
            text = bytes(shm.buf[: handoff.nbytes]).decode("utf-8")
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
    elif handoff.transport == "inline":
        text = (handoff.inline or b"").decode("utf-8")
    else:
        raise HandoffError(
            f"shard {handoff.index}: unknown transport "
            f"{handoff.transport!r}"
        )
    if sha256_text(text) != handoff.result_sha256:
        raise HandoffError(
            f"shard {handoff.index}: payload digest mismatch over "
            f"{handoff.transport} transport"
        )
    return json.loads(text)
