"""Streaming shard aggregation: fold day chunks, never whole shards.

The original runner materialized a shard's full day range as one
:class:`~repro.core.columns.RecordColumns` batch and ran every
aggregate over it — O(shard length) memory, which is exactly what a
270-day horizon cannot afford.  :class:`ShardAccumulator` replaces
that with a fold: each day's batch is classified and absorbed into
the mergeable aggregates, then dropped, so a worker holds at most one
day of records (usually a read-only memmap of its spill chunk).

The fold is *bit-identical* to the whole-shard computation, by
construction rather than by luck:

- classification: :class:`~repro.core.columns.ColumnClassifier`
  carries per-route state across batches, proven equivalent to
  one-batch classification in ``tests/test_columns.py``;
- binned series: bin indices are computed against the *shard* start
  with the same float expression ``floor((t - start) / width)`` the
  whole-shard path used, accumulated into one dense window — same
  floats, same bins;
- inter-arrival histograms: within-day gaps come from the same
  lexsort-and-diff; the gap that straddles a day boundary is
  recovered from a per-pair last-event carry, so the merged gap
  multiset equals the whole-shard one (days are time-disjoint);
- everything else (category tallies, per-peer/per-prefix tables,
  pairs-per-day) is a key-union integer sum, associative by the same
  argument the cross-shard merge rests on.

``tests/test_campaign.py`` asserts the equivalence digest-for-digest
against a whole-batch reference.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..analysis.interarrival import FIGURE8_BINS, histogram_counts
from ..analysis.timeseries import BinnedSeries
from ..collector.store import SECONDS_PER_DAY
from ..core.columns import ColumnClassifier, RecordColumns
from ..core.instability import (
    CategoryCounts,
    counts_by_peer_columns,
    counts_by_prefix_columns,
)
from ..core.taxonomy import FINE_GRAINED_CATEGORIES
from .config import CampaignConfig, ShardSpec
from .results import (
    TOTAL,
    PartialResult,
    ShardTimings,
    _merge_count_tables,
    _merge_int_tables,
)

__all__ = ["ShardAccumulator", "ShardTimings", "pairs_per_day"]

#: Per-pair key for the inter-arrival carry: (peer ASN, net, plen).
PairKey = Tuple[int, int, int]

#: Injected monotonic clock.  The campaign package reads no wall clock
#: itself (it sits on the golden corpus's digest call graph, DET102);
#: callers that want phase timings pass ``time.perf_counter`` in.
Clock = Callable[[], float]


def pairs_per_day(columns: RecordColumns) -> Dict[int, int]:
    """Distinct Prefix+AS pairs per day (the Figure 9 'affected
    routes' numerator, computed shard-locally — days never span
    shards).

    Keys are packed into scalar integers and deduplicated with a
    lexsort + adjacent-diff scan instead of ``np.unique`` over a
    structured array: structured dtypes fall back to generic
    compare-based sorting, which dominated shard wall-clock on the
    bench day.  Prefix net/plen fit one uint64 exactly (32 + 8 bits);
    day and ASN stay separate sort keys so no width assumption is
    needed for them.
    """
    n = len(columns)
    if n == 0:
        return {}
    day = (columns.time // SECONDS_PER_DAY).astype(np.int64)
    asn = columns.peer_asn
    prefix = (columns.net.astype(np.uint64) << np.uint64(8)) | columns.plen
    order = np.lexsort((prefix, asn, day))
    day_s = day[order]
    asn_s = asn[order]
    prefix_s = prefix[order]
    new_pair = np.empty(n, dtype=bool)
    new_pair[0] = True
    new_pair[1:] = (
        (day_s[1:] != day_s[:-1])
        | (asn_s[1:] != asn_s[:-1])
        | (prefix_s[1:] != prefix_s[:-1])
    )
    days, counts = np.unique(day_s[new_pair], return_counts=True)
    return {
        int(d): int(count)
        for d, count in zip(days.tolist(), counts.tolist())
    }


class ShardAccumulator:
    """Folds one shard's day batches into a :class:`PartialResult`.

    Feed the spec's days in order through :meth:`fold_day`, then take
    :meth:`result`.  State is O(active routes), independent of the
    day count — the whole point of the out-of-core tier.
    """

    __slots__ = (
        "config",
        "spec",
        "records",
        "_classifier",
        "_counts",
        "_bin_counts",
        "_names",
        "_hists",
        "_last_event",
        "_by_peer",
        "_by_prefix",
        "_pairs_per_day",
        "_clock",
        "timings",
    )

    def __init__(
        self,
        config: CampaignConfig,
        spec: ShardSpec,
        clock: Optional[Clock] = None,
    ) -> None:
        self.config = config
        self.spec = spec
        self.records = 0
        self._clock = clock
        self.timings = ShardTimings()
        self._classifier = ColumnClassifier()
        self._counts = CategoryCounts()
        self._bin_counts = np.zeros(
            (spec.day_hi - spec.day_lo) * config.bins_per_day,
            dtype=np.int64,
        )
        self._names = (TOTAL,) + tuple(
            c.name for c in FINE_GRAINED_CATEGORIES
        )
        self._hists = {
            name: np.zeros(len(FIGURE8_BINS), dtype=np.int64)
            for name in self._names
        }
        self._last_event: Dict[str, Dict[PairKey, float]] = {
            name: {} for name in self._names
        }
        self._by_peer: Dict[int, CategoryCounts] = {}
        self._by_prefix: Dict = {}
        self._pairs_per_day: Dict[int, int] = {}

    def fold_day(self, day: int, columns: RecordColumns) -> None:
        """Classify and absorb one day's batch (must arrive in day
        order — the classifier and gap carries are sequential)."""
        if not self.spec.day_lo <= day < self.spec.day_hi:
            raise ValueError(
                f"day {day} outside shard range "
                f"[{self.spec.day_lo}, {self.spec.day_hi})"
            )
        clock = self._clock
        started = clock() if clock is not None else 0.0
        codes, policy = self._classifier.classify(columns)
        if clock is not None:
            classified = clock()
            self.timings.classify += classified - started
        self.records += len(columns)
        self._counts = self._counts + CategoryCounts.from_codes(
            codes, policy
        )
        self._fold_bins(columns)
        self._fold_gaps(TOTAL, columns.data)
        for category in FINE_GRAINED_CATEGORIES:
            self._fold_gaps(
                category.name, columns.data[codes == category.value]
            )
        self._by_peer = _merge_count_tables(
            self._by_peer, counts_by_peer_columns(columns, codes, policy)
        )
        self._by_prefix = _merge_int_tables(
            self._by_prefix, counts_by_prefix_columns(columns)
        )
        self._pairs_per_day = _merge_int_tables(
            self._pairs_per_day, pairs_per_day(columns)
        )
        if clock is not None:
            self.timings.fold += clock() - classified

    def _fold_bins(self, columns: RecordColumns) -> None:
        # The exact whole-shard expression — indices relative to the
        # SHARD start, not the day start, so float rounding at bin
        # edges cannot diverge from the reference computation.
        times = columns.data["time"]
        if times.size == 0:
            return
        start = self.spec.day_lo * SECONDS_PER_DAY
        indices = np.floor(
            (times - start) / self.config.bin_width
        ).astype(int)
        valid = (indices >= 0) & (indices < len(self._bin_counts))
        self._bin_counts += np.bincount(
            indices[valid], minlength=len(self._bin_counts)
        )

    def _fold_gaps(self, name: str, data: np.ndarray) -> None:
        """Inter-arrival gaps of ``data`` folded into histogram
        ``name``: within-batch gaps by lexsort+diff (identical to
        :func:`~repro.analysis.interarrival.interarrival_columns`),
        plus each pair's boundary gap against the carried last event
        time from earlier days."""
        n = len(data)
        if n == 0:
            return
        last = self._last_event[name]
        order = np.lexsort(
            (data["time"], data["plen"], data["net"], data["peer_asn"])
        )
        s = data[order]
        asn, net, plen, t = s["peer_asn"], s["net"], s["plen"], s["time"]
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        if n > 1:
            same = (
                (asn[1:] == asn[:-1])
                & (net[1:] == net[:-1])
                & (plen[1:] == plen[:-1])
            )
            new_group[1:] = ~same
            gaps = np.diff(t)[same]
            if gaps.size:
                self._hists[name] += histogram_counts(gaps)
        starts = np.flatnonzero(new_group)
        ends = np.append(starts[1:], n) - 1
        carry = []
        for a, nt, pl, first, final in zip(
            asn[starts].tolist(),
            net[starts].tolist(),
            plen[starts].tolist(),
            t[starts].tolist(),
            t[ends].tolist(),
        ):
            key = (a, nt, pl)
            previous = last.get(key)
            if previous is not None:
                carry.append(first - previous)
            last[key] = final
        if carry:
            self._hists[name] += histogram_counts(
                np.asarray(carry, dtype=float)
            )

    def result(self) -> PartialResult:
        """The shard's aggregates; call once, after the last day."""
        offset = int(
            self.spec.day_lo * SECONDS_PER_DAY // self.config.bin_width
        )
        # An all-empty shard reproduces the whole-batch form exactly:
        # BinnedSeries.from_records yields a zero-length window when no
        # records exist, a full [day_lo, day_hi) window otherwise.
        counts = (
            self._bin_counts
            if self.records
            else np.zeros(0, dtype=np.int64)
        )
        bins = BinnedSeries(offset, counts, self.config.bin_width)
        return PartialResult(
            records=self.records,
            counts=self._counts,
            bins=bins,
            interarrival=dict(self._hists),
            by_peer=self._by_peer,
            by_prefix=self._by_prefix,
            pairs_per_day=self._pairs_per_day,
            by_exchange={self.spec.exchange: self._counts},
        )
