"""Shard manifests: the campaign's resume ledger.

A campaign output directory is laid out as::

    <out>/
      campaign.json            # config fingerprint + payload (schema 1)
      shards/shard-0003.mrt    # the shard's generated archive
      results/shard-0003.json  # the shard's PartialResult payload
      manifest/shard-0003.json # written LAST, marks the shard done

Each manifest entry records the shard spec (exchange, day range,
seeds), the record count, and SHA-256 digests of both the archive and
the result payload.  Because the manifest file is written only after
the archive and result are safely on disk, a killed run leaves at
worst a result without a manifest — which a resumed run simply
recomputes.  On ``--resume`` the runner loads every manifested shard
whose digests verify and re-runs only the rest, so finished days are
never regenerated.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from .config import CampaignConfig, ShardSpec, canonical_json, sha256_text
from .results import PartialResult

__all__ = [
    "CampaignLayout",
    "ConfigMismatch",
    "SCHEMA_VERSION",
]

SCHEMA_VERSION = 1


class ConfigMismatch(RuntimeError):
    """Raised when resuming into an output directory whose recorded
    config fingerprint differs from the requested config."""


class CampaignLayout:
    """Path scheme + manifest IO for one campaign output directory."""

    def __init__(self, out: Union[str, Path]) -> None:
        self.root = Path(out)
        self.shards_dir = self.root / "shards"
        self.results_dir = self.root / "results"
        self.manifest_dir = self.root / "manifest"
        self.campaign_file = self.root / "campaign.json"

    def prepare(self) -> None:
        for directory in (
            self.root, self.shards_dir, self.results_dir, self.manifest_dir
        ):
            directory.mkdir(parents=True, exist_ok=True)

    # -- per-shard paths ----------------------------------------------------

    def archive_path(self, spec: ShardSpec) -> Path:
        return self.shards_dir / f"{spec.name}.mrt"

    def result_path(self, spec: ShardSpec) -> Path:
        return self.results_dir / f"{spec.name}.json"

    def manifest_path(self, spec: ShardSpec) -> Path:
        return self.manifest_dir / f"{spec.name}.json"

    # -- campaign fingerprint -----------------------------------------------

    def write_campaign(self, config: CampaignConfig) -> None:
        payload = {
            "schema": SCHEMA_VERSION,
            "fingerprint": config.fingerprint(),
            "config": config.to_payload(),
        }
        self.campaign_file.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )

    def check_campaign(self, config: CampaignConfig) -> None:
        """Verify a pre-existing directory matches ``config`` (no file
        yet is fine — a fresh run writes one)."""
        if not self.campaign_file.exists():
            return
        recorded = json.loads(self.campaign_file.read_text())
        if recorded.get("fingerprint") != config.fingerprint():
            raise ConfigMismatch(
                f"{self.campaign_file} was written by a different "
                "CampaignConfig; refusing to mix shards (use a fresh "
                "--out, or rerun with the original parameters)"
            )

    # -- shard completion ---------------------------------------------------

    def write_shard(
        self,
        spec: ShardSpec,
        partial_payload: dict,
        records: int,
        archive_sha256: Optional[str],
        before_manifest: Optional[Callable[[], None]] = None,
    ) -> None:
        """Persist one finished shard; the manifest entry goes last so
        its presence implies the result is durable.

        ``before_manifest`` (the chaos layer's fault point) runs after
        the result is on disk but before the manifest exists — a kill
        there must leave a shard that resume treats as incomplete.
        """
        result_text = canonical_json(partial_payload)
        self.result_path(spec).write_text(result_text + "\n")
        if before_manifest is not None:
            before_manifest()
        manifest = {
            "schema": SCHEMA_VERSION,
            **spec.to_payload(),
            "records": records,
            "archive": (
                None
                if archive_sha256 is None
                else os.path.join("shards", f"{spec.name}.mrt")
            ),
            "archive_sha256": archive_sha256,
            "result": os.path.join("results", f"{spec.name}.json"),
            "result_sha256": sha256_text(result_text),
        }
        self.manifest_path(spec).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )

    def load_shard(self, spec: ShardSpec) -> Optional[PartialResult]:
        """The shard's persisted partial, or None when it is missing,
        stale (spec mismatch), or fails digest verification — of the
        result payload and, when one was recorded, of the archive
        (a truncated or corrupted archive invalidates the shard, so
        resume recomputes it instead of trusting a damaged file)."""
        manifest_path = self.manifest_path(spec)
        result_path = self.result_path(spec)
        if not (manifest_path.exists() and result_path.exists()):
            return None
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            # Unreadable or mangled manifest (e.g. a crash or disk
            # corruption mid-write): the shard is simply not done.
            return None
        if not isinstance(manifest, dict):
            return None
        if manifest.get("schema") != SCHEMA_VERSION:
            return None
        if {k: manifest.get(k) for k in spec.to_payload()} != spec.to_payload():
            return None
        try:
            result_text = result_path.read_text().rstrip("\n")
        except (OSError, UnicodeDecodeError):
            return None
        if sha256_text(result_text) != manifest.get("result_sha256"):
            return None
        if manifest.get("archive_sha256") is not None:
            archive = self.archive_path(spec)
            if not archive.exists():
                return None
            digest = hashlib.sha256(archive.read_bytes()).hexdigest()
            if digest != manifest["archive_sha256"]:
                return None
        return PartialResult.from_payload(json.loads(result_text))

    def completed(self, plan) -> Dict[int, PartialResult]:
        """All verifiably finished shards of ``plan``, by index."""
        loaded: Dict[int, PartialResult] = {}
        for spec in plan:
            partial = self.load_shard(spec)
            if partial is not None:
                loaded[spec.index] = partial
        return loaded
