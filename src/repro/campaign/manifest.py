"""Shard manifests: the campaign's resume ledger.

A campaign output directory is laid out as::

    <out>/
      campaign.json                   # config fingerprint + payload
      shards/shard-0003/day-0012.rcol # one spill chunk per day
      results/shard-0003.json         # the shard's PartialResult payload
      manifest/shard-0003.json        # written LAST, marks the shard done

Each manifest entry (schema 2) records the shard spec (exchange, day
range, seeds), the record count, a descriptor per day chunk (file,
rows, sha256), and the result payload's digest.  Because the manifest
file is written only after the chunks and result are safely on disk, a
killed run leaves at worst unmanifested state — which a resumed run
recomputes, reusing any day chunks whose digests still verify
(:func:`first_unfinished_day` finds where real work restarts).  On
``--resume`` the runner loads every manifested shard whose digests
verify and re-runs only the rest, so finished days are never
regenerated.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from ..core.spill import ChunkCorrupt, verify_chunk
from .config import CampaignConfig, ShardSpec, canonical_json, sha256_text
from .results import PartialResult

__all__ = [
    "CampaignLayout",
    "ConfigMismatch",
    "SCHEMA_VERSION",
]

SCHEMA_VERSION = 2


class ConfigMismatch(RuntimeError):
    """Raised when resuming into an output directory whose recorded
    config fingerprint differs from the requested config."""


class CampaignLayout:
    """Path scheme + manifest IO for one campaign output directory."""

    def __init__(self, out: Union[str, Path]) -> None:
        self.root = Path(out)
        self.shards_dir = self.root / "shards"
        self.results_dir = self.root / "results"
        self.manifest_dir = self.root / "manifest"
        self.campaign_file = self.root / "campaign.json"

    def prepare(self) -> None:
        for directory in (
            self.root, self.shards_dir, self.results_dir, self.manifest_dir
        ):
            directory.mkdir(parents=True, exist_ok=True)

    # -- per-shard paths ----------------------------------------------------

    def chunk_dir(self, spec: ShardSpec) -> Path:
        return self.shards_dir / spec.name

    def chunk_path(self, spec: ShardSpec, day: int) -> Path:
        return self.chunk_dir(spec) / f"day-{day:04d}.rcol"

    def chunk_relpath(self, spec: ShardSpec, day: int) -> str:
        """The manifest's root-relative chunk reference."""
        return os.path.join("shards", spec.name, f"day-{day:04d}.rcol")

    def result_path(self, spec: ShardSpec) -> Path:
        return self.results_dir / f"{spec.name}.json"

    def manifest_path(self, spec: ShardSpec) -> Path:
        return self.manifest_dir / f"{spec.name}.json"

    # -- campaign fingerprint -----------------------------------------------

    def write_campaign(self, config: CampaignConfig) -> None:
        payload = {
            "schema": SCHEMA_VERSION,
            "fingerprint": config.fingerprint(),
            "config": config.to_payload(),
        }
        self.campaign_file.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )

    def check_campaign(self, config: CampaignConfig) -> None:
        """Verify a pre-existing directory matches ``config`` (no file
        yet is fine — a fresh run writes one)."""
        if not self.campaign_file.exists():
            return
        recorded = json.loads(self.campaign_file.read_text())
        if recorded.get("fingerprint") != config.fingerprint():
            raise ConfigMismatch(
                f"{self.campaign_file} was written by a different "
                "CampaignConfig; refusing to mix shards (use a fresh "
                "--out, or rerun with the original parameters)"
            )

    # -- shard completion ---------------------------------------------------

    def write_result(self, spec: ShardSpec, result_text: str) -> None:
        """Persist the shard's canonical result payload (worker-side
        in the pool path; the manifest still comes from the parent)."""
        self.result_path(spec).write_text(result_text + "\n")

    def read_result(self, spec: ShardSpec) -> str:
        """The persisted canonical result text (raises OSError when
        missing — callers decide what absence means)."""
        return self.result_path(spec).read_text().rstrip("\n")

    def write_manifest(
        self,
        spec: ShardSpec,
        records: int,
        chunks: List[dict],
        result_sha256: str,
        before_manifest: Optional[Callable[[], None]] = None,
    ) -> None:
        """Mark a shard done; the manifest entry goes last so its
        presence implies the chunks and result are durable.

        ``before_manifest`` (the chaos layer's fault point) runs after
        the result is on disk but before the manifest exists — a kill
        there must leave a shard that resume treats as incomplete.
        """
        if before_manifest is not None:
            before_manifest()
        manifest = {
            "schema": SCHEMA_VERSION,
            **spec.to_payload(),
            "records": records,
            "chunks": chunks,
            "result": os.path.join("results", f"{spec.name}.json"),
            "result_sha256": result_sha256,
        }
        self.manifest_path(spec).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )

    def write_shard(
        self,
        spec: ShardSpec,
        partial_payload: dict,
        records: int,
        chunks: List[dict],
        before_manifest: Optional[Callable[[], None]] = None,
    ) -> None:
        """Persist one finished shard (result, then manifest)."""
        result_text = canonical_json(partial_payload)
        self.write_result(spec, result_text)
        self.write_manifest(
            spec,
            records,
            chunks,
            sha256_text(result_text),
            before_manifest=before_manifest,
        )

    def _verify_chunks(self, chunks: object) -> bool:
        """True when every manifested chunk descriptor checks out
        against the file on disk (existence, row count, digest)."""
        if not isinstance(chunks, list):
            return False
        for entry in chunks:
            if not isinstance(entry, dict):
                return False
            relpath = entry.get("file")
            if not isinstance(relpath, str):
                return False
            try:
                info = verify_chunk(self.root / relpath)
            except ChunkCorrupt:
                return False
            if info.rows != entry.get("rows"):
                return False
            if info.sha256 != entry.get("sha256"):
                return False
        return True

    def load_shard(self, spec: ShardSpec) -> Optional[PartialResult]:
        """The shard's persisted partial, or None when it is missing,
        stale (spec mismatch), or fails digest verification — of the
        result payload and of every recorded day chunk (a truncated or
        corrupted chunk invalidates the shard, so resume recomputes it
        instead of trusting a damaged file)."""
        manifest_path = self.manifest_path(spec)
        result_path = self.result_path(spec)
        if not (manifest_path.exists() and result_path.exists()):
            return None
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            # Unreadable or mangled manifest (e.g. a crash or disk
            # corruption mid-write): the shard is simply not done.
            return None
        if not isinstance(manifest, dict):
            return None
        if manifest.get("schema") != SCHEMA_VERSION:
            return None
        if {k: manifest.get(k) for k in spec.to_payload()} != spec.to_payload():
            return None
        try:
            result_text = result_path.read_text().rstrip("\n")
        except (OSError, UnicodeDecodeError):
            return None
        if sha256_text(result_text) != manifest.get("result_sha256"):
            return None
        if not self._verify_chunks(manifest.get("chunks")):
            return None
        return PartialResult.from_payload(json.loads(result_text))

    def iter_completed(
        self, plan
    ) -> Iterator[Tuple[ShardSpec, PartialResult]]:
        """Verifiably finished shards of ``plan``, streamed in plan
        order so the runner folds them one at a time instead of
        holding every loaded partial at once."""
        for spec in plan:
            partial = self.load_shard(spec)
            if partial is not None:
                yield spec, partial

    def completed(self, plan) -> Dict[int, PartialResult]:
        """All verifiably finished shards of ``plan``, by index."""
        return {
            spec.index: partial for spec, partial in self.iter_completed(plan)
        }

    def first_unfinished_day(self, spec: ShardSpec) -> int:
        """The first day of ``spec`` without a verifiable chunk on
        disk (``day_hi`` when every day's chunk survives) — where a
        restarted shard actually resumes generating."""
        for day in spec.days:
            path = self.chunk_path(spec, day)
            if not path.exists():
                return day
            try:
                verify_chunk(path)
            except ChunkCorrupt:
                return day
        return spec.day_hi
