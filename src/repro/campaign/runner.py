"""The sharded, resumable, out-of-core campaign runner.

:func:`run_campaign` expands a
:class:`~repro.campaign.config.CampaignConfig` into its shard plan,
runs ``generate → spill → classify → fold`` for every shard not
already completed on disk, and folds the partial results into one
:class:`~repro.campaign.results.CampaignResult`.

The pipeline is streaming end to end, which is what makes
``--days 270`` a flat-memory workload:

- each shard generates one day at a time, spills it as a columnar
  chunk (:mod:`repro.core.spill`) when a layout is given, and folds
  it through a :class:`~repro.campaign.fold.ShardAccumulator` — at
  most one day of records lives in a worker at once;
- pool workers hand back lightweight :class:`ShardHandoff`
  descriptors (:mod:`repro.campaign.handoff`) instead of pickled
  aggregates, with the payload crossing via the result file or a
  shared-memory block;
- the parent folds partials incrementally as shards complete (the
  merge is commutative, so completion order cannot matter), never
  holding more than the running total;
- resume loads manifested shards one at a time, and a restarted
  shard reuses every day chunk whose digest verifies — generation
  restarts at the first unfinished day, with the generator's
  cross-day state restored from the last good chunk's checkpoint.

``workers <= 1`` runs fully in-process — no Pool is ever spawned, no
payload round-trips through serialization — and remains the reference
execution every pool size must reproduce bit-for-bit (proven in
``tests/test_campaign.py``).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.columns import AttributeTable, RecordColumns
from ..core.spill import (
    ChunkCorrupt,
    ChunkInfo,
    SpillChunk,
    read_chunk,
    write_chunk,
)
from ..workloads.generator import campaign_generator
from .config import CampaignConfig, ShardSpec
from .fold import Clock, ShardAccumulator, ShardTimings
from .handoff import ShardHandoff, collect_partial, publish_partial
from .manifest import CampaignLayout
from .results import CampaignResult, PartialResult

__all__ = [
    "run_campaign",
    "run_shard",
    "CampaignHooks",
    "KillRun",
    "TRANSFERABLE_TYPES",
]

#: Process-boundary contract (CON001): the only project type this
#: module's pool ships across the worker seam — workers return
#: :class:`ShardHandoff` descriptors, never aggregates.
TRANSFERABLE_TYPES = (ShardHandoff,)

#: Progress callback signature: (spec, "run" | "loaded", records).
ProgressFn = Callable[[ShardSpec, str, int], None]

#: Chunk observer signature: (spec, day, "generated" | "loaded").
ChunkFn = Callable[[ShardSpec, int, str], None]


class KillRun(RuntimeError):
    """Raised by a fault hook to abort a campaign mid-run.

    It propagates out of :func:`run_campaign`, leaving whatever the run
    had written on disk — exactly the state a SIGKILLed process leaves
    behind — so the chaos layer can simulate kills at precise points
    (including between a shard's result write and its manifest write,
    or between two day chunks) and then exercise ``resume``.
    """


@dataclass
class CampaignHooks:
    """Injectable observation/fault points for :func:`run_campaign`.

    Every hook is optional and is invoked in the parent process (the
    pool path runs shards in workers but collects results and writes
    manifests in the parent, so those hooks fire there too):

    - ``order_pending(specs)`` → reordered specs: permutes the
      still-to-run shard list (chaos uses it to prove completion
      order cannot affect the merged result);
    - ``on_shard_start(spec)``: before a shard is (re)computed —
      honored exactly only on the inline (``workers <= 1``) path;
    - ``on_chunk(spec, day, how)``: after each day chunk is generated
      or loaded — honored only on the inline path (it fires inside
      :func:`run_shard`), giving chaos a mid-shard kill seam;
    - ``before_manifest(spec, layout)``: between the shard's result
      write and its manifest write — the crash window the
      manifest-last protocol exists for;
    - ``on_shard_written(spec, layout)``: after the shard is durably
      complete (result + manifest on disk).

    Hooks exist so the chaos layer injects faults through a supported
    seam instead of monkeypatching internals.
    """

    order_pending: Optional[
        Callable[[List[ShardSpec]], Sequence[ShardSpec]]
    ] = None
    on_shard_start: Optional[Callable[[ShardSpec], None]] = None
    on_chunk: Optional[ChunkFn] = None
    before_manifest: Optional[
        Callable[[ShardSpec, CampaignLayout], None]
    ] = None
    on_shard_written: Optional[
        Callable[[ShardSpec, CampaignLayout], None]
    ] = None


def run_shard(
    config: CampaignConfig,
    spec: ShardSpec,
    layout: Optional[CampaignLayout] = None,
    on_chunk: Optional[ChunkFn] = None,
    clock: Optional[Clock] = None,
) -> Tuple[PartialResult, int, List[dict], ShardTimings]:
    """Run one shard's streaming pipeline; pure function of its
    arguments plus whatever verifiable chunks already sit on disk.

    Day by day: reuse the day's spill chunk when a layout is given and
    the chunk verifies (restoring the generator's cross-day state from
    its checkpoint), otherwise generate the day and spill it; either
    way the day folds through the accumulator and is dropped.  Peak
    memory is one day of records — on the reuse path a read-only memmap
    of the chunk.  Returns ``(partial, record count, chunk
    descriptors, timings)``; the descriptor list is empty without a
    layout, and the timings stay zero unless a monotonic ``clock`` is
    injected (this module reads no wall clock itself — DET102 holds it
    to that, since it sits on the golden corpus's digest call graph).

    A fresh attribute table per day keeps each chunk's bytes a pure
    function of ``(config, spec, day)`` — classification and every
    aggregate are invariant to attribute-id numbering, so per-day
    tables change no result while making chunk digests reproducible.
    """
    generator = campaign_generator(
        n_peers=config.n_peers,
        total_prefixes=config.total_prefixes,
        population_seed=spec.population_seed,
        generator_seed=spec.generator_seed,
    )
    categories = config.category_set()
    fingerprint = config.fingerprint()
    accumulator = ShardAccumulator(config, spec, clock=clock)
    chunks: List[dict] = []
    for day in spec.days:
        columns: Optional[RecordColumns] = None
        info: Optional[ChunkInfo] = None
        how = "generated"
        if layout is not None:
            path = layout.chunk_path(spec, day)
            if path.exists():
                chunk: Optional[SpillChunk] = None
                try:
                    chunk = read_chunk(path)
                except ChunkCorrupt:
                    chunk = None
                if (
                    chunk is not None
                    and chunk.extra.get("campaign") == fingerprint
                    and chunk.extra.get("shard") == spec.index
                    and chunk.extra.get("day") == day
                ):
                    columns = chunk.columns
                    generator.restore_state(
                        chunk.extra["generator_state"]
                    )
                    info = chunk.info
                    how = "loaded"
        if columns is None:
            started = clock() if clock is not None else 0.0
            columns = generator.day_columns(
                day,
                pair_fraction=config.pair_fraction,
                categories=categories,
                attrs=AttributeTable(),
            )
            if clock is not None:
                accumulator.timings.generate += clock() - started
            if layout is not None:
                info = write_chunk(
                    layout.chunk_path(spec, day),
                    columns,
                    extra={
                        "campaign": fingerprint,
                        "shard": spec.index,
                        "day": day,
                        "generator_state": generator.state_payload(),
                    },
                )
        if layout is not None:
            assert info is not None  # both branches above set it
            chunks.append(
                {
                    "day": day,
                    "file": layout.chunk_relpath(spec, day),
                    "rows": info.rows,
                    "sha256": info.sha256,
                }
            )
        accumulator.fold_day(day, columns)
        if on_chunk is not None:
            on_chunk(spec, day, how)
    return (
        accumulator.result(),
        accumulator.records,
        chunks,
        accumulator.timings,
    )


def _shard_task(
    task: Tuple[dict, dict, Optional[str], Optional[Clock]]
) -> ShardHandoff:
    """Pool entry point (top-level so it pickles under spawn).

    The clock rides the task tuple: module-level callables like
    ``time.perf_counter`` pickle by reference, so the parent's choice
    of clock reaches the worker without this module importing one.
    """
    config_payload, spec_payload, out, clock = task
    config = CampaignConfig.from_payload(config_payload, out=out)
    spec = ShardSpec.from_payload(spec_payload)
    layout = CampaignLayout(out) if out is not None else None
    if layout is not None:
        layout.chunk_dir(spec).mkdir(parents=True, exist_ok=True)
    partial, records, chunks, timings = run_shard(
        config, spec, layout, clock=clock
    )
    return publish_partial(
        spec,
        partial.to_payload(),
        records,
        chunks,
        layout,
        timings=timings.to_payload() if clock is not None else None,
    )


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def run_campaign(
    config: CampaignConfig,
    workers: int = 1,
    resume: bool = False,
    stop_after: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    hooks: Optional[CampaignHooks] = None,
    clock: Optional[Clock] = None,
) -> CampaignResult:
    """Run (or resume) a campaign; see module docstring.

    ``workers`` sets the process-pool size; ``<= 1`` runs fully
    in-process (no Pool is spawned) — the reference execution every
    pool size must reproduce.  ``resume`` loads verifiably completed
    shards from ``config.out`` instead of re-running them, and
    restarted shards reuse their verifiable day chunks.
    ``stop_after`` caps how many *new* shards run before returning a
    partial result — the programmatic stand-in for a killed run (the
    manifest tests and checkpoint demos use it); it is honored
    exactly only with ``workers <= 1``.  ``hooks`` injects
    observation/fault points (see :class:`CampaignHooks`); a hook
    raising :class:`KillRun` aborts the run with the on-disk state of
    a killed process.  ``clock`` (e.g. ``time.perf_counter``) turns on
    the per-phase generate/classify/fold timing breakdown on
    ``result.timings`` — summed across the shards that actually ran,
    zero-cost and absent when no clock is given.
    """
    plan = config.shard_plan()
    layout: Optional[CampaignLayout] = None
    if config.out is not None:
        layout = CampaignLayout(config.out)
        layout.check_campaign(config)
        layout.prepare()
        layout.write_campaign(config)

    # The running total: partials fold in as they arrive (completion
    # order — the merge is commutative, proven by the merge-order
    # property tests), so the parent never holds per-shard results.
    merged = PartialResult.empty()
    done = set()
    loaded = 0
    if resume and layout is not None:
        for spec, partial in layout.iter_completed(plan):
            merged = merged + partial
            done.add(spec.index)
            loaded += 1
            if progress is not None:
                progress(spec, "loaded", partial.records)

    pending = [spec for spec in plan if spec.index not in done]
    if hooks is not None and hooks.order_pending is not None:
        reordered = list(hooks.order_pending(list(pending)))
        assert {s.index for s in reordered} <= {s.index for s in pending}
        pending = reordered
    if stop_after is not None:
        pending = pending[:max(0, stop_after)]

    def before_manifest_hook(spec: ShardSpec) -> Optional[Callable[[], None]]:
        if hooks is None or hooks.before_manifest is None or layout is None:
            return None
        callback, sealed = hooks.before_manifest, layout
        return lambda: callback(spec, sealed)

    def shard_written(spec: ShardSpec) -> None:
        if hooks is None or hooks.on_shard_written is None or layout is None:
            return
        hooks.on_shard_written(spec, layout)

    ran = len(pending)
    phase_totals = ShardTimings()
    if pending:
        if workers <= 1 or len(pending) == 1:
            # In-process fast path: no Pool, no serialization round
            # trip — the shard's PartialResult folds in directly.
            on_chunk = hooks.on_chunk if hooks is not None else None
            for spec in pending:
                if hooks is not None and hooks.on_shard_start is not None:
                    hooks.on_shard_start(spec)
                partial, records, chunks, shard_timings = run_shard(
                    config, spec, layout, on_chunk=on_chunk, clock=clock
                )
                phase_totals = phase_totals + shard_timings
                if layout is not None:
                    layout.write_shard(
                        spec,
                        partial.to_payload(),
                        records,
                        chunks,
                        before_manifest=before_manifest_hook(spec),
                    )
                    shard_written(spec)
                merged = merged + partial
                if progress is not None:
                    progress(spec, "run", records)
        else:
            tasks = [
                (config.to_payload(), spec.to_payload(), config.out, clock)
                for spec in pending
            ]
            by_index = {spec.index: spec for spec in pending}
            context = _pool_context()
            with context.Pool(min(workers, len(pending))) as pool:
                # Unordered: shards land as they finish and fold into
                # the running total immediately (commutative merge).
                for handoff in pool.imap_unordered(_shard_task, tasks):
                    spec = by_index[handoff.index]
                    payload = collect_partial(handoff, layout, spec)
                    if handoff.timings is not None:
                        phase_totals = phase_totals + (
                            ShardTimings.from_payload(handoff.timings)
                        )
                    if layout is not None:
                        # The worker already wrote the result file;
                        # the parent seals the shard manifest-last.
                        layout.write_manifest(
                            spec,
                            handoff.records,
                            handoff.chunks,
                            handoff.result_sha256,
                            before_manifest=before_manifest_hook(spec),
                        )
                        shard_written(spec)
                    merged = merged + PartialResult.from_payload(payload)
                    if progress is not None:
                        progress(spec, "run", handoff.records)

    # Deliberately clock-free: run_campaign sits on the golden
    # corpus's call graph (build_golden freezes a campaign digest), so
    # DET102 holds it to zero wall-clock reads — callers that want a
    # runtime line measure around the call (see cmd_campaign).
    return CampaignResult(
        config=config,
        partial=merged,
        shard_count=len(plan),
        shards_run=ran,
        shards_loaded=loaded,
        timings=phase_totals.to_payload() if clock is not None else None,
    )
