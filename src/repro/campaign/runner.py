"""The sharded, resumable campaign runner.

:func:`run_campaign` expands a
:class:`~repro.campaign.config.CampaignConfig` into its shard plan,
runs ``generate → archive → classify → analyze`` for every shard not
already completed on disk, and merges the partial results into one
:class:`~repro.campaign.results.CampaignResult`.

Shards execute either inline (``workers <= 1``) or in a
``multiprocessing`` pool.  Determinism is structural, not
coincidental: each shard builds a fresh generator and classifier from
seeds carried by its :class:`~repro.campaign.config.ShardSpec`, runs
entirely on the columnar tier, and returns integer aggregates whose
merge is associative — so the merged result is a function of the
config alone, bit-identical across worker counts, completion orders,
and kill/resume cycles (proven in ``tests/test_campaign.py``).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.interarrival import interarrival_columns, histogram_counts
from ..analysis.timeseries import BinnedSeries
from ..collector.log import FileLog
from ..collector.store import SECONDS_PER_DAY
from ..core.columns import AttributeTable, ColumnClassifier, RecordColumns
from ..core.instability import (
    CategoryCounts,
    counts_by_peer_columns,
    counts_by_prefix_columns,
)
from ..core.taxonomy import FINE_GRAINED_CATEGORIES
from ..workloads.generator import campaign_generator
from .config import CampaignConfig, ShardSpec
from .manifest import CampaignLayout
from .results import TOTAL, CampaignResult, PartialResult

__all__ = [
    "run_campaign",
    "run_shard",
    "ShardOutcome",
    "CampaignHooks",
    "KillRun",
]

#: Progress callback signature: (spec, "run" | "loaded", records).
ProgressFn = Callable[[ShardSpec, str, int], None]

ShardOutcome = Tuple[int, dict, int, Optional[str]]
# (shard index, partial payload, record count, archive sha256)


class KillRun(RuntimeError):
    """Raised by a fault hook to abort a campaign mid-run.

    It propagates out of :func:`run_campaign`, leaving whatever the run
    had written on disk — exactly the state a SIGKILLed process leaves
    behind — so the chaos layer can simulate kills at precise points
    (including between a shard's result write and its manifest write)
    and then exercise ``resume``.
    """


@dataclass
class CampaignHooks:
    """Injectable observation/fault points for :func:`run_campaign`.

    Every hook is optional and is invoked in the parent process (the
    pool path runs shards in workers but writes results in the
    parent, so the write-side hooks fire there too):

    - ``order_pending(specs)`` → reordered specs: permutes the
      still-to-run shard list (chaos uses it to prove completion
      order cannot affect the merged result);
    - ``on_shard_start(spec)``: before a shard is (re)computed —
      honored exactly only on the inline (``workers <= 1``) path;
    - ``before_manifest(spec, layout)``: between the shard's result
      write and its manifest write — the crash window the
      manifest-last protocol exists for;
    - ``on_shard_written(spec, layout)``: after the shard is durably
      complete (result + manifest on disk).

    Hooks exist so the chaos layer injects faults through a supported
    seam instead of monkeypatching internals.
    """

    order_pending: Optional[
        Callable[[List[ShardSpec]], Sequence[ShardSpec]]
    ] = None
    on_shard_start: Optional[Callable[[ShardSpec], None]] = None
    before_manifest: Optional[
        Callable[[ShardSpec, CampaignLayout], None]
    ] = None
    on_shard_written: Optional[
        Callable[[ShardSpec, CampaignLayout], None]
    ] = None


def _pairs_per_day(columns: RecordColumns) -> Dict[int, int]:
    """Distinct Prefix+AS pairs per day, via one np.unique over
    (day, peer ASN, prefix) keys (the Figure 9 'affected routes'
    numerator, computed shard-locally — days never span shards)."""
    if len(columns) == 0:
        return {}
    keys = np.empty(
        len(columns),
        dtype=[("day", "i8"), ("asn", "u4"), ("net", "u4"), ("plen", "u1")],
    )
    keys["day"] = (columns.time // SECONDS_PER_DAY).astype(np.int64)
    keys["asn"] = columns.peer_asn
    keys["net"] = columns.net
    keys["plen"] = columns.plen
    unique = np.unique(keys)
    days, counts = np.unique(unique["day"], return_counts=True)
    return {
        int(day): int(count)
        for day, count in zip(days.tolist(), counts.tolist())
    }


def run_shard(
    config: CampaignConfig,
    spec: ShardSpec,
    layout: Optional[CampaignLayout] = None,
) -> Tuple[PartialResult, int, Optional[str]]:
    """Run one shard's full pipeline; pure function of its arguments.

    Generates the spec's day range with a fresh generator, archives
    the columnar batches day by day (when a layout is given), decodes
    the archive back, classifies it with a fresh classifier, and
    computes the shard's mergeable aggregates.  Returns ``(partial,
    record count, archive digest or None)``.
    """
    generator = campaign_generator(
        n_peers=config.n_peers,
        total_prefixes=config.total_prefixes,
        population_seed=spec.population_seed,
        generator_seed=spec.generator_seed,
    )
    categories = config.category_set()
    table = AttributeTable()

    # 1. Generate + archive, one columnar batch per day (a long shard
    # never holds unarchived days in memory alongside the decode).
    archive_sha256: Optional[str] = None
    if layout is not None:
        archive = FileLog(layout.archive_path(spec))
        with archive.writer() as writer:
            for day in spec.days:
                writer.extend_columns(
                    generator.day_columns(
                        day,
                        pair_fraction=config.pair_fraction,
                        categories=categories,
                        attrs=table,
                    )
                )
        archive_sha256 = archive.sha256()
        # 2. Decode: read the archive back (the collect→decode step of
        # the paper's pipeline; also verifies the round trip).
        columns = archive.read_columns()
    else:
        batches = [
            generator.day_columns(
                day,
                pair_fraction=config.pair_fraction,
                categories=categories,
                attrs=table,
            )
            for day in spec.days
        ]
        columns = RecordColumns.concat(batches)

    # 3. Classify on the columnar tier (fresh per-shard state; shard
    # boundaries are the campaign's defined classification restarts).
    codes, policy = ColumnClassifier().classify(columns)

    # 4. Analyze into the mergeable aggregates.
    shard_counts = CategoryCounts.from_codes(codes, policy)
    bins = BinnedSeries.from_records(
        columns,
        config.bin_width,
        start=spec.day_lo * SECONDS_PER_DAY,
        end=spec.day_hi * SECONDS_PER_DAY,
    )
    interarrival = {
        TOTAL: histogram_counts(interarrival_columns(columns))
    }
    for category in FINE_GRAINED_CATEGORIES:
        interarrival[category.name] = histogram_counts(
            interarrival_columns(columns, codes, category)
        )
    partial = PartialResult(
        records=len(columns),
        counts=shard_counts,
        bins=bins,
        interarrival=interarrival,
        by_peer=counts_by_peer_columns(columns, codes, policy),
        by_prefix=counts_by_prefix_columns(columns),
        pairs_per_day=_pairs_per_day(columns),
        by_exchange={spec.exchange: shard_counts},
    )
    return partial, len(columns), archive_sha256


def _shard_task(task: Tuple[dict, dict, Optional[str]]) -> ShardOutcome:
    """Pool entry point (top-level so it pickles under spawn)."""
    config_payload, spec_payload, out = task
    config = CampaignConfig.from_payload(config_payload, out=out)
    spec = ShardSpec(
        index=int(spec_payload["index"]),
        exchange=spec_payload["exchange"],
        day_lo=int(spec_payload["days"][0]),
        day_hi=int(spec_payload["days"][1]),
        population_seed=int(spec_payload["population_seed"]),
        generator_seed=int(spec_payload["generator_seed"]),
    )
    layout = None
    if out is not None:
        layout = CampaignLayout(out)
    partial, records, archive_sha256 = run_shard(config, spec, layout)
    return spec.index, partial.to_payload(), records, archive_sha256


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def run_campaign(
    config: CampaignConfig,
    workers: int = 1,
    resume: bool = False,
    stop_after: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    hooks: Optional[CampaignHooks] = None,
) -> CampaignResult:
    """Run (or resume) a campaign; see module docstring.

    ``workers`` sets the process-pool size (``<= 1`` runs inline —
    the reference execution every pool size must reproduce).
    ``resume`` loads verifiably completed shards from ``config.out``
    instead of re-running them.  ``stop_after`` caps how many *new*
    shards run before returning a partial result — the programmatic
    stand-in for a killed run (the manifest tests and checkpoint
    demos use it); it is honored exactly only with ``workers <= 1``.
    ``hooks`` injects observation/fault points (see
    :class:`CampaignHooks`); a hook raising :class:`KillRun` aborts
    the run with the on-disk state of a killed process.
    """
    # lint: allow[DET002] -- CampaignResult.elapsed is operator info
    started = time.perf_counter()
    plan = config.shard_plan()
    layout: Optional[CampaignLayout] = None
    if config.out is not None:
        layout = CampaignLayout(config.out)
        layout.check_campaign(config)
        layout.prepare()
        layout.write_campaign(config)

    partials: Dict[int, PartialResult] = {}
    loaded = 0
    if resume and layout is not None:
        partials = layout.completed(plan)
        loaded = len(partials)
        if progress is not None:
            for spec in plan:
                if spec.index in partials:
                    progress(spec, "loaded", partials[spec.index].records)

    pending = [spec for spec in plan if spec.index not in partials]
    if hooks is not None and hooks.order_pending is not None:
        reordered = list(hooks.order_pending(list(pending)))
        assert {s.index for s in reordered} <= {s.index for s in pending}
        pending = reordered
    if stop_after is not None:
        pending = pending[:max(0, stop_after)]

    by_index = {spec.index: spec for spec in plan}

    def finish(outcome: ShardOutcome) -> None:
        index, payload, records, archive_sha256 = outcome
        partials[index] = PartialResult.from_payload(payload)
        if layout is not None:
            before_manifest = None
            if hooks is not None and hooks.before_manifest is not None:
                spec = by_index[index]
                before_manifest = lambda: hooks.before_manifest(spec, layout)
            layout.write_shard(
                by_index[index], payload, records, archive_sha256,
                before_manifest=before_manifest,
            )
            if hooks is not None and hooks.on_shard_written is not None:
                hooks.on_shard_written(by_index[index], layout)
        if progress is not None:
            progress(by_index[index], "run", records)

    ran = len(pending)
    if pending:
        tasks = [
            (config.to_payload(), spec.to_payload(), config.out)
            for spec in pending
        ]
        if workers <= 1 or len(pending) == 1:
            for task, spec in zip(tasks, pending):
                if hooks is not None and hooks.on_shard_start is not None:
                    hooks.on_shard_start(spec)
                finish(_shard_task(task))
        else:
            context = _pool_context()
            with context.Pool(min(workers, len(pending))) as pool:
                # Unordered: shards land as they finish; the merge
                # below re-imposes shard-index order.
                for outcome in pool.imap_unordered(_shard_task, tasks):
                    finish(outcome)

    merged = PartialResult.empty()
    for index in sorted(partials):
        merged = merged + partials[index]
    return CampaignResult(
        config=config,
        partial=merged,
        shard_count=len(plan),
        shards_run=ran,
        shards_loaded=loaded,
        # lint: allow[DET002] -- elapsed never enters payloads/digests
        elapsed=time.perf_counter() - started,
    )
