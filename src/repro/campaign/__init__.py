"""The campaign layer: sharded, resumable multi-day runs.

One :class:`CampaignConfig` describes a whole multi-day, multi-
exchange workload; :func:`run_campaign` partitions it into
self-contained shards, executes them across a process pool on the
columnar tier, and merges the mergeable partial results into a
:class:`CampaignResult` that is bit-identical regardless of worker
count, shard completion order, or kill/resume cycles.
"""

from .config import CampaignConfig, ShardSpec
from .fold import ShardAccumulator, ShardTimings
from .handoff import HandoffError, ShardHandoff
from .manifest import CampaignLayout, ConfigMismatch
from .results import CampaignResult, PartialResult, merge_partials
from .runner import CampaignHooks, KillRun, run_campaign, run_shard

__all__ = [
    "CampaignConfig",
    "ShardSpec",
    "CampaignLayout",
    "CampaignHooks",
    "ConfigMismatch",
    "CampaignResult",
    "HandoffError",
    "KillRun",
    "PartialResult",
    "ShardAccumulator",
    "ShardHandoff",
    "merge_partials",
    "run_campaign",
    "run_shard",
    "ShardTimings",
]
