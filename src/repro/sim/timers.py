"""Interval timers: the 30-second heartbeat behind the paper's spectra.

The paper traces its 30/60-second periodicity to "a popular router
vendor's inclusion of an unjittered 30 second interval timer on BGP's
update processing" (§4.2).  Two timer disciplines are modelled:

- **unjittered** — fires at exact multiples of the interval, phase-
  aligned to the configured origin.  All unjittered routers booted at
  the same origin share firing instants, and even routers with offset
  phases drift into lockstep under weak coupling (see
  :mod:`repro.sim.sync`).
- **jittered** — each period is drawn uniformly from
  ``[interval * (1 - jitter), interval]``, the RFC 4271 MinRouteAdver-
  tisementInterval recommendation that breaks synchronization.

:class:`IntervalTimer` is engine-attached and drives a callback;
:class:`MraiBatcher` is the per-peer output-batching discipline routers
use (accumulate route changes, flush on expiry).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Set

from .engine import Engine, EventHandle

__all__ = ["IntervalTimer", "MraiBatcher", "DEFAULT_MRAI"]

#: The interval at the heart of the paper's findings.
DEFAULT_MRAI = 30.0


class IntervalTimer:
    """A repeating timer with optional jitter.

    ``jitter`` is the fractional shortening range: 0.0 gives exact
    periods (the pathological unjittered discipline); 0.25 gives the
    recommended ``uniform(0.75, 1.0) * interval``.

    Re-arming goes through :meth:`Engine.reschedule`, which reuses the
    just-fired :class:`EventHandle` — a long-lived timer allocates one
    handle total, not one per period.
    """

    __slots__ = (
        "engine",
        "interval",
        "callback",
        "jitter",
        "rng",
        "phase",
        "fire_count",
        "_handle",
        "_running",
    )

    def __init__(
        self,
        engine: Engine,
        interval: float,
        callback: Callable[[], None],
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
        phase: float = 0.0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.engine = engine
        self.interval = interval
        self.callback = callback
        self.jitter = jitter
        self.rng = rng or random.Random(0)
        self.phase = phase
        self.fire_count = 0
        self._handle: Optional[EventHandle] = None
        self._running = False

    def start(self) -> None:
        """Arm the timer from the current simulated time."""
        if self._running:
            return
        self._running = True
        self._arm()

    def stop(self) -> None:
        """Disarm; a later :meth:`start` re-arms from scratch."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _next_period(self) -> float:
        if self.jitter == 0.0:
            return self.interval
        low = self.interval * (1.0 - self.jitter)
        return self.rng.uniform(low, self.interval)

    def _arm(self) -> None:
        engine = self.engine
        interval = self.interval
        now = engine.now
        if self.jitter == 0.0:
            # Phase-locked: fire at phase + k*interval, the discipline
            # that lets independent routers share firing instants.  The
            # quotient of a float floor-division is integral, so it can
            # stay a float.
            phase = self.phase
            next_time = phase + ((now - phase) // interval + 1.0) * interval
            if next_time <= now:
                next_time += interval
        else:
            next_time = now + self._next_period()
        handle = self._handle
        if handle is None:
            self._handle = engine.schedule_at(next_time, self._fire)
        else:
            self._handle = engine.reschedule(handle, next_time)

    def _fire(self) -> None:
        if not self._running:
            return
        self.fire_count += 1
        self.callback()
        if self._running:
            # Re-arm inline (keep in sync with :meth:`_arm`): this is
            # the per-period hot path — a handle-reusing
            # ``Engine.reschedule`` with no intermediate call frame.
            engine = self.engine
            interval = self.interval
            now = engine._now
            handle = self._handle
            if self.jitter == 0.0:
                if handle is not None and handle.time == now:
                    # The overwhelmingly common case: re-arming from our
                    # own on-grid firing instant.
                    next_time = now + interval
                else:
                    phase = self.phase
                    next_time = (
                        phase + ((now - phase) // interval + 1.0) * interval
                    )
                    if next_time <= now:
                        next_time += interval
            else:
                next_time = now + self._next_period()
            if handle is None:
                self._handle = engine.schedule_at(next_time, self._fire)
            else:
                self._handle = engine.reschedule(handle, next_time)

    @property
    def is_running(self) -> bool:
        return self._running


class MraiBatcher:
    """Per-peer MinRouteAdvertisementInterval output batching.

    Routers do not transmit each route change immediately; they mark
    prefixes *dirty* and flush the set when the interval timer expires
    ("most BGP implementations use a small... timer to pack outbound
    route updates into a smaller amount of updates than the number of
    different packets in which they arrived").

    The batcher only tracks dirtiness — what to send for each dirty
    prefix is decided at flush time by the router, which looks at its
    *current* table state.  That lost intermediate history is exactly
    the A1,A2,A1 → duplicate mechanism of §4.2.
    """

    __slots__ = ("_dirty", "_flush", "timer", "flush_count")

    def __init__(
        self,
        engine: Engine,
        flush: Callable[[Set], None],
        interval: float = DEFAULT_MRAI,
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
        phase: float = 0.0,
    ) -> None:
        self._dirty: Set = set()
        self._flush = flush
        self.timer = IntervalTimer(
            engine, interval, self._on_timer, jitter=jitter, rng=rng, phase=phase
        )
        self.flush_count = 0

    def start(self) -> None:
        self.timer.start()

    def stop(self) -> None:
        self.timer.stop()
        self._dirty.clear()

    def mark_dirty(self, prefix) -> None:
        """Record that ``prefix``'s advertisement may need updating."""
        self._dirty.add(prefix)

    def _on_timer(self) -> None:
        if not self._dirty:
            return
        batch, self._dirty = self._dirty, set()
        self.flush_count += 1
        self._flush(batch)

    @property
    def pending(self) -> int:
        return len(self._dirty)
