"""Discrete-event simulation engine.

A minimal, deterministic event scheduler: callbacks are ordered by
(time, sequence number), so two events at the same instant fire in
scheduling order and runs are exactly reproducible.  All the mechanism
models (routers, links, timers, fault injectors) hang off one
:class:`Engine`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

__all__ = ["Engine", "EventHandle", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for scheduling errors (e.g. events in the past)."""


class EventHandle:
    """A scheduled event; supports cancellation."""

    __slots__ = ("time", "callback", "args", "cancelled", "seq")

    def __init__(
        self, time: float, seq: int, callback: Callable, args: tuple
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (O(1); the queue entry is
        skipped when popped)."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Engine:
    """The event queue and simulation clock.

    Examples
    --------
    >>> engine = Engine()
    >>> fired = []
    >>> _ = engine.schedule(5.0, fired.append, "hello")
    >>> engine.run_until(10.0)
    >>> fired
    ['hello']
    >>> engine.now
    10.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: List[EventHandle] = []
        self._seq = itertools.count()
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling -----------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable, *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable, *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now ({self._now})"
            )
        handle = EventHandle(time, next(self._seq), callback, args)
        heapq.heappush(self._queue, handle)
        return handle

    # -- execution ---------------------------------------------------------------

    def step(self) -> bool:
        """Process the next pending event; False if the queue is empty."""
        while self._queue:
            handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = handle.time
            handle.callback(*handle.args)
            self.events_processed += 1
            return True
        return False

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Run events with time <= ``end_time``; advance the clock to
        ``end_time``.  Returns the number of events processed."""
        processed = 0
        while self._queue and (max_events is None or processed < max_events):
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > end_time:
                break
            self.step()
            processed += 1
        if self._now < end_time:
            self._now = end_time
        return processed

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events``)."""
        processed = 0
        while self.step():
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        return processed

    @property
    def pending(self) -> int:
        """Events still queued (including cancelled placeholders)."""
        return sum(1 for h in self._queue if not h.cancelled)

    def next_event_time(self) -> Optional[float]:
        """When the next live event fires, or None.

        O(1) amortized: peeks the heap head, lazily discarding
        cancelled entries (each cancelled event is popped once ever).
        """
        queue = self._queue
        while queue:
            head = queue[0]
            if head.cancelled:
                heapq.heappop(queue)
                continue
            return head.time
        return None
