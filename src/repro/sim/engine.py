"""Discrete-event simulation engine.

A minimal, deterministic event scheduler: callbacks are ordered by
(time, sequence number), so two events at the same instant fire in
scheduling order and runs are exactly reproducible.  All the mechanism
models (routers, links, timers, fault injectors) hang off one
:class:`Engine`.

Scheduler design
----------------
The queue is a *calendar of exact-timestamp buckets*: a dict mapping
each distinct firing time to a FIFO list of handles, plus a binary heap
of the distinct times themselves.  Each bucket is appended in schedule
order, so within-bucket list order *is* scheduling order (the order the
reference heap encodes as ``seq``) — draining the earliest bucket
front-to-back reproduces the reference heap's ``(time, seq)`` order
exactly (property-tested against
:class:`repro.sim.refengine.ReferenceEngine`).  Ordering is therefore
positional; ``seq`` on a handle records its allocation order and is
not reassigned on the :meth:`Engine.reschedule` reuse fast path.

Why this shape fits the paper's workloads:

- **Phase-locked timer populations** (§4.2): N unjittered routers
  share firing instants, so N events collapse into one bucket — one
  heap operation and one list scan per instant instead of N
  ``heappush``/``heappop`` pairs comparing handles in Python.
- **O(1) amortized insert** for the dominant near-future periodic
  events: an existing bucket is a dict hit plus a list append; only
  the first event at a new instant pays a float ``heappush`` (C-level
  comparisons, vs. the old ``EventHandle.__lt__`` in Python).
- **Lazy-cancellation compaction**: MRAI re-arms, hold-timer resets,
  and link flaps leave large dead fractions in the queue.  Cancelled
  handles are discarded during the drain for the cost of an attribute
  check (no heap operation — the reference heap pays a full
  log-compare pop per dead entry), and the engine tracks live/dead
  counts, sweeping dead entries out of future buckets only when the
  dead outnumber the living 4:1 (so ``pending`` is O(1) and memory
  stays bounded even when cancelled events sit far in the future).
- **Handle reuse** (:meth:`Engine.reschedule`): a fired handle can be
  re-armed in place — the :class:`repro.sim.timers.IntervalTimer` and
  :class:`repro.sim.sync.PeriodicRouter` re-arm paths allocate zero
  objects per period.

Adaptive heap fallback
----------------------
The calendar shape loses when distinct-time cardinality explodes: a
flap storm schedules thousands of events at *irregular* continuous
times, so nearly every insert allocates a fresh single-handle bucket
(dict miss + list allocation + float heappush) and every drained
instant pays a dict lookup, an inner-loop setup, and a bucket
retirement (dict delete + heappop) for one event.  BENCH_sim.json on
one box showed flap_storm at 0.82x against the plain reference heap.

The engine therefore runs in one of two modes and migrates between
them at safe points, preserving (time, seq) order bit-exactly:

- **Calendar mode** (the default) counts retired buckets per
  ``_ADAPT_WINDOW`` drained events — the detection lives on the
  *drain* side, after bucket retirement, so the insert fast path pays
  nothing.  When the singleton fraction (buckets / events) rises above
  ``_TRIP_MARKS / _ADAPT_WINDOW`` (the storm signature — measured
  ~0.69 on flap_storm vs ~0.06 on sync_population), the queue migrates
  to a plain binary heap of ``(time, seq, handle)`` tuples.  Fresh
  ``seq`` values are assigned bucket-by-bucket in (time, position)
  order during the migration, so the walk emits an already-sorted
  list — a valid heap with no ``heapify`` — and positional calendar
  order becomes numerical heap order.
- **Heap mode** pays one C-level tuple ``heappush``/``heappop`` per
  event (no Python ``__lt__`` — the reference engine's cost) and no
  bucket bookkeeping.  It counts, per ``_ADAPT_WINDOW`` drained
  events, how many fired at the same instant as their predecessor;
  when that fraction rises above the same ``_TRIP_MARKS /
  _ADAPT_WINDOW`` (phase-locked populations re-emerging), the heap is
  grouped back into calendar buckets.

Both trip conditions key off the shared-instant fraction from opposite
directions (calendar exits when sharing <= 0.4, heap exits when
sharing >= 0.6), so no workload satisfies both: the 0.4-0.6 band is
the hysteresis gap.  Migrations only run at safe points — right after
a bucket retirement or between heap pops, never inside a bucket
iteration — and only in the *outermost* drain (a nested ``run_until``
from a callback must not pull the structures out from under the outer
loop's locals).  Counters reset on every switch, so flipping requires
a full window of fresh evidence.
"""

from __future__ import annotations

import itertools
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Engine", "EventHandle", "SimulationError"]

#: Compaction trigger: sweep when at least this many dead handles have
#: accumulated *and* they outnumber the live ones 4:1.  Dead entries
#: that the clock will soon reach are cheapest to discard during the
#: drain itself (an attribute check — no heap operation), so compaction
#: only exists to bound memory when cancelled events sit far in the
#: future; the high ratio keeps steady-state cancel churn (hold-timer
#: resets, MRAI re-arms) from ever paying for sweeps.
_COMPACT_MIN_DEAD = 64

#: Mode-adaptation window: trip decisions are made once per this many
#: drained events.  Large enough that migrations are rare and the
#: calendar-mode counters amortize to a fraction of an integer op per
#: event (they tick per retired *bucket*); small enough to catch a
#: storm phase within a few thousand events.
_ADAPT_WINDOW = 512

#: Trip point, used from both directions: calendar mode migrates to
#: the heap when at least this many of the window's events came from
#: singleton-ish buckets (buckets retired >= 0.6 * events drained —
#: flap_storm measures ~0.69, sync_population ~0.06); heap mode
#: migrates back when at least this many events fired at the same
#: instant as their predecessor (shared fraction >= 0.6).  A workload
#: cannot satisfy both, so the 0.4-0.6 sharing band is hysteresis.
_TRIP_MARKS = 307


class SimulationError(RuntimeError):
    """Raised for scheduling errors (e.g. events in the past)."""


class EventHandle:
    """A scheduled event; supports cancellation and (engine-mediated)
    re-arming via :meth:`Engine.reschedule`."""

    __slots__ = ("time", "callback", "args", "cancelled", "fired", "seq", "engine")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable,
        args: tuple,
        engine: Optional["Engine"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing (O(1); the queue entry is
        skipped when drained, and compacted away if dead entries pile
        up)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        engine = self.engine
        if engine is not None:
            # Inlined Engine._note_cancel (hold-timer resets make this
            # a hot path).
            engine._live -= 1
            dead = engine._dead + 1
            engine._dead = dead
            if dead >= _COMPACT_MIN_DEAD and dead > (engine._live << 2):
                engine._compact()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


#: Allocation fast path for the engine's schedule methods: slot stores
#: on a bare instance, skipping the ``__init__`` call frame.
_new_handle = EventHandle.__new__

#: Heap-mode queue entries.  The handle rides in slot 2 and never
#: participates in comparisons (seq is unique).
_HeapEntry = Tuple[float, int, EventHandle]


class Engine:
    """The event queue and simulation clock.

    Examples
    --------
    >>> engine = Engine()
    >>> fired = []
    >>> _ = engine.schedule(5.0, fired.append, "hello")
    >>> engine.run_until(10.0)
    >>> fired
    ['hello']
    >>> engine.now
    10.0
    """

    __slots__ = (
        "_now",
        "_seq",
        "_times",
        "_buckets",
        "_head_pos",
        "_heap",
        "_heap_mode",
        "_win_events",
        "_win_marks",
        "_live",
        "_dead",
        "_in_drain",
        "events_processed",
    )

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._seq = itertools.count()
        #: Binary heap of *distinct* firing times (bare floats: C-level
        #: comparisons).  May hold stale entries for retired buckets.
        self._times: List[float] = []
        #: time -> FIFO bucket; append order == seq order.
        self._buckets: Dict[float, List[EventHandle]] = {}
        #: Drain cursor into the earliest bucket (events scheduled *at*
        #: the current instant append behind it and still fire in order).
        self._head_pos = 0
        #: Heap-fallback queue of (time, seq, handle); populated only
        #: in heap mode — exactly one of _heap / _buckets is non-empty.
        self._heap: List[_HeapEntry] = []
        self._heap_mode = False
        #: Adaptation counters for the current _ADAPT_WINDOW of drained
        #: events (calendar: marks = buckets retired; heap: marks =
        #: same-instant pops); reset on every mode switch.
        self._win_events = 0
        self._win_marks = 0
        self._live = 0
        self._dead = 0
        self._in_drain = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling -----------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable, *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self._now + delay
        handle = _new_handle(EventHandle)
        handle.time = time
        seq = handle.seq = next(self._seq)
        handle.callback = callback
        handle.args = args
        handle.cancelled = False
        handle.fired = False
        handle.engine = self
        if self._heap_mode:
            heappush(self._heap, (time, seq, handle))
        else:
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = [handle]
                heappush(self._times, time)
            else:
                bucket.append(handle)
        self._live += 1
        return handle

    def schedule_at(
        self, time: float, callback: Callable, *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now ({self._now})"
            )
        handle = _new_handle(EventHandle)
        handle.time = time
        seq = handle.seq = next(self._seq)
        handle.callback = callback
        handle.args = args
        handle.cancelled = False
        handle.fired = False
        handle.engine = self
        if self._heap_mode:
            heappush(self._heap, (time, seq, handle))
        else:
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = [handle]
                heappush(self._times, time)
            else:
                bucket.append(handle)
        self._live += 1
        return handle

    def reschedule(self, handle: EventHandle, time: float) -> EventHandle:
        """Re-arm ``handle`` at ``time``, reusing the object when it has
        already fired (the periodic-timer fast path — no allocation).

        Falls back to a fresh :meth:`schedule_at` when the handle is
        still pending or was cancelled — the pending event is left
        untouched, so callers may hold one handle per logical timer and
        re-arm unconditionally.  Returns the handle actually queued.
        """
        # A fired handle can never also be cancelled (cancel() no-ops
        # once fired), so two checks suffice.
        if handle.fired and handle.engine is self:
            if time < self._now:
                raise SimulationError(
                    f"cannot schedule at {time} before now ({self._now})"
                )
            handle.fired = False
            handle.time = time
            if self._heap_mode:
                # Heap order is numerical, so the reused handle needs a
                # fresh seq (matching the reference engine's reuse
                # semantics: re-arming is a new insertion).
                seq = handle.seq = next(self._seq)
                heappush(self._heap, (time, seq, handle))
            else:
                # No new seq: ordering is positional (bucket append
                # order), so a reused handle keeps its allocation seq.
                bucket = self._buckets.get(time)
                if bucket is None:
                    self._buckets[time] = [handle]
                    heappush(self._times, time)
                else:
                    bucket.append(handle)
            self._live += 1
            return handle
        return self.schedule_at(time, handle.callback, *handle.args)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending handle — the :class:`EventScheduler`
        spelling of ``handle.cancel()`` (no-op once fired or already
        cancelled)."""
        handle.cancel()

    # -- execution ---------------------------------------------------------------

    def step(self) -> bool:
        """Process the next pending event; False if the queue is empty."""
        return self._service_head(float("inf"), 1) > 0

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Run events with time <= ``end_time``; advance the clock to
        ``end_time``.  Returns the number of events processed."""
        limit = float("inf") if max_events is None else max_events
        processed = self._service_head(end_time, limit)
        if self._now < end_time:
            self._now = end_time
        return processed

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events``)."""
        limit = float("inf") if max_events is None else max_events
        return self._service_head(float("inf"), limit)

    def _service_head(self, end_time: float, limit: float) -> int:
        """Drain live events with ``time <= end_time``, at most ``limit``
        of them, in (time, seq) order.  The single home of the
        cancelled-skip logic (cancelled entries never count against
        ``limit``), shared by :meth:`step`, :meth:`run`, and
        :meth:`run_until` so the paths cannot drift.

        Dispatches to the mode-specific drain and re-enters it when a
        drain returned because the queue migrated mid-call.  Only the
        outermost drain executes migrations (nested ``run_until`` calls
        from callbacks would otherwise pull the structures out from
        under the outer loop's locals).
        """
        fired = 0
        was_draining = self._in_drain
        self._in_drain = True
        try:
            while True:
                heap_mode = self._heap_mode
                if heap_mode:
                    fired += self._drain_heap(
                        end_time, limit - fired, not was_draining
                    )
                else:
                    fired += self._drain_calendar(
                        end_time, limit - fired, not was_draining
                    )
                if self._heap_mode == heap_mode:
                    break
        finally:
            self._in_drain = was_draining
        self.events_processed += fired
        return fired

    def _drain_calendar(
        self, end_time: float, limit: float, outermost: bool
    ) -> int:
        """Calendar-mode drain loop.  Counts retired buckets per
        window of drained events and returns early (mode switched)
        when the singleton fraction trips the heap fallback."""
        times = self._times
        buckets = self._buckets
        fired = 0
        while times and fired < limit:
            time = times[0]
            if time > end_time:
                break
            bucket = buckets.get(time)
            if bucket is None:
                # Stale heap entry (bucket emptied by compaction or
                # retired by next_event_time).
                heappop(times)
                self._head_pos = 0
                continue
            i = self._head_pos
            try:
                # Callbacks may append same-instant events to this
                # very bucket; len() is re-read so they drain in
                # this pass.  The cursor is synced before each
                # callback (for reentrant ``next_event_time``) and
                # on every exit path via ``finally``; cancelled
                # skips between callbacks don't pay a store.
                while i < len(bucket) and fired < limit:
                    handle = bucket[i]
                    i += 1
                    if handle.cancelled:
                        self._dead -= 1
                        continue
                    handle.fired = True
                    self._live -= 1
                    self._now = time
                    self._head_pos = i
                    args = handle.args
                    if args:
                        handle.callback(*args)
                    else:
                        handle.callback()
                    fired += 1
            finally:
                self._head_pos = i
            size = len(bucket)
            if i < size:
                break  # limit hit mid-bucket; cursor persists
            self._retire_head(time, bucket)
            # Adaptation bookkeeping, per retired bucket (not per
            # event): a window dominated by singleton buckets is the
            # storm signature.  len(bucket) counts cancelled skips as
            # drained work, which is what the calendar is cheap at, so
            # the proxy errs conservative.
            self._win_marks += 1
            events = self._win_events = self._win_events + size
            if events >= _ADAPT_WINDOW:
                marks = self._win_marks
                self._win_events = 0
                self._win_marks = 0
                if marks * _ADAPT_WINDOW >= _TRIP_MARKS * events and outermost:
                    # Safe point: the bucket was fully retired, nothing
                    # is iterating.  _to_heap empties our locals in
                    # place; return and let _service_head re-enter.
                    self._to_heap()
                    return fired
        return fired

    def _drain_heap(
        self, end_time: float, limit: float, outermost: bool
    ) -> int:
        """Heap-mode drain loop: one C-level tuple heappop per event.
        Counts same-instant pops per window and migrates back to
        calendar mode (returning early) when phase-locked populations
        re-emerge."""
        heap = self._heap
        fired = 0
        while heap and fired < limit:
            entry = heap[0]
            handle = entry[2]
            if handle.cancelled:
                heappop(heap)
                self._dead -= 1
                continue
            time = entry[0]
            if time > end_time:
                break
            heappop(heap)
            handle.fired = True
            self._live -= 1
            if time == self._now:
                self._win_marks += 1
            events = self._win_events = self._win_events + 1
            self._now = time
            args = handle.args
            if args:
                handle.callback(*args)
            else:
                handle.callback()
            fired += 1
            if events >= _ADAPT_WINDOW:
                marks = self._win_marks
                self._win_events = 0
                self._win_marks = 0
                if marks >= _TRIP_MARKS and outermost:
                    # Safe point: between pops, nothing iterating.
                    self._to_calendar()
                    return fired
        return fired

    def _retire_head(self, time: float, bucket: List[EventHandle]) -> None:
        """Drop a fully drained head bucket and its heap entry."""
        if self._buckets.get(time) is bucket:
            del self._buckets[time]
            if self._times and self._times[0] == time:
                heappop(self._times)
        self._head_pos = 0

    # -- mode migration -------------------------------------------------------

    def _to_heap(self) -> None:
        """Migrate calendar buckets into the fallback heap.

        Walking buckets in ascending time order, and each bucket
        front-to-back (from the drain cursor, for a partially drained
        head), visits live handles in exactly their (time, positional)
        firing order.  Assigning fresh seqs along the walk makes that
        order numerical — the emitted list is already sorted, hence a
        valid binary heap with no ``heapify`` — while keeping the
        monotone seq counter shared with future inserts.
        """
        buckets = self._buckets
        times = self._times
        seq_counter = self._seq
        head_pos = self._head_pos
        head_time = times[0] if (head_pos and times) else None
        heap = self._heap
        dead = 0
        for time in sorted(buckets):
            bucket = buckets[time]
            if time == head_time:
                bucket = bucket[head_pos:]
            for handle in bucket:
                if handle.cancelled:
                    dead += 1
                    continue
                seq = handle.seq = next(seq_counter)
                heap.append((time, seq, handle))
        buckets.clear()
        times.clear()
        self._head_pos = 0
        self._dead -= dead
        self._heap_mode = True
        self._win_events = 0
        self._win_marks = 0

    def _to_calendar(self) -> None:
        """Group the fallback heap back into calendar buckets.

        Sorting the (time, seq, handle) entries yields handles in
        firing order; grouping consecutive equal times rebuilds FIFO
        buckets whose positional order matches seq order, and appending
        the distinct times in ascending order leaves ``_times`` sorted
        — a valid binary heap as-is.
        """
        heap = self._heap
        buckets = self._buckets
        times = self._times
        dead = 0
        last_time = None
        bucket: List[EventHandle] = []
        for entry in sorted(heap):
            handle = entry[2]
            if handle.cancelled:
                dead += 1
                continue
            time = entry[0]
            if time != last_time:
                bucket = buckets[time] = [handle]
                times.append(time)
                last_time = time
            else:
                bucket.append(handle)
        heap.clear()
        self._head_pos = 0
        self._dead -= dead
        self._heap_mode = False
        self._win_events = 0
        self._win_marks = 0

    # -- cancellation bookkeeping ---------------------------------------------

    def _compact(self) -> None:
        """Sweep cancelled handles out of the queue.  Calendar mode
        skips the head bucket (the drain cursor may point into it) and
        deletes emptied buckets, leaving their heap entries to be
        discarded lazily by the drain; heap mode filters and
        re-heapifies in place (safe mid-drain — the drain loop aliases
        the same list object)."""
        if self._heap_mode:
            heap = self._heap
            live_entries = [e for e in heap if not e[2].cancelled]
            self._dead -= len(heap) - len(live_entries)
            heap[:] = live_entries
            heapify(heap)
            return
        buckets = self._buckets
        head = buckets.get(self._times[0]) if self._times else None
        removed = 0
        for time in list(buckets):
            bucket = buckets[time]
            if bucket is head:
                continue  # the drain cursor may point into it
            live = [h for h in bucket if not h.cancelled]
            dropped = len(bucket) - len(live)
            if not dropped:
                continue
            removed += dropped
            if live:
                bucket[:] = live
            else:
                del buckets[time]
        self._dead -= removed

    # -- introspection --------------------------------------------------------

    @property
    def pending(self) -> int:
        """Live (non-cancelled) events still queued.  O(1)."""
        return self._live

    def next_event_time(self) -> Optional[float]:
        """When the next live event fires, or None.

        O(1) amortized: peeks the earliest bucket (or heap entry),
        lazily retiring dead entries.  During an active drain the
        structure is left untouched (read-only scan).
        """
        if self._heap_mode:
            heap = self._heap
            if self._in_drain:
                if heap and not heap[0][2].cancelled:
                    return heap[0][0]
                best = None
                for entry in heap:
                    if not entry[2].cancelled and (
                        best is None or entry[0] < best
                    ):
                        best = entry[0]
                return best
            while heap:
                entry = heap[0]
                if entry[2].cancelled:
                    heappop(heap)
                    self._dead -= 1
                    continue
                return entry[0]
            return None
        times = self._times
        buckets = self._buckets
        if self._in_drain:
            # A callback is asking mid-drain: scan without mutating the
            # structures the drain loop is iterating.
            for time in sorted(times):
                bucket = buckets.get(time)
                if bucket is None:
                    continue
                start = self._head_pos if time == times[0] else 0
                for handle in bucket[start:]:
                    if not handle.cancelled:
                        return time
            return None
        while times:
            time = times[0]
            bucket = buckets.get(time)
            if bucket is None:
                heappop(times)
                self._head_pos = 0
                continue
            for handle in bucket[self._head_pos:]:
                if not handle.cancelled:
                    return time
            self._dead -= len(bucket) - self._head_pos
            self._retire_head(time, bucket)
        return None
