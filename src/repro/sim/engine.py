"""Discrete-event simulation engine.

A minimal, deterministic event scheduler: callbacks are ordered by
(time, sequence number), so two events at the same instant fire in
scheduling order and runs are exactly reproducible.  All the mechanism
models (routers, links, timers, fault injectors) hang off one
:class:`Engine`.

Scheduler design
----------------
The queue is a *calendar of exact-timestamp buckets*: a dict mapping
each distinct firing time to a FIFO list of handles, plus a binary heap
of the distinct times themselves.  Each bucket is appended in schedule
order, so within-bucket list order *is* scheduling order (the order the
reference heap encodes as ``seq``) — draining the earliest bucket
front-to-back reproduces the reference heap's ``(time, seq)`` order
exactly (property-tested against
:class:`repro.sim.refengine.ReferenceEngine`).  Ordering is therefore
positional; ``seq`` on a handle records its allocation order and is
not reassigned on the :meth:`Engine.reschedule` reuse fast path.

Why this shape fits the paper's workloads:

- **Phase-locked timer populations** (§4.2): N unjittered routers
  share firing instants, so N events collapse into one bucket — one
  heap operation and one list scan per instant instead of N
  ``heappush``/``heappop`` pairs comparing handles in Python.
- **O(1) amortized insert** for the dominant near-future periodic
  events: an existing bucket is a dict hit plus a list append; only
  the first event at a new instant pays a float ``heappush`` (C-level
  comparisons, vs. the old ``EventHandle.__lt__`` in Python).
- **Lazy-cancellation compaction**: MRAI re-arms, hold-timer resets,
  and link flaps leave large dead fractions in the queue.  Cancelled
  handles are discarded during the drain for the cost of an attribute
  check (no heap operation — the reference heap pays a full
  log-compare pop per dead entry), and the engine tracks live/dead
  counts, sweeping dead entries out of future buckets only when the
  dead outnumber the living 4:1 (so ``pending`` is O(1) and memory
  stays bounded even when cancelled events sit far in the future).
- **Handle reuse** (:meth:`Engine.reschedule`): a fired handle can be
  re-armed in place — the :class:`repro.sim.timers.IntervalTimer` and
  :class:`repro.sim.sync.PeriodicRouter` re-arm paths allocate zero
  objects per period.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Engine", "EventHandle", "SimulationError"]

#: Compaction trigger: sweep when at least this many dead handles have
#: accumulated *and* they outnumber the live ones 4:1.  Dead entries
#: that the clock will soon reach are cheapest to discard during the
#: drain itself (an attribute check — no heap operation), so compaction
#: only exists to bound memory when cancelled events sit far in the
#: future; the high ratio keeps steady-state cancel churn (hold-timer
#: resets, MRAI re-arms) from ever paying for sweeps.
_COMPACT_MIN_DEAD = 64


class SimulationError(RuntimeError):
    """Raised for scheduling errors (e.g. events in the past)."""


class EventHandle:
    """A scheduled event; supports cancellation and (engine-mediated)
    re-arming via :meth:`Engine.reschedule`."""

    __slots__ = ("time", "callback", "args", "cancelled", "fired", "seq", "engine")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable,
        args: tuple,
        engine: Optional["Engine"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing (O(1); the queue entry is
        skipped when drained, and compacted away if dead entries pile
        up)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        engine = self.engine
        if engine is not None:
            # Inlined Engine._note_cancel (hold-timer resets make this
            # a hot path).
            engine._live -= 1
            dead = engine._dead + 1
            engine._dead = dead
            if dead >= _COMPACT_MIN_DEAD and dead > (engine._live << 2):
                engine._compact()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


#: Allocation fast path for the engine's schedule methods: slot stores
#: on a bare instance, skipping the ``__init__`` call frame.
_new_handle = EventHandle.__new__


class Engine:
    """The event queue and simulation clock.

    Examples
    --------
    >>> engine = Engine()
    >>> fired = []
    >>> _ = engine.schedule(5.0, fired.append, "hello")
    >>> engine.run_until(10.0)
    >>> fired
    ['hello']
    >>> engine.now
    10.0
    """

    __slots__ = (
        "_now",
        "_seq",
        "_times",
        "_buckets",
        "_head_pos",
        "_live",
        "_dead",
        "_in_drain",
        "events_processed",
    )

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._seq = itertools.count()
        #: Binary heap of *distinct* firing times (bare floats: C-level
        #: comparisons).  May hold stale entries for retired buckets.
        self._times: List[float] = []
        #: time -> FIFO bucket; append order == seq order.
        self._buckets: Dict[float, List[EventHandle]] = {}
        #: Drain cursor into the earliest bucket (events scheduled *at*
        #: the current instant append behind it and still fire in order).
        self._head_pos = 0
        self._live = 0
        self._dead = 0
        self._in_drain = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling -----------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable, *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self._now + delay
        handle = _new_handle(EventHandle)
        handle.time = time
        handle.seq = next(self._seq)
        handle.callback = callback
        handle.args = args
        handle.cancelled = False
        handle.fired = False
        handle.engine = self
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [handle]
            heappush(self._times, time)
        else:
            bucket.append(handle)
        self._live += 1
        return handle

    def schedule_at(
        self, time: float, callback: Callable, *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now ({self._now})"
            )
        handle = _new_handle(EventHandle)
        handle.time = time
        handle.seq = next(self._seq)
        handle.callback = callback
        handle.args = args
        handle.cancelled = False
        handle.fired = False
        handle.engine = self
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [handle]
            heappush(self._times, time)
        else:
            bucket.append(handle)
        self._live += 1
        return handle

    def reschedule(self, handle: EventHandle, time: float) -> EventHandle:
        """Re-arm ``handle`` at ``time``, reusing the object when it has
        already fired (the periodic-timer fast path — no allocation).

        Falls back to a fresh :meth:`schedule_at` when the handle is
        still pending or was cancelled — the pending event is left
        untouched, so callers may hold one handle per logical timer and
        re-arm unconditionally.  Returns the handle actually queued.
        """
        # A fired handle can never also be cancelled (cancel() no-ops
        # once fired), so two checks suffice.
        if handle.fired and handle.engine is self:
            if time < self._now:
                raise SimulationError(
                    f"cannot schedule at {time} before now ({self._now})"
                )
            # No new seq: ordering is positional (bucket append order),
            # so a reused handle keeps its original allocation seq.
            handle.fired = False
            handle.time = time
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = [handle]
                heappush(self._times, time)
            else:
                bucket.append(handle)
            self._live += 1
            return handle
        return self.schedule_at(time, handle.callback, *handle.args)

    # -- execution ---------------------------------------------------------------

    def step(self) -> bool:
        """Process the next pending event; False if the queue is empty."""
        return self._service_head(float("inf"), 1) > 0

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Run events with time <= ``end_time``; advance the clock to
        ``end_time``.  Returns the number of events processed."""
        limit = float("inf") if max_events is None else max_events
        processed = self._service_head(end_time, limit)
        if self._now < end_time:
            self._now = end_time
        return processed

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events``)."""
        limit = float("inf") if max_events is None else max_events
        return self._service_head(float("inf"), limit)

    def _service_head(self, end_time: float, limit: float) -> int:
        """Drain live events with ``time <= end_time``, at most ``limit``
        of them, in (time, seq) order.  The single home of the
        cancelled-skip logic (cancelled entries never count against
        ``limit``), shared by :meth:`step`, :meth:`run`, and
        :meth:`run_until` so the paths cannot drift.
        """
        times = self._times
        buckets = self._buckets
        fired = 0
        was_draining = self._in_drain
        self._in_drain = True
        try:
            while times and fired < limit:
                time = times[0]
                if time > end_time:
                    break
                bucket = buckets.get(time)
                if bucket is None:
                    # Stale heap entry (bucket emptied by compaction or
                    # retired by next_event_time).
                    heappop(times)
                    self._head_pos = 0
                    continue
                i = self._head_pos
                try:
                    # Callbacks may append same-instant events to this
                    # very bucket; len() is re-read so they drain in
                    # this pass.  The cursor is synced before each
                    # callback (for reentrant ``next_event_time``) and
                    # on every exit path via ``finally``; cancelled
                    # skips between callbacks don't pay a store.
                    while i < len(bucket) and fired < limit:
                        handle = bucket[i]
                        i += 1
                        if handle.cancelled:
                            self._dead -= 1
                            continue
                        handle.fired = True
                        self._live -= 1
                        self._now = time
                        self._head_pos = i
                        args = handle.args
                        if args:
                            handle.callback(*args)
                        else:
                            handle.callback()
                        fired += 1
                finally:
                    self._head_pos = i
                if i < len(bucket):
                    break  # limit hit mid-bucket; cursor persists
                self._retire_head(time, bucket)
        finally:
            self._in_drain = was_draining
        self.events_processed += fired
        return fired

    def _retire_head(self, time: float, bucket: List[EventHandle]) -> None:
        """Drop a fully drained head bucket and its heap entry."""
        if self._buckets.get(time) is bucket:
            del self._buckets[time]
            if self._times and self._times[0] == time:
                heappop(self._times)
        self._head_pos = 0

    # -- cancellation bookkeeping ---------------------------------------------

    def _compact(self) -> None:
        """Sweep cancelled handles out of non-head buckets.  Emptied
        buckets are deleted; their heap entries go stale and are
        discarded lazily by :meth:`_service_head`."""
        buckets = self._buckets
        head = buckets.get(self._times[0]) if self._times else None
        removed = 0
        for time in list(buckets):
            bucket = buckets[time]
            if bucket is head:
                continue  # the drain cursor may point into it
            live = [h for h in bucket if not h.cancelled]
            dropped = len(bucket) - len(live)
            if not dropped:
                continue
            removed += dropped
            if live:
                bucket[:] = live
            else:
                del buckets[time]
        self._dead -= removed

    # -- introspection --------------------------------------------------------

    @property
    def pending(self) -> int:
        """Live (non-cancelled) events still queued.  O(1)."""
        return self._live

    def next_event_time(self) -> Optional[float]:
        """When the next live event fires, or None.

        O(1) amortized: peeks the earliest bucket, lazily retiring
        buckets whose remaining entries are all cancelled.  During an
        active drain the structure is left untouched (read-only scan).
        """
        times = self._times
        buckets = self._buckets
        if self._in_drain:
            # A callback is asking mid-drain: scan without mutating the
            # structures the drain loop is iterating.
            for time in sorted(times):
                bucket = buckets.get(time)
                if bucket is None:
                    continue
                start = self._head_pos if time == times[0] else 0
                for handle in bucket[start:]:
                    if not handle.cancelled:
                        return time
            return None
        while times:
            time = times[0]
            bucket = buckets.get(time)
            if bucket is None:
                heappop(times)
                self._head_pos = 0
                continue
            for handle in bucket[self._head_pos:]:
                if not handle.cancelled:
                    return time
            self._dead -= len(bucket) - self._head_pos
            self._retire_head(time, bucket)
        return None
