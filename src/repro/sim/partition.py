"""Partitionable multi-exchange day: one closed world per exchange.

The paper's instability pathologies are multi-exchange phenomena: a
provider's customer circuit flaps at its *home* exchange, and the
withdrawal/re-announcement churn reaches the provider's border routers
at every other exchange it attends only after the backbone propagation
+ batching delay.  That delay is the physical *lookahead* the parallel
driver (:mod:`repro.sim.parallel`) exploits: no exchange can influence
another sooner than the minimum inter-exchange latency, so each
partition may safely run that far ahead of the rest.

This module builds the scenario so that every partition is
*self-contained and deterministic in isolation*:

- All randomness is derived per entity (per provider, per router) from
  ``(seed, salt, index)`` — never from one shared stream — so
  partition ``p`` constructs bit-identically whether it is built alone
  in a worker process or alongside the other partitions on a single
  engine.
- Exogenous customer flaps are pre-derived per provider and scheduled
  on the *home* partition only.  The full flap timetable of a
  partition is therefore known at build time, which gives the parallel
  driver an exact next-send lower bound (conservative simulation with
  lookahead jumps between sparse flaps, not fixed-width windows).
- Cross-exchange effects travel through a :class:`CrossChannel`:
  inline (``schedule_at`` on the shared engine — the single-engine
  oracle mode) or collected into an outbox of :class:`CrossMessage`
  for the parallel driver to route and inject deterministically.

Digests (:func:`partition_digest`) cover domain state only — RIBs,
route-server logs, update counters — never engine internals, so a
single-engine run and a partitioned run of the same config must agree
bit-for-bit (property-tested in ``tests/test_engine_equivalence.py``).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..core.classifier import route_state_digest
from ..net.prefix import Prefix
from .router import Router

if TYPE_CHECKING:  # pragma: no cover - typing only; the runtime
    # imports live in ExchangePartition.build (repro.topology itself
    # imports repro.sim, and repro.sim.adversary imports this module,
    # so module-level imports would be circular).
    from ..topology.exchange import ExchangePoint
    from .adversary import AdversaryConfig

__all__ = [
    "CrossMessage",
    "ExchangeDayConfig",
    "ExchangePartition",
    "InlineChannel",
    "OutboxChannel",
    "combined_digest",
    "min_lookahead",
    "pair_latency",
    "partition_digest",
]

#: Prefix space for provider customer routes (disjoint from the other
#: scenarios' 10/8 and 20/8 blocks).
_PREFIX_BASE = 60 * (1 << 24)

#: RNG derivation salts (one stream per purpose per entity; composed
#: with a Knuth multiplicative constant so provider indices from
#: different salts never collide).
_SALT_ATTEND = 1
_SALT_FLAPS = 2
_SALT_ROUTER = 3

#: Inter-exchange latency floor, seconds.  Physically: backbone
#: propagation plus the provider's internal iBGP/MRAI batching before
#: the far router reacts — tens of seconds in the paper's era (its
#: MRAI default alone is 30 s).  This floor is the parallel driver's
#: minimum lookahead, so it is deliberately conservative-large.
_LATENCY_FLOOR = 15.0


def _derive(seed: int, salt: int, index: int) -> random.Random:
    """A deterministic per-entity RNG, independent of build order."""
    return random.Random(seed * 2_654_435_761 + salt * 97_003 + index)


def pair_latency(a: int, b: int) -> float:
    """Deterministic symmetric latency between exchanges ``a``/``b``.

    Values are spread over irregular non-grid offsets above the floor
    so cross-partition delivery instants never collide with the 30 s
    timer grids (keepalives, MRAI) inside a partition.
    """
    lo, hi = (a, b) if a <= b else (b, a)
    return _LATENCY_FLOOR + 0.731 * (((lo + 1) * (hi + 3)) % 11) + 0.013


def min_lookahead(exchanges: int) -> float:
    """The conservative lookahead bound: minimum pairwise latency."""
    return min(
        pair_latency(a, b)
        for a in range(exchanges)
        for b in range(a + 1, exchanges)
    )


@dataclass(frozen=True, slots=True)
class ExchangeDayConfig:
    """A 5-exchange, 90-provider simulated day (defaults), partition-
    safe by construction.  ``duration`` is the observed span after
    ``settle`` (sessions establishing, tables converging)."""

    exchanges: int = 5
    providers: int = 90
    prefixes_per_provider: int = 2
    settle: float = 120.0
    duration: float = 86_400.0
    seed: int = 7
    #: Probability a provider attends each non-home exchange.
    attend_probability: float = 0.35
    #: Per-provider Poisson customer-flap rate (per second).
    flap_rate: float = 1.0 / 600.0
    #: Mean customer outage (exponential), seconds.
    down_time: float = 45.0
    mrai_interval: float = 30.0
    hold_time: float = 90.0
    #: Bilateral provider mesh per exchange (O(N^2)); False keeps the
    #: O(N) route-server-only configuration of §3.
    full_mesh: bool = False
    #: Optional seeded attacker (:class:`~repro.sim.adversary
    #: .AdversaryConfig`); its pulse timetable is a pure function of
    #: this config, installed per partition at build time.
    adversary: Optional["AdversaryConfig"] = None

    @property
    def end_time(self) -> float:
        return self.settle + self.duration

    def attended(self, provider: int) -> Tuple[int, ...]:
        """Exchanges provider ``provider`` attends (home first by
        value order; derived identically in every partition)."""
        home = provider % self.exchanges
        rng = _derive(self.seed, _SALT_ATTEND, provider)
        extra = tuple(
            e
            for e in range(self.exchanges)
            if e != home and rng.random() < self.attend_probability
        )
        return tuple(sorted((home,) + extra))

    def provider_prefixes(self, provider: int) -> Tuple[Prefix, ...]:
        base = provider * self.prefixes_per_provider
        return tuple(
            Prefix(_PREFIX_BASE + (base + k) * 256, 24)
            for k in range(self.prefixes_per_provider)
        )

    def flap_schedule(
        self, provider: int
    ) -> List[Tuple[float, int, float]]:
        """The provider's full-day flap timetable:
        ``(time, prefix_index, down_for)`` tuples, strictly increasing
        times drawn from one per-provider stream."""
        rng = _derive(self.seed, _SALT_FLAPS, provider)
        out: List[Tuple[float, int, float]] = []
        t = self.settle
        end = self.end_time
        while True:
            t += rng.expovariate(self.flap_rate)
            if t >= end:
                return out
            k = rng.randrange(self.prefixes_per_provider)
            down = rng.expovariate(1.0 / self.down_time)
            out.append((t, k, down))


@dataclass(slots=True, frozen=True)
class CrossMessage:
    """One cross-exchange directive in flight (primitive fields only —
    cheap to pickle through the worker pipes).  Canonical injection
    order is ``(delivery_time, src_exchange, src_seq)``."""

    delivery_time: float
    dst_exchange: int
    provider: int
    prefix_index: int
    down_for: float
    src_exchange: int
    src_seq: int

    @property
    def sort_key(self) -> Tuple[float, int, int]:
        return (self.delivery_time, self.src_exchange, self.src_seq)


class InlineChannel:
    """Single-engine mode: cross-exchange directives become ordinary
    engine events on the shared engine (the oracle the parallel driver
    is differentially tested against)."""

    __slots__ = ("engine", "partitions")

    def __init__(self, engine, partitions: List["ExchangePartition"]):
        self.engine = engine
        self.partitions = partitions

    def emit(
        self,
        src_exchange: int,
        dst_exchange: int,
        delivery_time: float,
        provider: int,
        prefix_index: int,
        down_for: float,
    ) -> None:
        self.engine.schedule_at(
            delivery_time,
            self.partitions[dst_exchange].apply_remote_flap,
            provider,
            prefix_index,
            down_for,
        )


class OutboxChannel:
    """Parallel mode: directives accumulate in an outbox the driver
    drains at window boundaries.  ``src_seq`` preserves emission order
    per source partition, making cross-partition injection order
    canonical."""

    __slots__ = ("outbox", "_seq")

    def __init__(self) -> None:
        self.outbox: List[CrossMessage] = []
        self._seq = 0

    def emit(
        self,
        src_exchange: int,
        dst_exchange: int,
        delivery_time: float,
        provider: int,
        prefix_index: int,
        down_for: float,
    ) -> None:
        self.outbox.append(
            CrossMessage(
                delivery_time=delivery_time,
                dst_exchange=dst_exchange,
                provider=provider,
                prefix_index=prefix_index,
                down_for=down_for,
                src_exchange=src_exchange,
                src_seq=self._seq,
            )
        )
        self._seq += 1

    def drain(self) -> List[CrossMessage]:
        out = self.outbox
        self.outbox = []
        return out


class ExchangePartition:
    """One exchange's closed world: the exchange fabric, the resident
    provider routers, and the exogenous flap processes of providers
    homed here."""

    __slots__ = (
        "config",
        "index",
        "engine",
        "channel",
        "sink",
        "exchange",
        "routers",
        "remote_targets",
        "flap_times",
    )

    def __init__(self, config: ExchangeDayConfig, index: int, engine) -> None:
        self.config = config
        self.index = index
        self.engine = engine
        self.channel = None
        self.sink = None
        self.exchange: Optional["ExchangePoint"] = None
        #: provider index -> this provider's router *at this exchange*.
        self.routers: Dict[int, Router] = {}
        #: provider index -> non-home attended exchanges (home == here).
        self.remote_targets: Dict[int, Tuple[int, ...]] = {}
        #: Send instants of this partition (multi-attendance home
        #: providers' flap times, ascending): the driver's exact
        #: next-send lower bound.
        self.flap_times: List[float] = []

    def build(self, channel, sink=None) -> None:
        """Construct routers, sessions, originations, and the home
        flap timetable.  Identical insertions in identical order
        regardless of what else shares the engine."""
        from ..collector.log import MemoryLog
        from ..topology.exchange import EXCHANGE_POINTS, ExchangePoint

        config = self.config
        self.channel = channel
        self.sink = sink if sink is not None else MemoryLog()
        info = EXCHANGE_POINTS[self.index % len(EXCHANGE_POINTS)]
        self.exchange = ExchangePoint(
            self.engine,
            name=f"{info.name}#{self.index}",
            sink=self.sink,
            server_asn=65_000 + self.index,
            full_mesh=config.full_mesh,
        )
        sends: List[float] = []
        for provider in range(config.providers):
            attended = config.attended(provider)
            if self.index not in attended:
                continue
            router = Router(
                self.engine,
                asn=1000 + provider,
                router_id=(172 << 24) + provider * 32 + self.index,
                hold_time=config.hold_time,
                mrai_interval=config.mrai_interval,
                mrai_jitter=0.25,
                rng=_derive(
                    self.config.seed,
                    _SALT_ROUTER,
                    provider * 32 + self.index,
                ),
            )
            for prefix in config.provider_prefixes(provider):
                router.originate(prefix)
            self.exchange.attach_provider(router)
            self.routers[provider] = router
            home = provider % config.exchanges
            if home != self.index:
                continue
            remotes = tuple(e for e in attended if e != self.index)
            self.remote_targets[provider] = remotes
            for when, prefix_index, down_for in config.flap_schedule(
                provider
            ):
                self.engine.schedule_at(
                    when, self._home_flap, provider, prefix_index, down_for
                )
                if remotes:
                    sends.append(when)
        adversary = config.adversary
        if (
            adversary is not None
            and adversary.attacker in self.routers
        ):
            from .adversary import install_adversary

            install_adversary(self, adversary)
        sends.sort()
        self.flap_times = sends

    # -- event callbacks ----------------------------------------------------

    def _home_flap(
        self, provider: int, prefix_index: int, down_for: float
    ) -> None:
        """A customer circuit flap at the provider's home exchange:
        flap locally, and direct the provider's other routers to follow
        after the inter-exchange latency."""
        prefix = self.config.provider_prefixes(provider)[prefix_index]
        self.routers[provider].flap_origin(prefix, down_for)
        remotes = self.remote_targets.get(provider)
        if not remotes:
            return
        now = self.engine.now
        for dst in remotes:
            self.channel.emit(
                self.index,
                dst,
                now + pair_latency(self.index, dst),
                provider,
                prefix_index,
                down_for,
            )

    def apply_remote_flap(
        self, provider: int, prefix_index: int, down_for: float
    ) -> None:
        """The delayed arrival of a home flap at this exchange."""
        prefix = self.config.provider_prefixes(provider)[prefix_index]
        self.routers[provider].flap_origin(prefix, down_for)

    # -- lookahead ----------------------------------------------------------

    def next_send_bound(self, after: float) -> float:
        """Earliest instant at which this partition could still emit a
        cross message strictly after ``after`` (exact: sends only
        happen at pre-derived home flap times)."""
        times = self.flap_times
        # Binary search would be O(log n); the driver calls this once
        # per window with monotone `after`, so trim from the front.
        while times and times[0] <= after:
            times.pop(0)
        return times[0] if times else float("inf")


def _router_rib_state(router: Router):
    """Adj-RIB-In entries in route_state_digest form."""
    adj_in = router.loc_rib.adj_in
    return [
        ((peer, prefix.network, prefix.length), True, True, attrs)
        for peer in adj_in.peers()
        for prefix, attrs in adj_in.routes_from(peer).items()
    ]


def partition_digest(partition: ExchangePartition) -> str:
    """Domain-state digest of one exchange: per-router counters + RIB
    digests (ascending provider order), the route server's log and
    counters.  Engine internals (clocks, event counts) are excluded so
    single-engine and partitioned runs of the same config compare
    equal."""
    hasher = hashlib.sha256()
    for provider in sorted(partition.routers):
        router = partition.routers[provider]
        hasher.update(
            repr(
                (
                    provider,
                    router.updates_sent,
                    router.updates_received,
                    router.crash_count,
                    route_state_digest(_router_rib_state(router)),
                )
            ).encode()
        )
    server = partition.exchange.route_server
    hasher.update(
        repr(
            (
                server.updates_received,
                server.updates_sent,
                len(partition.sink.records),
            )
        ).encode()
    )
    for record in partition.sink.records:
        hasher.update(repr(record).encode())
    return hasher.hexdigest()


def combined_digest(digests: Dict[int, str]) -> str:
    """One run digest over per-exchange digests in exchange order —
    the common coin of the single-engine oracle
    (:func:`repro.sim.scenarios.run_exchange_day`) and the parallel
    driver (:attr:`repro.sim.parallel.ParallelResult.digest`)."""
    parts = tuple((index, digests[index]) for index in sorted(digests))
    return hashlib.sha256(repr(parts).encode()).hexdigest()
