"""Named simulation scenarios and the :func:`simulate` façade.

Every simulator workload the repo measures or tests lives here, keyed
by name, runnable on any :class:`~repro.sim.scheduler.EventScheduler`
implementation:

- ``sync_population`` — the §4.2 timer population: phase-cohort
  unjittered 30 s interval timers, a jittered minority, the BGP
  hold-timer reset pattern (lazy-cancelled timeouts), periodic
  stop/start churn.
- ``flap_storm`` — the §3 router-mesh cascade
  (:class:`~repro.sim.flapstorm.FlapStormScenario`).
- ``table_dump`` — a hub re-dumping its table over ``wire=True`` links
  through forced session bounces (the memoized codec's target).
- ``multi_exchange_day`` — the partitionable multi-exchange day
  (:mod:`repro.sim.partition`).
- ``hijack_moas`` / ``hijack_subprefix`` / ``route_leak`` /
  ``path_forgery`` / ``deagg_storm`` — the adversarial pack
  (:mod:`repro.sim.adversary`): the same day with a seeded attacker
  riding on it.

The day-family scenarios (``multi_exchange_day`` and the adversarial
pack) are partition-safe and therefore also legal on the ``parallel``
engine.

:func:`simulate` is the single entry point (scenario names accept
``-`` for ``_``, so ``hijack-moas`` works from the command line):

    >>> simulate("flap_storm", engine="reference", smoke=True)
    >>> simulate("multi_exchange_day", engine="parallel", workers=4)
    >>> simulate("hijack-moas", engine="parallel", workers=2, smoke=True)

Scenario runners return ``(events, digest)`` where the digest covers
the full observable outcome (event counts, clocks, route state,
firing counts), so two engines agree on a scenario iff their digests
are equal — the property the differential benchmark and the
equivalence tests are built on.  Runners accept an optional ``seed``;
``None`` keeps each scenario's published default draws (the pinned
golden digests).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..collector.record import UpdateRecord
from ..core.classifier import route_state_digest
from ..net.prefix import Prefix
from .adversary import ATTACK_KINDS, AdversaryConfig
from .engine import Engine, SimulationError
from .flapstorm import FlapStormScenario
from .link import Link
from .parallel import ParallelDriver
from .partition import (
    ExchangeDayConfig,
    ExchangePartition,
    InlineChannel,
    combined_digest,
    partition_digest,
)
from .refengine import ReferenceEngine
from .router import Router, connect
from .timers import IntervalTimer

__all__ = [
    "DAY_SCENARIOS",
    "SCENARIOS",
    "SimResult",
    "adversary_day_config",
    "day_config",
    "day_scenario_config",
    "run_exchange_day",
    "run_exchange_day_records",
    "scenario_flap_storm",
    "scenario_multi_exchange_day",
    "scenario_sync_population",
    "scenario_table_dump",
    "simulate",
]

#: Scenario sizes: (full, smoke) — indexable by a bool.
_SYNC_TIMERS = (5000, 160)
_SYNC_HOLD_ACTORS = (9000, 80)
_SYNC_DURATION = (1200.0, 300.0)
_STORM_SIZE = ((8, 30, 150, 240.0), (4, 10, 40, 120.0))
_DUMP_SIZE = ((600, 12, 6), (120, 4, 2))

_PHASE_COHORTS = 8
_JITTERED_FRACTION = 0.025


def _noop() -> None:
    """The measured work is the timer machinery itself (fire_count)."""


class _HoldTimerActor:
    """The BGP hold-timer reset pattern: every keepalive cancels the
    pending timeout and schedules a fresh one — in steady state the
    timeout never fires and the queue fills with dead entries."""

    __slots__ = ("engine", "hold_time", "expired", "_pending", "_expire_cb")

    def __init__(self, engine, hold_time: float) -> None:
        self.engine = engine
        self.hold_time = hold_time
        self.expired = 0
        self._pending = None
        self._expire_cb = self._expire

    def keepalive(self) -> None:
        if self._pending is not None:
            self._pending.cancel()
        self._pending = self.engine.schedule(self.hold_time, self._expire_cb)

    def _expire(self) -> None:
        self.expired += 1


def _digest(*parts) -> str:
    return hashlib.sha256(repr(parts).encode()).hexdigest()


def _router_state(router: Router):
    """Adj-RIB-In entries of one router in route_state_digest form."""
    adj_in = router.loc_rib.adj_in
    return [
        ((peer, prefix.network, prefix.length), True, True, attrs)
        for peer in adj_in.peers()
        for prefix, attrs in adj_in.routes_from(peer).items()
    ]


# ---------------------------------------------------------------------------
# scenario runners — (engine_cls, smoke, seed) -> (events, digest)
# ---------------------------------------------------------------------------

def scenario_sync_population(
    engine_cls, smoke: bool, seed: Optional[int] = None
):
    size = _SYNC_TIMERS[smoke]
    n_actors = _SYNC_HOLD_ACTORS[smoke]
    duration = _SYNC_DURATION[smoke]
    jitter_base = 1000 if seed is None else 1000 + seed * 100_003
    churn_seed = 7 if seed is None else seed
    engine = engine_cls()
    timers = []
    n_jittered = int(size * _JITTERED_FRACTION)
    for i in range(size):
        if i < n_jittered:
            timer = IntervalTimer(
                engine,
                30.0,
                _noop,
                jitter=0.25,
                rng=random.Random(jitter_base + i),
            )
        else:
            # Phase cohorts: hundreds of timers share each firing
            # instant — the unjittered vendor-timer population.
            timer = IntervalTimer(
                engine, 30.0, _noop, phase=float(i % _PHASE_COHORTS)
            )
        timer.start()
        timers.append(timer)

    # Hold-timer cohort: phase-aligned keepalives, each reset leaving
    # a dead 600 s timeout behind (the lazy-cancellation workload).
    actors = []
    for i in range(n_actors):
        actor = _HoldTimerActor(engine, hold_time=600.0)
        timer = IntervalTimer(
            engine, 30.0, actor.keepalive, phase=float(i % _PHASE_COHORTS)
        )
        timer.start()
        timers.append(timer)
        actors.append(actor)

    # Churn: every 300 s stop a seeded slice of the population and
    # restart it 60 s later, leaving cancelled handles in the queue.
    churn_rng = random.Random(churn_seed)

    def churn():
        victims = churn_rng.sample(range(size), size // 10)
        for index in victims:
            timers[index].stop()
        engine.schedule(60.0, restart, tuple(victims))
        if engine.now + 300.0 <= duration:
            engine.schedule(300.0, churn)

    def restart(victims):
        for index in victims:
            timers[index].start()

    engine.schedule(300.0, churn)
    engine.run_until(duration)
    digest = _digest(
        engine.events_processed,
        round(engine.now, 9),
        tuple(t.fire_count for t in timers),
        tuple(a.expired for a in actors),
    )
    return engine.events_processed, digest


def scenario_flap_storm(
    engine_cls, smoke: bool, seed: Optional[int] = None
):
    n_routers, per_router, flaps, observe = _STORM_SIZE[smoke]
    engine = engine_cls()
    scenario = FlapStormScenario(
        n_routers=n_routers,
        prefixes_per_router=per_router,
        seed=7 if seed is None else seed,
        engine=engine,
    )
    result = scenario.storm(
        flaps=flaps, over_seconds=10.0, observe_for=observe
    )
    rib_digests = tuple(
        route_state_digest(_router_state(router))
        for router in scenario.routers
    )
    digest = _digest(
        engine.events_processed,
        round(engine.now, 9),
        result.session_drops,
        result.total_updates_sent,
        result.crashes,
        tuple(round(t, 9) for t in result.drop_times),
        rib_digests,
    )
    return engine.events_processed, digest


def scenario_table_dump(
    engine_cls, smoke: bool, seed: Optional[int] = None
):
    # Fully deterministic — no draws, so ``seed`` has nothing to vary.
    n_prefixes, n_peers, bounces = _DUMP_SIZE[smoke]
    engine = engine_cls()
    hub = Router(engine, asn=100, router_id=(10 << 24) + 1)
    base = 20 * (1 << 24)
    for i in range(n_prefixes):
        hub.originate(Prefix(base + i * 256, 24))
    peers, links = [], []
    for i in range(n_peers):
        peer = Router(engine, asn=200 + i, router_id=(10 << 24) + 100 + i)
        link = Link(engine, delay=0.01, wire=True)
        connect(hub, peer, link=link)
        peers.append(peer)
        links.append(link)
    engine.run_until(120.0)
    # Bounce every session repeatedly: each re-establishment re-dumps
    # the identical table over the wire (memoized-encode territory).
    for cycle in range(bounces):
        at = engine.now
        for link in links:
            engine.schedule_at(at + 1.0, link.go_down)
            engine.schedule_at(at + 3.0, link.go_up)
        engine.run_until(at + 120.0)
    digest = _digest(
        engine.events_processed,
        round(engine.now, 9),
        tuple(route_state_digest(_router_state(peer)) for peer in peers),
        tuple(link.bytes_carried for link in links),
        tuple(link.messages_delivered for link in links),
        tuple(link.messages_lost for link in links),
        hub.updates_sent,
        hub.suppressed_outputs,
    )
    return engine.events_processed, digest


def day_config(
    smoke: bool = False, seed: Optional[int] = None
) -> ExchangeDayConfig:
    """The multi-exchange-day presets: the full 5-exchange 90-provider
    day, or a minutes-long 3-exchange smoke configuration."""
    base_seed = 7 if seed is None else seed
    if smoke:
        return ExchangeDayConfig(
            exchanges=3,
            providers=9,
            prefixes_per_provider=2,
            settle=60.0,
            duration=900.0,
            seed=base_seed,
            flap_rate=1.0 / 120.0,
            down_time=20.0,
        )
    return ExchangeDayConfig(seed=base_seed)


def adversary_day_config(
    kind: str, smoke: bool = False, seed: Optional[int] = None
) -> ExchangeDayConfig:
    """A :func:`day_config` with a seeded attacker riding on it.

    The attacker is homed at the victim's exchange (provider index
    ``1 + exchanges`` has home ``1``), so the route server there
    always observes both origins concurrently — the MOAS conflict is
    structural, not a matter of attendance luck."""
    base = day_config(smoke, seed)
    if smoke:
        adversary = AdversaryConfig(
            kind=kind, victim=1, attacker=1 + base.exchanges
        )
    else:
        adversary = AdversaryConfig(
            kind=kind,
            victim=1,
            attacker=1 + base.exchanges,
            start=600.0,
            pulses=24,
            period=3600.0,
            up_time=900.0,
            subnets=4,
        )
    return replace(base, adversary=adversary)


def _attack_config_factory(kind: str) -> Callable:
    def factory(
        smoke: bool = False, seed: Optional[int] = None
    ) -> ExchangeDayConfig:
        return adversary_day_config(kind, smoke, seed)

    return factory


#: Day-family scenarios: name -> config factory ``(smoke, seed)``.
#: Everything here is partition-safe and legal on engine='parallel'.
DAY_SCENARIOS: Dict[str, Callable] = {
    "multi_exchange_day": day_config,
}
for _kind in ATTACK_KINDS:
    DAY_SCENARIOS[_kind] = _attack_config_factory(_kind)
del _kind


def day_scenario_config(
    scenario: str, smoke: bool = False, seed: Optional[int] = None
) -> ExchangeDayConfig:
    """The :class:`ExchangeDayConfig` behind a day-family scenario."""
    name = scenario.replace("-", "_")
    if name not in DAY_SCENARIOS:
        known = ", ".join(DAY_SCENARIOS)
        raise SimulationError(
            f"{scenario!r} is not a day-family scenario (known: {known})"
        )
    return DAY_SCENARIOS[name](smoke, seed)


def _run_day(engine_cls, config: ExchangeDayConfig):
    """Build and run all partitions on one shared engine."""
    engine = engine_cls()
    partitions = [
        ExchangePartition(config, index, engine)
        for index in range(config.exchanges)
    ]
    channel = InlineChannel(engine, partitions)
    for partition in partitions:
        partition.build(channel)
    engine.run_until(config.end_time)
    return engine, partitions


def day_records(partitions) -> List[UpdateRecord]:
    """All route-server observations of a day run, merged into one
    time-ordered stream.  Peer ids (router ids) are globally unique
    across exchanges, so the merge is a coherent multi-collector
    stream; the sort is stable over the exchange-ordered concatenation,
    so equal-time records keep a canonical order and the result is a
    pure function of the per-exchange logs."""
    merged: List[UpdateRecord] = []
    for partition in partitions:
        merged.extend(partition.sink.records)
    merged.sort(key=lambda record: record.time)
    return merged


def run_exchange_day(engine_cls, config: ExchangeDayConfig):
    """Single-engine oracle run of the multi-exchange day: all
    partitions share one engine, cross-exchange directives delivered
    inline.  Returns ``(events, combined digest)`` — bit-comparable
    with a :class:`~repro.sim.parallel.ParallelResult` of the same
    config."""
    engine, partitions = _run_day(engine_cls, config)
    digests = {
        partition.index: partition_digest(partition)
        for partition in partitions
    }
    return engine.events_processed, combined_digest(digests)


def run_exchange_day_records(engine_cls, config: ExchangeDayConfig):
    """Like :func:`run_exchange_day`, additionally returning the
    merged route-server record stream (the detection tier's input):
    ``(events, digest, records)``."""
    engine, partitions = _run_day(engine_cls, config)
    digests = {
        partition.index: partition_digest(partition)
        for partition in partitions
    }
    return (
        engine.events_processed,
        combined_digest(digests),
        day_records(partitions),
    )


def scenario_multi_exchange_day(
    engine_cls, smoke: bool, seed: Optional[int] = None
):
    return run_exchange_day(engine_cls, day_config(smoke, seed))


def _day_runner(name: str) -> Callable:
    def runner(engine_cls, smoke: bool, seed: Optional[int] = None):
        return run_exchange_day(
            engine_cls, day_scenario_config(name, smoke, seed)
        )

    return runner


#: name -> runner, in presentation order.
SCENARIOS: Tuple[Tuple[str, Callable], ...] = (
    ("sync_population", scenario_sync_population),
    ("flap_storm", scenario_flap_storm),
    ("table_dump", scenario_table_dump),
    ("multi_exchange_day", scenario_multi_exchange_day),
) + tuple((kind, _day_runner(kind)) for kind in ATTACK_KINDS)

_SCENARIO_MAP: Dict[str, Callable] = dict(SCENARIOS)

#: engine name -> engine class, for the single-engine modes.
ENGINES = {
    "calendar": Engine,
    "reference": ReferenceEngine,
}


@dataclass(slots=True, frozen=True)
class SimResult:
    """What one :func:`simulate` call produced."""

    scenario: str
    engine: str
    events: int
    digest: str
    workers: int = 1
    #: Conservative windows executed (parallel engine only).
    windows: int = 0


def simulate(
    scenario: str,
    *,
    engine: str = "calendar",
    workers: Optional[int] = None,
    smoke: bool = False,
    seed: Optional[int] = None,
) -> SimResult:
    """Run a named scenario on a named engine.

    ``engine`` is ``"calendar"`` (the adaptive calendar queue),
    ``"reference"`` (the heap oracle), or ``"parallel"`` (the
    conservative-lookahead partitioned driver — legal for every
    day-family scenario in :data:`DAY_SCENARIOS`, with ``workers``
    processes).  Equal configurations must yield equal digests across
    all three.  ``-`` and ``_`` are interchangeable in scenario names.
    """
    scenario = scenario.replace("-", "_")
    if scenario not in _SCENARIO_MAP:
        known = ", ".join(name for name, _ in SCENARIOS)
        raise SimulationError(
            f"unknown scenario {scenario!r} (known: {known})"
        )
    if engine == "parallel":
        if scenario not in DAY_SCENARIOS:
            known = ", ".join(DAY_SCENARIOS)
            raise SimulationError(
                "engine='parallel' requires a partitionable day-family "
                f"scenario ({known}); {scenario!r} is single-engine only"
            )
        config = day_scenario_config(scenario, smoke, seed)
        with ParallelDriver(config, workers=workers) as driver:
            driver.run()
            result = driver.finish()
        return SimResult(
            scenario=scenario,
            engine=engine,
            events=result.events,
            digest=result.digest,
            workers=result.workers,
            windows=result.windows,
        )
    if engine not in ENGINES:
        known = ", ".join(sorted(ENGINES)) + ", parallel"
        raise SimulationError(
            f"unknown engine {engine!r} (known: {known})"
        )
    if workers is not None and workers > 1:
        raise SimulationError(
            f"engine={engine!r} is single-process; workers only apply "
            "to engine='parallel'"
        )
    events, digest = _SCENARIO_MAP[scenario](ENGINES[engine], smoke, seed)
    return SimResult(
        scenario=scenario, engine=engine, events=events, digest=digest
    )
