"""Fault injection: the exogenous events that seed instability.

"Routing instability has a number of possible origins, including
problems with leased lines, router failures, high levels of congestion
and software configuration errors" (§3).  This module provides the
schedulable fault generators the scenarios compose:

- :class:`PoissonLinkFlapper` — memoryless link failures/repairs on a
  set of links (leased-line problems).
- :class:`CustomerFlapGenerator` — customer-circuit flaps: originated
  prefixes withdrawn and re-announced at Poisson times, optionally
  modulated by a diurnal intensity function (this is the knob that ties
  instability to network usage).
- :class:`MaintenanceWindow` — deterministic daily session resets (the
  10am line in Figure 3).
- :class:`MisconfiguredProvider` — the ISP-Y behaviour: periodically
  transmits withdrawals for prefixes it never announced.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from ..bgp.messages import UpdateMessage
from ..net.prefix import Prefix
from .engine import Engine
from .link import Link
from .router import Router

__all__ = [
    "PoissonLinkFlapper",
    "CustomerFlapGenerator",
    "MaintenanceWindow",
    "MisconfiguredProvider",
]


class PoissonLinkFlapper:
    """Fail and repair links at exponentially-distributed intervals."""

    __slots__ = ("engine", "links", "mttf", "mttr", "rng", "flap_count", "_running")

    def __init__(
        self,
        engine: Engine,
        links: Sequence[Link],
        mean_time_to_failure: float = 3600.0,
        mean_repair_time: float = 60.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.engine = engine
        self.links = list(links)
        self.mttf = mean_time_to_failure
        self.mttr = mean_repair_time
        self.rng = rng or random.Random(0)
        self.flap_count = 0
        self._running = False

    def start(self) -> None:
        self._running = True
        for link in self.links:
            self._schedule_failure(link)

    def stop(self) -> None:
        self._running = False

    def _schedule_failure(self, link: Link) -> None:
        delay = self.rng.expovariate(1.0 / self.mttf)
        self.engine.schedule(delay, self._fail, link)

    def _fail(self, link: Link) -> None:
        if not self._running:
            return
        link.go_down()
        self.flap_count += 1
        repair = self.rng.expovariate(1.0 / self.mttr)
        self.engine.schedule(repair, self._repair, link)

    def _repair(self, link: Link) -> None:
        link.go_up()
        if self._running:
            self._schedule_failure(link)


class CustomerFlapGenerator:
    """Customer-circuit flaps on a router's originated prefixes.

    Each flap picks one originated prefix, withdraws it, and
    re-originates after a short outage.  The instantaneous flap rate is
    ``base_rate * intensity(now)`` — pass a diurnal intensity (see
    :mod:`repro.workloads.diurnal`) to make instability track network
    usage, the correlation of §5.1.
    """

    __slots__ = (
        "engine",
        "router",
        "base_rate",
        "intensity",
        "outage_duration",
        "rng",
        "flap_count",
        "_running",
    )

    def __init__(
        self,
        engine: Engine,
        router: Router,
        base_rate: float = 1 / 600.0,
        intensity: Optional[Callable[[float], float]] = None,
        outage_duration: float = 5.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.engine = engine
        self.router = router
        self.base_rate = base_rate
        self.intensity = intensity or (lambda now: 1.0)
        self.outage_duration = outage_duration
        self.rng = rng or random.Random(1)
        self.flap_count = 0
        self._running = False

    def start(self) -> None:
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        # Thinning: draw at the peak rate, accept with probability
        # intensity/peak, so time-varying rates stay exact.
        delay = self.rng.expovariate(self.base_rate)
        self.engine.schedule(delay, self._maybe_flap)

    def _maybe_flap(self) -> None:
        if not self._running:
            return
        level = self.intensity(self.engine.now)
        if self.rng.random() < min(1.0, level):
            self._flap()
        self._schedule_next()

    def _flap(self) -> None:
        prefixes = self.router.originated
        if not prefixes:
            return
        prefix = self.rng.choice(prefixes)
        outage = self.outage_duration * self.rng.uniform(0.5, 2.0)
        self.router.flap_origin(prefix, down_for=outage)
        self.flap_count += 1


class MaintenanceWindow:
    """Engineering maintenance: daily deterministic session bounces.

    At ``time_of_day`` (seconds past midnight) each day, the target
    router's sessions are administratively reset — producing the
    horizontal line of dense updates "at approximately 10:00am" in
    Figure 3.
    """

    __slots__ = (
        "engine",
        "router",
        "time_of_day",
        "sessions_to_bounce",
        "rng",
        "bounce_count",
    )

    def __init__(
        self,
        engine: Engine,
        router: Router,
        time_of_day: float = 10 * 3600.0,
        sessions_to_bounce: int = 1,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.engine = engine
        self.router = router
        self.time_of_day = time_of_day
        self.sessions_to_bounce = sessions_to_bounce
        self.rng = rng or random.Random(2)
        self.bounce_count = 0

    def start(self) -> None:
        self._schedule_next()

    def _schedule_next(self) -> None:
        from ..collector.store import SECONDS_PER_DAY

        now = self.engine.now
        today_slot = (now // SECONDS_PER_DAY) * SECONDS_PER_DAY + self.time_of_day
        next_slot = (
            today_slot if today_slot > now else today_slot + SECONDS_PER_DAY
        )
        self.engine.schedule_at(next_slot, self._bounce)

    def _bounce(self) -> None:
        established = [
            peer_id
            for peer_id, session in self.router.sessions.items()
            if session.is_established
        ]
        self.rng.shuffle(established)
        for peer_id in established[: self.sessions_to_bounce]:
            session = self.router.sessions[peer_id]
            self.router._run_actions(peer_id, session.stop(self.engine.now))
            self.bounce_count += 1
        self._schedule_next()


class MisconfiguredProvider:
    """The ISP-Y pathology: withdrawals for never-announced prefixes.

    "ISP-Y advertised six withdrawals for this prefix [in two minutes].
    ISP-Y, however, had never previously announced connectivity to this
    destination."  The faulty router periodically spews withdrawals for
    a set of foreign prefixes straight onto its sessions — modelling
    the buggy hardware/software the operators later confirmed.
    """

    __slots__ = (
        "engine",
        "router",
        "foreign_prefixes",
        "period",
        "batch_size",
        "rng",
        "withdrawals_emitted",
        "_running",
    )

    def __init__(
        self,
        engine: Engine,
        router: Router,
        foreign_prefixes: Sequence[Prefix],
        period: float = 30.0,
        batch_size: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.engine = engine
        self.router = router
        self.foreign_prefixes = list(foreign_prefixes)
        self.period = period
        #: prefixes withdrawn per burst (0 = all of them).
        self.batch_size = batch_size or len(self.foreign_prefixes)
        self.rng = rng or random.Random(3)
        self.withdrawals_emitted = 0
        self._running = False

    def start(self) -> None:
        self._running = True
        self.engine.schedule(self.period, self._burst)

    def stop(self) -> None:
        self._running = False

    def _burst(self) -> None:
        if not self._running or self.router.crashed:
            return
        victims = self.rng.sample(
            self.foreign_prefixes,
            min(self.batch_size, len(self.foreign_prefixes)),
        )
        message = UpdateMessage(withdrawn=tuple(sorted(victims)))
        for peer_id, session in self.router.sessions.items():
            if session.is_established:
                self.router._send_update(peer_id, message)
                self.withdrawals_emitted += len(victims)
        self.engine.schedule(self.period, self._burst)
