"""Floyd–Jacobson self-synchronization of periodic routing messages.

The paper (§4.2) conjectures that the unjittered BGP interval timers on
many border routers satisfy Floyd & Jacobson's *Periodic Message*
model [ToN 1994] and may "undergo abrupt synchronization", so that many
routers transmit updates simultaneously — overwhelming recipients.

This module implements that model.  Each router is a single-server
periodic oscillator:

- When its interval timer expires, it prepares its update batch (cost
  ``processing_time``), transmits, and restarts the timer from the
  moment preparation *began* (plus jitter, if configured).
- Incoming messages — both neighbours' periodic batches (cost
  ``coupling`` each) and exogenous bursts of triggered updates that
  reach every router (cost ``external_cost``, Poisson rate
  ``external_rate``) — occupy the same single server.

The weak coupling: a router whose timer expires while the server is
busy begins preparation only when the server frees, so routers caught
by the *same* busy window restart their timers at the same instant and
fire together from then on.  Shared busy windows — an exchange point's
routers all receive the same update bursts — therefore merge phases;
cluster broadcasts then widen the windows, and the system snaps into
lockstep.  RFC-style timer jitter re-spreads the restarts and prevents
the lock, which is exactly the recommended fix.

Defaults are chosen in the synchronizing regime so the ablation
(jitter 0 → coherence ≈ 1; jitter 0.25 → incoherent) is robust;
:func:`phase_coherence` (the Kuramoto order parameter) quantifies it.
"""

from __future__ import annotations

import cmath
import math
import random
import warnings
from typing import List, Optional, Sequence

from .engine import Engine

__all__ = ["PeriodicRouter", "SynchronizationStudy", "phase_coherence"]


class PeriodicRouter:
    """One single-server oscillator in the periodic-message system.

    The timer and transmit events are re-armed via
    :meth:`Engine.reschedule`: each router holds two long-lived handles
    (timer expiry, transmit completion) that are reused every period
    instead of allocating fresh ones — with unjittered phase-locked
    populations the per-period cost is an append to an existing bucket.
    """

    __slots__ = (
        "engine",
        "system",
        "index",
        "period",
        "processing_time",
        "jitter",
        "processing_noise",
        "rng",
        "fire_times",
        "_busy_until",
        "_timer_handle",
        "_transmit_handle",
    )

    def __init__(
        self,
        engine: Engine,
        system: "SynchronizationStudy",
        index: int,
        period: float,
        processing_time: float,
        jitter: float,
        processing_noise: float,
        rng: random.Random,
        initial_phase: float,
    ) -> None:
        self.engine = engine
        self.system = system
        self.index = index
        self.period = period
        self.processing_time = processing_time
        self.jitter = jitter
        self.processing_noise = processing_noise
        self.rng = rng
        self.fire_times: List[float] = []
        self._busy_until = 0.0
        self._timer_handle = engine.schedule(initial_phase, self._timer_expired)
        self._transmit_handle = None

    def _noisy(self, duration: float) -> float:
        if self.processing_noise == 0.0:
            return duration
        spread = self.processing_noise
        return duration * self.rng.uniform(1.0 - spread, 1.0 + spread)

    def _timer_expired(self) -> None:
        """Prepare and transmit the periodic batch.

        Preparation waits for the single server; the timer restarts
        from the (possibly delayed) preparation start.  Routers whose
        expiries fell inside one shared busy window therefore restart
        together — the capture step of the synchronization.
        """
        start = max(self.engine.now, self._busy_until)
        finish = start + self._noisy(self.processing_time)
        self._busy_until = finish
        transmit = self._transmit_handle
        if transmit is None:
            self._transmit_handle = self.engine.schedule_at(
                finish, self._transmit
            )
        else:
            self._transmit_handle = self.engine.reschedule(transmit, finish)
        sleep = self.period
        if self.jitter > 0.0:
            sleep *= self.rng.uniform(1.0 - self.jitter, 1.0)
        self._timer_handle = self.engine.reschedule(
            self._timer_handle, start + sleep
        )

    def _transmit(self) -> None:
        now = self.engine.now
        self.fire_times.append(now)
        self.system.broadcast(self.index, now)

    def receive(self, work: float) -> None:
        """Queue incoming-message processing on the single server."""
        start = max(self.engine.now, self._busy_until)
        self._busy_until = start + self._noisy(work)


class SynchronizationStudy:
    """A population of weakly-coupled periodic routers.

    Parameters mirror the Periodic Message model: ``n`` routers with
    interval ``period``, per-round preparation cost ``processing_time``,
    per-received-message cost ``coupling``, and timer ``jitter``.
    ``external_rate`` / ``external_cost`` model exogenous update bursts
    (route flaps elsewhere in the network) that reach *every* router at
    the same instant — the shared busy windows that nucleate clusters.
    Initial phases are uniform over one period.

    ``engine`` lets the caller supply the scheduler (the differential
    benchmark runs the same study on the calendar-queue engine and the
    reference heap engine); by default a fresh :class:`Engine` is used.
    """

    __slots__ = (
        "engine",
        "period",
        "coupling",
        "external_rate",
        "external_cost",
        "external_events",
        "_ext_rng",
        "routers",
    )

    def __init__(
        self,
        n: int = 12,
        period: float = 30.0,
        processing_time: float = 0.2,
        coupling: float = 0.4,
        jitter: float = 0.0,
        processing_noise: float = 0.0,
        external_rate: float = 0.05,
        external_cost: float = 3.0,
        seed: int = 0,
        engine: Optional[Engine] = None,
    ) -> None:
        self.engine = engine if engine is not None else Engine()
        self.period = period
        self.coupling = coupling
        self.external_rate = external_rate
        self.external_cost = external_cost
        self.external_events = 0
        self._ext_rng = random.Random(seed + 999_983)
        rng = random.Random(seed)
        self.routers = [
            PeriodicRouter(
                self.engine,
                self,
                index=i,
                period=period,
                processing_time=processing_time,
                jitter=jitter,
                processing_noise=processing_noise,
                rng=random.Random(seed * 1000 + 1 + i),
                initial_phase=rng.uniform(0.0, period),
            )
            for i in range(n)
        ]
        if external_rate > 0.0:
            self.engine.schedule(
                self._ext_rng.expovariate(external_rate), self._external_burst
            )

    def _external_burst(self) -> None:
        """An exogenous update burst arriving at every router at once."""
        self.external_events += 1
        for router in self.routers:
            router.receive(self.external_cost)
        self.engine.schedule(
            self._ext_rng.expovariate(self.external_rate), self._external_burst
        )

    def broadcast(self, sender: int, when: float) -> None:
        """Deliver the sender's periodic message to every other router."""
        for i, router in enumerate(self.routers):
            if i != sender:
                router.receive(self.coupling)

    def advance(self, duration: float) -> None:
        """Advance the study to simulated time ``duration``.

        (The canonical entry point; scripted runs should go through
        :func:`repro.sim.simulate` with the ``sync_population``
        scenario instead of driving the study directly.)
        """
        self.engine.run_until(duration)

    def run(self, duration: float) -> None:
        """Deprecated alias of :meth:`advance` (``run`` collided with
        the :class:`~repro.sim.scheduler.EventScheduler` verb for
        draining a queue)."""
        warnings.warn(
            "SynchronizationStudy.run() is deprecated; use "
            "SynchronizationStudy.advance() or repro.sim.simulate()",
            DeprecationWarning,
            stacklevel=2,
        )
        self.advance(duration)

    def final_coherence(self) -> float:
        """Phase coherence of the last firing per router."""
        lasts = [r.fire_times[-1] for r in self.routers if r.fire_times]
        return phase_coherence(lasts, self.period)

    def coherence_series(self, step: float = 300.0) -> List[float]:
        """Coherence sampled over the run (one value per ``step``)."""
        if not any(r.fire_times for r in self.routers):
            return []
        end = max(r.fire_times[-1] for r in self.routers if r.fire_times)
        series = []
        t = step
        while t <= end:
            phases = []
            for router in self.routers:
                before = [ft for ft in router.fire_times if ft <= t]
                if before:
                    phases.append(before[-1])
            if len(phases) >= 2:
                series.append(phase_coherence(phases, self.period))
            t += step
        return series


def phase_coherence(times: Sequence[float], period: float) -> float:
    """Kuramoto order parameter of firing times modulo ``period``.

    1.0 = all routers fire at the same phase (full synchronization);
    near 0 = phases uniformly spread.
    """
    if not times:
        return 0.0
    total = sum(
        cmath.exp(2j * math.pi * (t % period) / period) for t in times
    )
    return abs(total) / len(times)
