"""Discrete-event simulation substrate: engine, timers, links, routers,
route servers, IGP interaction, fault injection, storms, and the
Floyd-Jacobson synchronization model.

The unified entry point is :func:`simulate` — named scenarios on named
engines (``calendar``, ``reference``, or the partitioned ``parallel``
driver), all implementing the :class:`EventScheduler` protocol and all
digest-compatible on equal configurations."""

from .engine import Engine, EventHandle, SimulationError
from .refengine import ReferenceEngine
from .scheduler import EventScheduler
from .timers import DEFAULT_MRAI, IntervalTimer, MraiBatcher
from .link import CsuLink, Link
from .router import CpuModel, RouteCache, Router, connect
from .routeserver import RouteServer
from .igp import IgpBgpRedistribution, IgpTable, RouteSource
from .faults import (
    CustomerFlapGenerator,
    MaintenanceWindow,
    MisconfiguredProvider,
    PoissonLinkFlapper,
)
from .flapstorm import FlapStormScenario, StormResult
from .sync import PeriodicRouter, SynchronizationStudy, phase_coherence
from .trafficgen import ForwardingWorkload, TrafficStats
from .partition import (
    ExchangeDayConfig,
    ExchangePartition,
    InlineChannel,
    min_lookahead,
    partition_digest,
)
from .parallel import ParallelDriver, ParallelResult, ParallelSimError
from .adversary import (
    ATTACK_KINDS,
    AdversaryConfig,
    install_adversary,
    pulse_times,
    scenario_relationships,
)
from .scenarios import (
    DAY_SCENARIOS,
    SCENARIOS,
    SimResult,
    adversary_day_config,
    day_config,
    day_scenario_config,
    run_exchange_day,
    run_exchange_day_records,
    simulate,
)

__all__ = [
    "Engine",
    "EventHandle",
    "EventScheduler",
    "ReferenceEngine",
    "SimulationError",
    "DEFAULT_MRAI",
    "IntervalTimer",
    "MraiBatcher",
    "CsuLink",
    "Link",
    "CpuModel",
    "RouteCache",
    "Router",
    "connect",
    "RouteServer",
    "IgpBgpRedistribution",
    "IgpTable",
    "RouteSource",
    "CustomerFlapGenerator",
    "MaintenanceWindow",
    "MisconfiguredProvider",
    "PoissonLinkFlapper",
    "FlapStormScenario",
    "StormResult",
    "PeriodicRouter",
    "SynchronizationStudy",
    "phase_coherence",
    "ForwardingWorkload",
    "TrafficStats",
    "ExchangeDayConfig",
    "ExchangePartition",
    "InlineChannel",
    "min_lookahead",
    "partition_digest",
    "ParallelDriver",
    "ParallelResult",
    "ParallelSimError",
    "ATTACK_KINDS",
    "AdversaryConfig",
    "install_adversary",
    "pulse_times",
    "scenario_relationships",
    "DAY_SCENARIOS",
    "SCENARIOS",
    "SimResult",
    "adversary_day_config",
    "day_config",
    "day_scenario_config",
    "run_exchange_day",
    "run_exchange_day_records",
    "simulate",
]
