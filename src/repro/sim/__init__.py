"""Discrete-event simulation substrate: engine, timers, links, routers,
route servers, IGP interaction, fault injection, storms, and the
Floyd-Jacobson synchronization model."""

from .engine import Engine, EventHandle, SimulationError
from .refengine import ReferenceEngine
from .timers import DEFAULT_MRAI, IntervalTimer, MraiBatcher
from .link import CsuLink, Link
from .router import CpuModel, RouteCache, Router, connect
from .routeserver import RouteServer
from .igp import IgpBgpRedistribution, IgpTable, RouteSource
from .faults import (
    CustomerFlapGenerator,
    MaintenanceWindow,
    MisconfiguredProvider,
    PoissonLinkFlapper,
)
from .flapstorm import FlapStormScenario, StormResult
from .sync import PeriodicRouter, SynchronizationStudy, phase_coherence
from .trafficgen import ForwardingWorkload, TrafficStats

__all__ = [
    "Engine",
    "EventHandle",
    "ReferenceEngine",
    "SimulationError",
    "DEFAULT_MRAI",
    "IntervalTimer",
    "MraiBatcher",
    "CsuLink",
    "Link",
    "CpuModel",
    "RouteCache",
    "Router",
    "connect",
    "RouteServer",
    "IgpBgpRedistribution",
    "IgpTable",
    "RouteSource",
    "CustomerFlapGenerator",
    "MaintenanceWindow",
    "MisconfiguredProvider",
    "PoissonLinkFlapper",
    "FlapStormScenario",
    "StormResult",
    "PeriodicRouter",
    "SynchronizationStudy",
    "phase_coherence",
    "ForwardingWorkload",
    "TrafficStats",
]
