"""Adversarial scenarios on the multi-exchange day: the attack side.

ROADMAP item 2 ports the victim / attacker / transit scenario shape
onto the partitioned multi-exchange day
(:mod:`repro.sim.partition`).  An :class:`AdversaryConfig` rides on
:class:`~repro.sim.partition.ExchangeDayConfig` and describes one
seeded attacker — a provider that, in timed pulses, announces routes
it should not:

``hijack_moas``
    The attacker originates the victim's exact prefixes under its own
    origin AS — the classic Multiple-Origin-AS conflict.
``hijack_subprefix``
    The attacker originates *more-specific* subnets of the victim's
    prefixes — the sub-prefix hijack that wins longest-match even
    where the victim's covering route stays up.
``route_leak``
    The attacker re-announces the victim's prefix with the propagation
    path ``victim → transit → attacker`` baked in, then exports it to
    its peers — a textbook Gao-Rexford valley (customer route carried
    provider→customer and re-exported sideways).
``path_forgery``
    The attacker originates the victim's prefix with a forged AS path
    claiming a direct ``attacker–victim`` adjacency that exists in no
    declared topology.
``deagg_storm``
    Misconfiguration, not attack: the attacker floods more-specifics
    of its *own* prefixes — a deaggregation storm (same origin, so
    detection labels it deaggregation rather than hijack).

Partition safety is inherited by construction: the pulse timetable is
a pure function of the day config (derived via the same
``(seed, salt, index)`` scheme as everything else in the partition
module), and pulses are installed at build time on the attacker's
*resident* router at each exchange it attends — they emit no
cross-exchange messages, so the parallel driver's lookahead bounds and
worker-count invariance are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..analysis.detection import AsRelationships
from ..bgp.attributes import AsPath, PathAttributes
from ..net.prefix import Prefix
from .engine import SimulationError
from .partition import ExchangeDayConfig, _derive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .partition import ExchangePartition

__all__ = [
    "ATTACK_KINDS",
    "AdversaryConfig",
    "attack_targets",
    "install_adversary",
    "pulse_times",
    "scenario_relationships",
    "transit_asn",
]

#: The supported attack kinds, presentation order.
ATTACK_KINDS: Tuple[str, ...] = (
    "hijack_moas",
    "hijack_subprefix",
    "route_leak",
    "path_forgery",
    "deagg_storm",
)

#: RNG salt for the attack pulse jitter (partition.py owns 1-3).
_SALT_ATTACK = 4

#: ASN block for the per-provider transit upstreams declared in
#: :func:`scenario_relationships` (providers live at 1000+i, route
#: servers at 65000+e; 2000+i collides with neither).
_TRANSIT_BASE = 2000


def transit_asn(provider: int) -> int:
    """The declared transit upstream of provider ``provider``."""
    return _TRANSIT_BASE + provider


@dataclass(frozen=True, slots=True)
class AdversaryConfig:
    """One seeded attacker riding on an :class:`ExchangeDayConfig`.

    All fields are primitives, so the config pickles cheaply through
    the parallel driver's worker pipes.  ``victim`` and ``attacker``
    are provider indices; timing is relative to the day's ``settle``.
    """

    kind: str
    victim: int = 1
    attacker: int = 4
    #: Seconds after settle before the first pulse.
    start: float = 120.0
    pulses: int = 5
    #: Seconds between pulse starts (jittered per pulse).
    period: float = 120.0
    #: Announce → withdraw interval within one pulse.
    up_time: float = 45.0
    #: More-specifics per target prefix (subprefix / deagg kinds).
    subnets: int = 2
    subnet_length: int = 26

    def __post_init__(self) -> None:
        if self.kind not in ATTACK_KINDS:
            known = ", ".join(ATTACK_KINDS)
            raise SimulationError(
                f"unknown attack kind {self.kind!r} (known: {known})"
            )


def pulse_times(
    config: ExchangeDayConfig, adversary: AdversaryConfig
) -> List[Tuple[float, float]]:
    """The attack timetable: ``(announce_time, withdraw_time)`` per
    pulse, identical at every exchange the attacker attends (a pure
    function of the config, like every flap schedule)."""
    rng = _derive(config.seed, _SALT_ATTACK, adversary.attacker)
    end = config.end_time
    out: List[Tuple[float, float]] = []
    base = config.settle + adversary.start
    for pulse in range(adversary.pulses):
        announce = (
            base
            + pulse * adversary.period
            + rng.uniform(0.0, 0.25 * adversary.period)
        )
        if announce >= end:
            break
        out.append((announce, announce + adversary.up_time))
    return out


def _victim_subnets(
    config: ExchangeDayConfig, adversary: AdversaryConfig, provider: int
) -> List[Prefix]:
    """The first ``subnets`` more-specifics of each of ``provider``'s
    prefixes."""
    out: List[Prefix] = []
    for prefix in config.provider_prefixes(provider):
        out.extend(
            islice(prefix.subnets(adversary.subnet_length), adversary.subnets)
        )
    return out


def attack_targets(
    config: ExchangeDayConfig,
    adversary: AdversaryConfig,
    next_hop: int,
) -> List[Tuple[Prefix, Optional[PathAttributes]]]:
    """What one pulse announces: ``(prefix, attributes)`` pairs.

    ``attributes`` is ``None`` where the attacker originates under its
    own AS (the router's default origination); for leaks and forgeries
    it carries the pre-built propagation path, anchored at ``next_hop``
    (the announcing router's id — export prepends the attacker's ASN
    on top, exactly as a real border router would)."""
    kind = adversary.kind
    victim_asn = 1000 + adversary.victim
    if kind == "hijack_moas":
        return [
            (prefix, None)
            for prefix in config.provider_prefixes(adversary.victim)
        ]
    if kind == "hijack_subprefix":
        return [
            (prefix, None)
            for prefix in _victim_subnets(config, adversary, adversary.victim)
        ]
    if kind == "route_leak":
        leaked = PathAttributes(
            as_path=AsPath((transit_asn(adversary.victim), victim_asn)),
            next_hop=next_hop,
        )
        return [
            (prefix, leaked)
            for prefix in config.provider_prefixes(adversary.victim)
        ]
    if kind == "path_forgery":
        forged = PathAttributes(
            as_path=AsPath((victim_asn,)), next_hop=next_hop
        )
        return [
            (prefix, forged)
            for prefix in config.provider_prefixes(adversary.victim)
        ]
    # deagg_storm: more-specifics of the attacker's own prefixes.
    return [
        (prefix, None)
        for prefix in _victim_subnets(config, adversary, adversary.attacker)
    ]


def install_adversary(
    partition: "ExchangePartition", adversary: AdversaryConfig
) -> int:
    """Schedule the attack pulses on the attacker's router resident at
    ``partition`` (call only where the attacker attends).  Returns the
    number of engine events scheduled.  Pulses touch only the local
    exchange — no cross-partition messages — so the partition's
    ``next_send_bound`` stays exact."""
    config = partition.config
    router = partition.routers[adversary.attacker]
    targets = attack_targets(config, adversary, router.router_id)
    end = config.end_time
    scheduled = 0
    for announce_at, withdraw_at in pulse_times(config, adversary):
        for prefix, attributes in targets:
            partition.engine.schedule_at(
                announce_at, router.originate, prefix, attributes
            )
            scheduled += 1
            if withdraw_at < end:
                partition.engine.schedule_at(
                    withdraw_at, router.withdraw_origin, prefix
                )
                scheduled += 1
    return scheduled


def scenario_relationships(config: ExchangeDayConfig) -> AsRelationships:
    """The declared AS-relationship topology of a day config.

    Every provider has a transit upstream (:func:`transit_asn`); for a
    ``route_leak`` adversary the victim's transit additionally serves
    the attacker — which is exactly what makes the leaked path
    ``victim →(up) transit →(down) attacker →(peer) observer`` a
    declared-but-valley path rather than a forgery."""
    rel = AsRelationships()
    for provider in range(config.providers):
        rel.add_provider(transit_asn(provider), 1000 + provider)
    adversary = config.adversary
    if adversary is not None and adversary.kind == "route_leak":
        rel.add_provider(
            transit_asn(adversary.victim), 1000 + adversary.attacker
        )
    return rel
